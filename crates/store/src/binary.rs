//! Binary encoding primitives for the `binary-v2` store codecs: LEB128
//! varints, a compile-time CRC32 (IEEE) table, and a compact tagged binary
//! form of [`JsonValue`] trees ("binvalue").
//!
//! Everything here is hand-rolled — the workspace's `serde` is an offline
//! stub — and everything round-trips *exactly*: varints are canonical
//! (minimal length), floats are raw little-endian bits (so non-finite
//! values and NaN payloads survive, unlike JSON text), and binvalue
//! preserves the [`JsonValue::Int`] / [`JsonValue::Num`] distinction so a
//! decoded tree re-renders to byte-identical JSON text.

use asha_metrics::JsonValue;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, the zlib/PNG polynomial), table built at compile time
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// LEB128 varints
// ---------------------------------------------------------------------------

/// Longest legal LEB128 encoding of a `u64` (10 bytes).
pub const MAX_VARINT_LEN: usize = 10;

/// Append `v` as an LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Outcome of reading a varint from the front of a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarintRead {
    /// A complete varint: its value and encoded length.
    Done(u64, usize),
    /// The buffer ends mid-varint (torn tail).
    Short,
    /// More than [`MAX_VARINT_LEN`] continuation bytes: not a varint at
    /// all (corruption that destroyed framing).
    Malformed,
}

/// Read an LEB128 varint from the front of `buf`.
pub fn get_varint(buf: &[u8]) -> VarintRead {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return VarintRead::Malformed;
        }
        // The 10th byte of a u64 varint may only carry its lowest bit.
        if i == MAX_VARINT_LEN - 1 && byte > 1 {
            return VarintRead::Malformed;
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return VarintRead::Done(value, i + 1);
        }
        shift += 7;
    }
    VarintRead::Short
}

// ---------------------------------------------------------------------------
// Cursor-style readers used by the record and document decoders
// ---------------------------------------------------------------------------

/// Read a varint at `*pos`, advancing it. Errors on truncation/malformed
/// input (inside a CRC-verified payload both mean a decoder bug or a
/// version mismatch, not a torn tail).
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    match get_varint(&buf[(*pos).min(buf.len())..]) {
        VarintRead::Done(v, n) => {
            *pos += n;
            Ok(v)
        }
        VarintRead::Short => Err("truncated varint".to_owned()),
        VarintRead::Malformed => Err("malformed varint".to_owned()),
    }
}

/// Read one byte at `*pos`, advancing it.
pub fn read_u8(buf: &[u8], pos: &mut usize) -> Result<u8, String> {
    let b = *buf.get(*pos).ok_or("truncated byte")?;
    *pos += 1;
    Ok(b)
}

/// Read a little-endian `f64` (raw bits) at `*pos`, advancing it.
pub fn read_f64(buf: &[u8], pos: &mut usize) -> Result<f64, String> {
    let end = pos.checked_add(8).filter(|&e| e <= buf.len());
    let end = end.ok_or("truncated f64")?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(f64::from_le_bytes(raw))
}

/// Read a varint-length-prefixed UTF-8 string at `*pos`, advancing it.
pub fn read_str(buf: &[u8], pos: &mut usize) -> Result<String, String> {
    let len = read_varint(buf, pos)? as usize;
    let end = pos.checked_add(len).filter(|&e| e <= buf.len());
    let end = end.ok_or("truncated string")?;
    let s = std::str::from_utf8(&buf[*pos..end]).map_err(|_| "invalid UTF-8".to_owned())?;
    *pos = end;
    Ok(s.to_owned())
}

/// Append a raw little-endian `f64`.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a varint-length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// binvalue: compact tagged binary JsonValue
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_NUM: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_ARR: u8 = 6;
const TAG_OBJ: u8 = 7;

/// Append a [`JsonValue`] tree in binvalue form: one tag byte per node,
/// varint integers and lengths, raw little-endian `f64`s.
pub fn put_value(out: &mut Vec<u8>, v: &JsonValue) {
    match v {
        JsonValue::Null => out.push(TAG_NULL),
        JsonValue::Bool(false) => out.push(TAG_FALSE),
        JsonValue::Bool(true) => out.push(TAG_TRUE),
        JsonValue::Int(n) => {
            out.push(TAG_INT);
            put_varint(out, *n);
        }
        JsonValue::Num(x) => {
            out.push(TAG_NUM);
            put_f64(out, *x);
        }
        JsonValue::Str(s) => {
            out.push(TAG_STR);
            put_str(out, s);
        }
        JsonValue::Arr(items) => {
            out.push(TAG_ARR);
            put_varint(out, items.len() as u64);
            for item in items {
                put_value(out, item);
            }
        }
        JsonValue::Obj(fields) => {
            out.push(TAG_OBJ);
            put_varint(out, fields.len() as u64);
            for (key, val) in fields {
                put_str(out, key);
                put_value(out, val);
            }
        }
    }
}

/// Decode a binvalue tree at `*pos`, advancing it.
pub fn get_value(buf: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    // Recursion depth is bounded by the store's document shapes (a few
    // levels); a hostile input could still nest deeply, so cap it.
    get_value_depth(buf, pos, 0)
}

fn get_value_depth(buf: &[u8], pos: &mut usize, depth: u32) -> Result<JsonValue, String> {
    if depth > 128 {
        return Err("binvalue nesting too deep".to_owned());
    }
    match read_u8(buf, pos)? {
        TAG_NULL => Ok(JsonValue::Null),
        TAG_FALSE => Ok(JsonValue::Bool(false)),
        TAG_TRUE => Ok(JsonValue::Bool(true)),
        TAG_INT => Ok(JsonValue::Int(read_varint(buf, pos)?)),
        TAG_NUM => Ok(JsonValue::Num(read_f64(buf, pos)?)),
        TAG_STR => Ok(JsonValue::Str(read_str(buf, pos)?)),
        TAG_ARR => {
            let count = read_varint(buf, pos)? as usize;
            // Guard against a corrupt count forcing a huge reservation.
            let mut items = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                items.push(get_value_depth(buf, pos, depth + 1)?);
            }
            Ok(JsonValue::Arr(items))
        }
        TAG_OBJ => {
            let count = read_varint(buf, pos)? as usize;
            let mut fields = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                let key = read_str(buf, pos)?;
                let val = get_value_depth(buf, pos, depth + 1)?;
                fields.push((key, val));
            }
            Ok(JsonValue::Obj(fields))
        }
        other => Err(format!("unknown binvalue tag {other}")),
    }
}

/// Structural equality with bit-exact float comparison: two trees are equal
/// iff they encode (and render) to identical bytes. `JsonValue`'s derived
/// `PartialEq` is useless here — `NaN != NaN` would make any tree holding a
/// poisoned loss unequal to itself.
pub fn json_eq(a: &JsonValue, b: &JsonValue) -> bool {
    match (a, b) {
        (JsonValue::Null, JsonValue::Null) => true,
        (JsonValue::Bool(x), JsonValue::Bool(y)) => x == y,
        (JsonValue::Int(x), JsonValue::Int(y)) => x == y,
        (JsonValue::Num(x), JsonValue::Num(y)) => x.to_bits() == y.to_bits(),
        (JsonValue::Str(x), JsonValue::Str(y)) => x == y,
        (JsonValue::Arr(x), JsonValue::Arr(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(i, j)| json_eq(i, j))
        }
        (JsonValue::Obj(x), JsonValue::Obj(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((ka, va), (kb, vb))| ka == kb && json_eq(va, vb))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn varint_round_trips_and_rejects_garbage() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(get_varint(&buf), VarintRead::Done(v, buf.len()), "{v}");
            // A truncated prefix is Short, not a wrong value.
            if buf.len() > 1 {
                assert_eq!(get_varint(&buf[..buf.len() - 1]), VarintRead::Short);
            }
        }
        assert_eq!(get_varint(&[]), VarintRead::Short);
        assert_eq!(get_varint(&[0x80; 11]), VarintRead::Malformed);
        // An overlong 10th byte overflows u64.
        let mut overlong = vec![0xFF; 9];
        overlong.push(0x7F);
        assert_eq!(get_varint(&overlong), VarintRead::Malformed);
    }

    #[test]
    fn binvalue_round_trips_every_variant() {
        let doc = JsonValue::obj([
            ("null", JsonValue::Null),
            ("t", JsonValue::Bool(true)),
            ("f", JsonValue::Bool(false)),
            ("int", JsonValue::Int(u64::MAX)),
            ("num", JsonValue::Num(0.30000000000000004)),
            ("neg", JsonValue::Num(-1.5e300)),
            ("nan", JsonValue::Num(f64::NAN)),
            ("inf", JsonValue::Num(f64::INFINITY)),
            ("s", JsonValue::Str("héllo \"world\"".to_owned())),
            (
                "arr",
                JsonValue::Arr(vec![
                    JsonValue::Int(0),
                    JsonValue::Num(0.5),
                    JsonValue::Str(String::new()),
                ]),
            ),
            ("obj", JsonValue::obj([("k", JsonValue::Int(7))])),
        ]);
        let mut buf = Vec::new();
        put_value(&mut buf, &doc);
        let mut pos = 0;
        let back = get_value(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len(), "decoder consumed everything");
        assert!(json_eq(&doc, &back));
        // Int/Num distinction survives: the re-encoded bytes are identical.
        let mut buf2 = Vec::new();
        put_value(&mut buf2, &back);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn binvalue_rejects_truncation() {
        let mut buf = Vec::new();
        put_value(
            &mut buf,
            &JsonValue::Arr(vec![JsonValue::Int(1), JsonValue::Str("abc".to_owned())]),
        );
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(
                get_value(&buf[..cut], &mut pos).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn json_eq_is_bitwise_on_floats() {
        assert!(json_eq(
            &JsonValue::Num(f64::NAN),
            &JsonValue::Num(f64::NAN)
        ));
        assert!(!json_eq(&JsonValue::Num(0.0), &JsonValue::Num(-0.0)));
        assert!(!json_eq(&JsonValue::Int(1), &JsonValue::Num(1.0)));
    }
}

//! Hand-rolled JSON codecs for everything the store persists.
//!
//! The workspace's `serde` is an offline API stub, so durable state is
//! encoded explicitly over [`asha_metrics::JsonValue`]. Two invariants the
//! codecs maintain:
//!
//! * **Exact `f64` round-trips.** `JsonValue::Num` renders with Rust's
//!   shortest-round-trip formatting, so finite floats survive a
//!   write/parse cycle bit-for-bit. Non-finite floats would render as
//!   `null`, so they are encoded as the strings `"inf"` / `"-inf"` /
//!   `"nan"` instead ([`float_to_json`]); decoding also accepts `null` as
//!   `+inf` for compatibility with the telemetry log's null-loss
//!   convention.
//! * **Deterministic bytes.** Object keys are emitted in a fixed order and
//!   the state structs sort their collections, so the same logical state
//!   always encodes to the same bytes.
//!
//! All decoders return `Err(String)` describing the first mismatch; callers
//! wrap that into an [`ErrorKind::Corrupt`](asha_core::ErrorKind::Corrupt) error with
//! the offending path.

use crate::error::Error;
use asha_core::{
    AshaConfig, AshaState, AsyncHyperbandState, BracketState, HyperbandConfig, Job, RungState,
    ScanOrder, ShaConfig, SyncShaState, TrialId,
};
use asha_metrics::{FaultStats, JsonValue, TraceEvent};
use asha_sim::{PendingJob, ResumePolicy, SimConfig, SimRunState, TraceMode, TrialSlotState};
use asha_space::{Config, ParamSpec, ParamValue, Scale, SearchSpace};
use asha_surrogate::TrainingState;

/// Encode an `f64` that may be non-finite (`JsonValue::Num` renders
/// non-finite values as `null`, which would not round-trip).
pub fn float_to_json(v: f64) -> JsonValue {
    if v.is_finite() {
        JsonValue::Num(v)
    } else if v == f64::INFINITY {
        JsonValue::Str("inf".to_owned())
    } else if v == f64::NEG_INFINITY {
        JsonValue::Str("-inf".to_owned())
    } else {
        JsonValue::Str("nan".to_owned())
    }
}

/// Decode an `f64` written by [`float_to_json`]. `null` decodes to `+inf`
/// (the telemetry log's convention for a poisoned loss).
pub fn float_from_json(v: &JsonValue) -> Result<f64, Error> {
    match v {
        JsonValue::Null => Ok(f64::INFINITY),
        JsonValue::Str(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            other => Err(Error::codec(format!(
                "expected a float, got string {other:?}"
            ))),
        },
        other => other
            .as_f64()
            .ok_or_else(|| Error::codec(format!("expected a float, got {other:?}"))),
    }
}

fn get<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, Error> {
    v.get(key)
        .ok_or_else(|| Error::codec(format!("missing field {key:?}")))
}

fn get_f64(v: &JsonValue, key: &str) -> Result<f64, Error> {
    float_from_json(get(v, key)?).map_err(|e| e.context(format!("field {key:?}")))
}

fn get_u64(v: &JsonValue, key: &str) -> Result<u64, Error> {
    get(v, key)?
        .as_u64()
        .ok_or_else(|| Error::codec(format!("field {key:?}: expected an unsigned integer")))
}

fn get_usize(v: &JsonValue, key: &str) -> Result<usize, Error> {
    Ok(get_u64(v, key)? as usize)
}

fn get_bool(v: &JsonValue, key: &str) -> Result<bool, Error> {
    get(v, key)?
        .as_bool()
        .ok_or_else(|| Error::codec(format!("field {key:?}: expected a bool")))
}

fn get_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, Error> {
    get(v, key)?
        .as_str()
        .ok_or_else(|| Error::codec(format!("field {key:?}: expected a string")))
}

fn get_arr<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], Error> {
    get(v, key)?
        .as_array()
        .ok_or_else(|| Error::codec(format!("field {key:?}: expected an array")))
}

fn i64_to_json(v: i64) -> JsonValue {
    if v >= 0 {
        JsonValue::Int(v as u64)
    } else {
        // Negative integers have no exact JsonValue form; a string keeps
        // the full 64-bit range.
        JsonValue::Str(v.to_string())
    }
}

fn i64_from_json(v: &JsonValue) -> Result<i64, Error> {
    match v {
        JsonValue::Int(n) => {
            i64::try_from(*n).map_err(|_| Error::codec(format!("integer {n} overflows i64")))
        }
        JsonValue::Str(s) => s
            .parse::<i64>()
            .map_err(|_| Error::codec(format!("expected an integer, got string {s:?}"))),
        other => Err(Error::codec(format!("expected an integer, got {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Search space and configurations
// ---------------------------------------------------------------------------

fn scale_name(s: Scale) -> &'static str {
    match s {
        Scale::Linear => "linear",
        Scale::Log => "log",
    }
}

/// Encode a search space as an array of named parameter specs.
pub fn space_to_json(space: &SearchSpace) -> JsonValue {
    JsonValue::Arr(
        space
            .params()
            .iter()
            .map(|p| {
                let mut fields = vec![("name", JsonValue::Str(p.name().to_owned()))];
                match p.spec() {
                    ParamSpec::Continuous { low, high, scale } => {
                        fields.push(("kind", JsonValue::Str("continuous".to_owned())));
                        fields.push(("low", JsonValue::Num(*low)));
                        fields.push(("high", JsonValue::Num(*high)));
                        fields.push(("scale", JsonValue::Str(scale_name(*scale).to_owned())));
                    }
                    ParamSpec::Discrete { low, high } => {
                        fields.push(("kind", JsonValue::Str("discrete".to_owned())));
                        fields.push(("low", i64_to_json(*low)));
                        fields.push(("high", i64_to_json(*high)));
                    }
                    ParamSpec::Ordinal { values } => {
                        fields.push(("kind", JsonValue::Str("ordinal".to_owned())));
                        fields.push((
                            "values",
                            JsonValue::Arr(values.iter().map(|&v| JsonValue::Num(v)).collect()),
                        ));
                    }
                    ParamSpec::Categorical { labels } => {
                        fields.push(("kind", JsonValue::Str("categorical".to_owned())));
                        fields.push((
                            "labels",
                            JsonValue::Arr(
                                labels.iter().map(|l| JsonValue::Str(l.clone())).collect(),
                            ),
                        ));
                    }
                }
                JsonValue::obj(fields)
            })
            .collect(),
    )
}

/// Decode a search space written by [`space_to_json`].
pub fn space_from_json(v: &JsonValue) -> Result<SearchSpace, Error> {
    let params = v.as_array().ok_or("search space: expected an array")?;
    let mut builder = SearchSpace::builder();
    for p in params {
        let name = get_str(p, "name")?;
        match get_str(p, "kind")? {
            "continuous" => {
                let scale = match get_str(p, "scale")? {
                    "linear" => Scale::Linear,
                    "log" => Scale::Log,
                    other => return Err(Error::codec(format!("unknown scale {other:?}"))),
                };
                builder = builder.continuous(name, get_f64(p, "low")?, get_f64(p, "high")?, scale);
            }
            "discrete" => {
                let low = i64_from_json(get(p, "low")?)?;
                let high = i64_from_json(get(p, "high")?)?;
                builder = builder.discrete(name, low, high);
            }
            "ordinal" => {
                let values: Vec<f64> = get_arr(p, "values")?
                    .iter()
                    .map(float_from_json)
                    .collect::<Result<_, _>>()?;
                builder = builder.ordinal(name, &values);
            }
            "categorical" => {
                let labels: Vec<String> = get_arr(p, "labels")?
                    .iter()
                    .map(|l| {
                        l.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| "categorical label must be a string".to_owned())
                    })
                    .collect::<Result<_, _>>()?;
                let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
                builder = builder.categorical(name, &refs);
            }
            other => return Err(Error::codec(format!("unknown parameter kind {other:?}"))),
        }
    }
    builder.build().map_err(|e| Error::codec(e.to_string()))
}

/// Encode a sampled configuration as an array of tagged values.
pub fn config_to_json(config: &Config) -> JsonValue {
    JsonValue::Arr(
        config
            .values()
            .iter()
            .map(|v| match v {
                ParamValue::Float(x) => JsonValue::obj([("float", float_to_json(*x))]),
                ParamValue::Int(x) => JsonValue::obj([("int", i64_to_json(*x))]),
                ParamValue::Index(x) => JsonValue::obj([("index", JsonValue::Int(*x as u64))]),
            })
            .collect(),
    )
}

/// Decode a configuration written by [`config_to_json`].
pub fn config_from_json(v: &JsonValue) -> Result<Config, Error> {
    let arr = v.as_array().ok_or("config: expected an array")?;
    let values = arr
        .iter()
        .map(|v| {
            if let Some(x) = v.get("float") {
                Ok(ParamValue::Float(float_from_json(x)?))
            } else if let Some(x) = v.get("int") {
                Ok(ParamValue::Int(i64_from_json(x)?))
            } else if let Some(x) = v.get("index") {
                Ok(ParamValue::Index(
                    x.as_u64().ok_or("index must be an unsigned integer")? as usize,
                ))
            } else {
                Err(Error::codec("config value must be tagged float/int/index"))
            }
        })
        .collect::<Result<Vec<_>, Error>>()?;
    Ok(Config::new(values))
}

// ---------------------------------------------------------------------------
// Scheduler configurations and states
// ---------------------------------------------------------------------------

fn scan_order_name(order: ScanOrder) -> &'static str {
    match order {
        ScanOrder::TopDown => "top_down",
        ScanOrder::BottomUp => "bottom_up",
    }
}

fn scan_order_from(name: &str) -> Result<ScanOrder, Error> {
    match name {
        "top_down" => Ok(ScanOrder::TopDown),
        "bottom_up" => Ok(ScanOrder::BottomUp),
        other => Err(Error::codec(format!("unknown scan order {other:?}"))),
    }
}

/// Encode an [`AshaConfig`].
pub fn asha_config_to_json(c: &AshaConfig) -> JsonValue {
    JsonValue::obj([
        ("min_resource", float_to_json(c.min_resource)),
        ("max_resource", float_to_json(c.max_resource)),
        ("reduction_factor", float_to_json(c.reduction_factor)),
        ("stop_rate", JsonValue::Int(c.stop_rate as u64)),
        ("infinite_horizon", JsonValue::Bool(c.infinite_horizon)),
        (
            "max_trials",
            match c.max_trials {
                Some(n) => JsonValue::Int(n as u64),
                None => JsonValue::Null,
            },
        ),
        (
            "scan_order",
            JsonValue::Str(scan_order_name(c.scan_order).to_owned()),
        ),
    ])
}

/// Decode an [`AshaConfig`].
pub fn asha_config_from_json(v: &JsonValue) -> Result<AshaConfig, Error> {
    let mut c = AshaConfig::new(
        get_f64(v, "min_resource")?,
        get_f64(v, "max_resource")?,
        get_f64(v, "reduction_factor")?,
    );
    c.stop_rate = get_usize(v, "stop_rate")?;
    c.infinite_horizon = get_bool(v, "infinite_horizon")?;
    c.max_trials = if get(v, "max_trials")?.is_null() {
        None
    } else {
        Some(get_usize(v, "max_trials")?)
    };
    c.scan_order = scan_order_from(get_str(v, "scan_order")?)?;
    Ok(c)
}

/// Encode a [`ShaConfig`].
pub fn sha_config_to_json(c: &ShaConfig) -> JsonValue {
    JsonValue::obj([
        ("num_configs", JsonValue::Int(c.num_configs as u64)),
        ("min_resource", float_to_json(c.min_resource)),
        ("max_resource", float_to_json(c.max_resource)),
        ("reduction_factor", float_to_json(c.reduction_factor)),
        ("stop_rate", JsonValue::Int(c.stop_rate as u64)),
        ("grow_brackets", JsonValue::Bool(c.grow_brackets)),
    ])
}

/// Decode a [`ShaConfig`].
pub fn sha_config_from_json(v: &JsonValue) -> Result<ShaConfig, Error> {
    let mut c = ShaConfig::new(
        get_usize(v, "num_configs")?,
        get_f64(v, "min_resource")?,
        get_f64(v, "max_resource")?,
        get_f64(v, "reduction_factor")?,
    );
    c.stop_rate = get_usize(v, "stop_rate")?;
    c.grow_brackets = get_bool(v, "grow_brackets")?;
    Ok(c)
}

/// Encode a [`HyperbandConfig`].
pub fn hyperband_config_to_json(c: &HyperbandConfig) -> JsonValue {
    JsonValue::obj([
        ("min_resource", float_to_json(c.min_resource)),
        ("max_resource", float_to_json(c.max_resource)),
        ("reduction_factor", float_to_json(c.reduction_factor)),
        ("num_brackets", JsonValue::Int(c.num_brackets as u64)),
    ])
}

/// Decode a [`HyperbandConfig`].
pub fn hyperband_config_from_json(v: &JsonValue) -> Result<HyperbandConfig, Error> {
    let mut c = HyperbandConfig::new(
        get_f64(v, "min_resource")?,
        get_f64(v, "max_resource")?,
        get_f64(v, "reduction_factor")?,
    );
    c.num_brackets = get_usize(v, "num_brackets")?;
    Ok(c)
}

fn trial_loss_pairs_to_json(pairs: &[(u64, f64)]) -> JsonValue {
    JsonValue::Arr(
        pairs
            .iter()
            .map(|&(t, l)| JsonValue::Arr(vec![JsonValue::Int(t), float_to_json(l)]))
            .collect(),
    )
}

fn trial_loss_pairs_from_json(v: &JsonValue, what: &str) -> Result<Vec<(u64, f64)>, Error> {
    v.as_array()
        .ok_or_else(|| Error::codec(format!("{what}: expected an array")))?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| Error::codec(format!("{what}: expected [trial, loss] pairs")))?;
            let t = pair[0].as_u64().ok_or_else(|| {
                Error::codec(format!("{what}: trial must be an unsigned integer"))
            })?;
            Ok((t, float_from_json(&pair[1])?))
        })
        .collect()
}

fn u64s_to_json(ids: &[u64]) -> JsonValue {
    JsonValue::Arr(ids.iter().map(|&t| JsonValue::Int(t)).collect())
}

fn u64s_from_json(v: &JsonValue, what: &str) -> Result<Vec<u64>, Error> {
    v.as_array()
        .ok_or_else(|| Error::codec(format!("{what}: expected an array")))?
        .iter()
        .map(|t| {
            t.as_u64()
                .ok_or_else(|| Error::codec(format!("{what}: expected unsigned integers")))
        })
        .collect()
}

fn trial_configs_to_json(trials: &[(u64, Config)]) -> JsonValue {
    JsonValue::Arr(
        trials
            .iter()
            .map(|(t, c)| JsonValue::Arr(vec![JsonValue::Int(*t), config_to_json(c)]))
            .collect(),
    )
}

fn trial_configs_from_json(v: &JsonValue, what: &str) -> Result<Vec<(u64, Config)>, Error> {
    v.as_array()
        .ok_or_else(|| Error::codec(format!("{what}: expected an array")))?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| Error::codec(format!("{what}: expected [trial, config] pairs")))?;
            let t = pair[0].as_u64().ok_or_else(|| {
                Error::codec(format!("{what}: trial must be an unsigned integer"))
            })?;
            Ok((t, config_from_json(&pair[1])?))
        })
        .collect()
}

fn rung_state_to_json(r: &RungState) -> JsonValue {
    JsonValue::obj([
        ("records", trial_loss_pairs_to_json(&r.records)),
        ("promoted", u64s_to_json(&r.promoted)),
    ])
}

fn rung_state_from_json(v: &JsonValue) -> Result<RungState, Error> {
    Ok(RungState {
        records: trial_loss_pairs_from_json(get(v, "records")?, "rung records")?,
        promoted: u64s_from_json(get(v, "promoted")?, "rung promoted")?,
    })
}

/// Encode an [`AshaState`].
pub fn asha_state_to_json(s: &AshaState) -> JsonValue {
    JsonValue::obj([
        ("config", asha_config_to_json(&s.config)),
        (
            "rungs",
            JsonValue::Arr(s.rungs.iter().map(rung_state_to_json).collect()),
        ),
        ("trials", trial_configs_to_json(&s.trials)),
        (
            "outstanding",
            JsonValue::Arr(
                s.outstanding
                    .iter()
                    .map(|&(t, k)| {
                        JsonValue::Arr(vec![JsonValue::Int(t), JsonValue::Int(k as u64)])
                    })
                    .collect(),
            ),
        ),
        ("next_trial", JsonValue::Int(s.next_trial)),
        ("trials_started", JsonValue::Int(s.trials_started as u64)),
        ("name", JsonValue::Str(s.name.clone())),
    ])
}

/// Decode an [`AshaState`].
pub fn asha_state_from_json(v: &JsonValue) -> Result<AshaState, Error> {
    let outstanding = get_arr(v, "outstanding")?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or("outstanding: expected [trial, rung] pairs")?;
            match (pair[0].as_u64(), pair[1].as_u64()) {
                (Some(t), Some(k)) => Ok((t, k as usize)),
                _ => Err(Error::codec("outstanding: expected unsigned integers")),
            }
        })
        .collect::<Result<Vec<_>, Error>>()?;
    Ok(AshaState {
        config: asha_config_from_json(get(v, "config")?)?,
        rungs: get_arr(v, "rungs")?
            .iter()
            .map(rung_state_from_json)
            .collect::<Result<_, _>>()?,
        trials: trial_configs_from_json(get(v, "trials")?, "trials")?,
        outstanding,
        next_trial: get_u64(v, "next_trial")?,
        trials_started: get_usize(v, "trials_started")?,
        name: get_str(v, "name")?.to_owned(),
    })
}

fn bracket_state_to_json(b: &BracketState) -> JsonValue {
    JsonValue::obj([
        (
            "remaining_to_sample",
            JsonValue::Int(b.remaining_to_sample as u64),
        ),
        ("queue", trial_configs_to_json(&b.queue)),
        ("outstanding", JsonValue::Int(b.outstanding as u64)),
        ("issued", u64s_to_json(&b.issued)),
        ("results", trial_loss_pairs_to_json(&b.results)),
        ("rung", JsonValue::Int(b.rung as u64)),
        ("done", JsonValue::Bool(b.done)),
    ])
}

fn bracket_state_from_json(v: &JsonValue) -> Result<BracketState, Error> {
    Ok(BracketState {
        remaining_to_sample: get_usize(v, "remaining_to_sample")?,
        queue: trial_configs_from_json(get(v, "queue")?, "bracket queue")?,
        outstanding: get_usize(v, "outstanding")?,
        issued: u64s_from_json(get(v, "issued")?, "bracket issued")?,
        results: trial_loss_pairs_from_json(get(v, "results")?, "bracket results")?,
        rung: get_usize(v, "rung")?,
        done: get_bool(v, "done")?,
    })
}

/// Encode a [`SyncShaState`].
pub fn sync_sha_state_to_json(s: &SyncShaState) -> JsonValue {
    JsonValue::obj([
        ("config", sha_config_to_json(&s.config)),
        (
            "brackets",
            JsonValue::Arr(s.brackets.iter().map(bracket_state_to_json).collect()),
        ),
        (
            "trial_meta",
            JsonValue::Arr(
                s.trial_meta
                    .iter()
                    .map(|(t, b, c)| {
                        JsonValue::Arr(vec![
                            JsonValue::Int(*t),
                            JsonValue::Int(*b as u64),
                            config_to_json(c),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("next_trial", JsonValue::Int(s.next_trial)),
        ("name", JsonValue::Str(s.name.clone())),
    ])
}

/// Decode a [`SyncShaState`].
pub fn sync_sha_state_from_json(v: &JsonValue) -> Result<SyncShaState, Error> {
    let trial_meta = get_arr(v, "trial_meta")?
        .iter()
        .map(|triple| {
            let triple = triple
                .as_array()
                .filter(|p| p.len() == 3)
                .ok_or("trial_meta: expected [trial, bracket, config] triples")?;
            match (triple[0].as_u64(), triple[1].as_u64()) {
                (Some(t), Some(b)) => Ok((t, b as usize, config_from_json(&triple[2])?)),
                _ => Err(Error::codec("trial_meta: expected unsigned integers")),
            }
        })
        .collect::<Result<Vec<_>, Error>>()?;
    Ok(SyncShaState {
        config: sha_config_from_json(get(v, "config")?)?,
        brackets: get_arr(v, "brackets")?
            .iter()
            .map(bracket_state_from_json)
            .collect::<Result<_, _>>()?,
        trial_meta,
        next_trial: get_u64(v, "next_trial")?,
        name: get_str(v, "name")?.to_owned(),
    })
}

/// Encode an [`AsyncHyperbandState`].
pub fn hyperband_state_to_json(s: &AsyncHyperbandState) -> JsonValue {
    JsonValue::obj([
        ("config", hyperband_config_to_json(&s.config)),
        (
            "brackets",
            JsonValue::Arr(s.brackets.iter().map(asha_state_to_json).collect()),
        ),
        ("spent", float_to_json(s.spent)),
        ("current", JsonValue::Int(s.current as u64)),
        ("name", JsonValue::Str(s.name.clone())),
    ])
}

/// Decode an [`AsyncHyperbandState`].
pub fn hyperband_state_from_json(v: &JsonValue) -> Result<AsyncHyperbandState, Error> {
    Ok(AsyncHyperbandState {
        config: hyperband_config_from_json(get(v, "config")?)?,
        brackets: get_arr(v, "brackets")?
            .iter()
            .map(asha_state_from_json)
            .collect::<Result<_, _>>()?,
        spent: get_f64(v, "spent")?,
        current: get_usize(v, "current")?,
        name: get_str(v, "name")?.to_owned(),
    })
}

// ---------------------------------------------------------------------------
// Simulator state
// ---------------------------------------------------------------------------

/// Encode a [`Job`].
pub fn job_to_json(j: &Job) -> JsonValue {
    JsonValue::obj([
        ("trial", JsonValue::Int(j.trial.0)),
        ("config", config_to_json(&j.config)),
        ("rung", JsonValue::Int(j.rung as u64)),
        ("resource", float_to_json(j.resource)),
        ("bracket", JsonValue::Int(j.bracket as u64)),
        (
            "inherit_from",
            match j.inherit_from {
                Some(t) => JsonValue::Int(t.0),
                None => JsonValue::Null,
            },
        ),
    ])
}

/// Decode a [`Job`].
pub fn job_from_json(v: &JsonValue) -> Result<Job, Error> {
    Ok(Job {
        trial: TrialId(get_u64(v, "trial")?),
        config: config_from_json(get(v, "config")?)?,
        rung: get_usize(v, "rung")?,
        resource: get_f64(v, "resource")?,
        bracket: get_usize(v, "bracket")?,
        inherit_from: if get(v, "inherit_from")?.is_null() {
            None
        } else {
            Some(TrialId(get_u64(v, "inherit_from")?))
        },
    })
}

fn training_state_to_json(s: &TrainingState) -> JsonValue {
    JsonValue::obj([
        ("resource", float_to_json(s.resource)),
        ("loss", float_to_json(s.loss)),
        ("asym_jitter", float_to_json(s.asym_jitter)),
        ("rate_jitter", float_to_json(s.rate_jitter)),
        ("divergence_draw", float_to_json(s.divergence_draw)),
        ("diverged", JsonValue::Bool(s.diverged)),
    ])
}

fn training_state_from_json(v: &JsonValue) -> Result<TrainingState, Error> {
    Ok(TrainingState {
        resource: get_f64(v, "resource")?,
        loss: get_f64(v, "loss")?,
        asym_jitter: get_f64(v, "asym_jitter")?,
        rate_jitter: get_f64(v, "rate_jitter")?,
        divergence_draw: get_f64(v, "divergence_draw")?,
        diverged: get_bool(v, "diverged")?,
    })
}

fn fault_stats_to_json(f: &FaultStats) -> JsonValue {
    JsonValue::obj([
        ("dropped", JsonValue::Int(f.jobs_dropped as u64)),
        ("retried", JsonValue::Int(f.jobs_retried as u64)),
        ("timed_out", JsonValue::Int(f.jobs_timed_out as u64)),
        ("panicked", JsonValue::Int(f.jobs_panicked as u64)),
        ("poisoned", JsonValue::Int(f.jobs_poisoned as u64)),
    ])
}

fn fault_stats_from_json(v: &JsonValue) -> Result<FaultStats, Error> {
    Ok(FaultStats {
        jobs_dropped: get_usize(v, "dropped")?,
        jobs_retried: get_usize(v, "retried")?,
        jobs_timed_out: get_usize(v, "timed_out")?,
        jobs_panicked: get_usize(v, "panicked")?,
        jobs_poisoned: get_usize(v, "poisoned")?,
    })
}

fn trace_event_to_json(e: &TraceEvent) -> JsonValue {
    JsonValue::obj([
        ("time", float_to_json(e.time)),
        ("trial", JsonValue::Int(e.trial)),
        ("bracket", JsonValue::Int(e.bracket as u64)),
        ("rung", JsonValue::Int(e.rung as u64)),
        ("resource", float_to_json(e.resource)),
        ("val_loss", float_to_json(e.val_loss)),
        ("test_loss", float_to_json(e.test_loss)),
    ])
}

fn trace_event_from_json(v: &JsonValue) -> Result<TraceEvent, Error> {
    Ok(TraceEvent {
        time: get_f64(v, "time")?,
        trial: get_u64(v, "trial")?,
        bracket: get_usize(v, "bracket")?,
        rung: get_usize(v, "rung")?,
        resource: get_f64(v, "resource")?,
        val_loss: get_f64(v, "val_loss")?,
        test_loss: get_f64(v, "test_loss")?,
    })
}

/// Encode a [`SimConfig`].
pub fn sim_config_to_json(c: &SimConfig) -> JsonValue {
    JsonValue::obj([
        ("workers", JsonValue::Int(c.workers as u64)),
        ("max_time", float_to_json(c.max_time)),
        ("max_jobs", JsonValue::Int(c.max_jobs as u64)),
        ("straggler_std", float_to_json(c.straggler_std)),
        ("drop_prob", float_to_json(c.drop_prob)),
        (
            "resume",
            JsonValue::Str(
                match c.resume {
                    ResumePolicy::Checkpoint => "checkpoint",
                    ResumePolicy::FromScratch => "from_scratch",
                }
                .to_owned(),
            ),
        ),
        (
            "trace_mode",
            JsonValue::Str(
                match c.trace_mode {
                    TraceMode::Full => "full",
                    TraceMode::IncumbentOnly => "incumbent_only",
                    TraceMode::Aggregated => "aggregated",
                }
                .to_owned(),
            ),
        ),
    ])
}

/// Decode a [`SimConfig`].
pub fn sim_config_from_json(v: &JsonValue) -> Result<SimConfig, Error> {
    let mut c = SimConfig::new(get_usize(v, "workers")?, get_f64(v, "max_time")?);
    c.max_jobs = get_usize(v, "max_jobs")?;
    c.straggler_std = get_f64(v, "straggler_std")?;
    c.drop_prob = get_f64(v, "drop_prob")?;
    c.resume = match get_str(v, "resume")? {
        "checkpoint" => ResumePolicy::Checkpoint,
        "from_scratch" => ResumePolicy::FromScratch,
        other => return Err(Error::codec(format!("unknown resume policy {other:?}"))),
    };
    c.trace_mode = match get_str(v, "trace_mode")? {
        "full" => TraceMode::Full,
        "incumbent_only" => TraceMode::IncumbentOnly,
        "aggregated" => TraceMode::Aggregated,
        other => return Err(Error::codec(format!("unknown trace mode {other:?}"))),
    };
    Ok(c)
}

/// Encode a [`SimRunState`].
pub fn sim_run_state_to_json(s: &SimRunState) -> JsonValue {
    JsonValue::obj([
        ("now", float_to_json(s.now)),
        ("seq", JsonValue::Int(s.seq)),
        ("free_workers", JsonValue::Int(s.free_workers as u64)),
        ("jobs_completed", JsonValue::Int(s.jobs_completed as u64)),
        ("distinct_trials", JsonValue::Int(s.distinct_trials as u64)),
        ("faults", fault_stats_to_json(&s.faults)),
        ("scheduler_finished", JsonValue::Bool(s.scheduler_finished)),
        ("incumbent_val", float_to_json(s.incumbent_val)),
        (
            "best_config",
            match &s.best_config {
                Some((c, loss, resource)) => JsonValue::obj([
                    ("config", config_to_json(c)),
                    ("loss", float_to_json(*loss)),
                    ("resource", float_to_json(*resource)),
                ]),
                None => JsonValue::Null,
            },
        ),
        (
            "slots",
            JsonValue::Arr(
                s.slots
                    .iter()
                    .map(|slot| {
                        JsonValue::obj([
                            ("trial", JsonValue::Int(slot.trial)),
                            ("state", training_state_to_json(&slot.state)),
                            ("time_per_unit", float_to_json(slot.time_per_unit)),
                            ("completed", JsonValue::Bool(slot.completed)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "pending",
            JsonValue::Arr(
                s.pending
                    .iter()
                    .map(|p| {
                        JsonValue::obj([
                            ("time", float_to_json(p.time)),
                            ("seq", JsonValue::Int(p.seq)),
                            ("job", job_to_json(&p.job)),
                            ("dropped", JsonValue::Bool(p.dropped)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "retry",
            JsonValue::Arr(s.retry.iter().map(job_to_json).collect()),
        ),
        ("searcher", JsonValue::Str(s.searcher.clone())),
        (
            "trace",
            JsonValue::Arr(s.trace.iter().map(trace_event_to_json).collect()),
        ),
    ])
}

/// Decode a [`SimRunState`].
pub fn sim_run_state_from_json(v: &JsonValue) -> Result<SimRunState, Error> {
    let best_config = {
        let b = get(v, "best_config")?;
        if b.is_null() {
            None
        } else {
            Some((
                config_from_json(get(b, "config")?)?,
                get_f64(b, "loss")?,
                get_f64(b, "resource")?,
            ))
        }
    };
    Ok(SimRunState {
        now: get_f64(v, "now")?,
        seq: get_u64(v, "seq")?,
        free_workers: get_usize(v, "free_workers")?,
        jobs_completed: get_usize(v, "jobs_completed")?,
        distinct_trials: get_usize(v, "distinct_trials")?,
        faults: fault_stats_from_json(get(v, "faults")?)?,
        scheduler_finished: get_bool(v, "scheduler_finished")?,
        incumbent_val: get_f64(v, "incumbent_val")?,
        best_config,
        slots: get_arr(v, "slots")?
            .iter()
            .map(|slot| {
                Ok(TrialSlotState {
                    trial: get_u64(slot, "trial")?,
                    state: training_state_from_json(get(slot, "state")?)?,
                    time_per_unit: get_f64(slot, "time_per_unit")?,
                    completed: get_bool(slot, "completed")?,
                })
            })
            .collect::<Result<_, Error>>()?,
        pending: get_arr(v, "pending")?
            .iter()
            .map(|p| {
                Ok(PendingJob {
                    time: get_f64(p, "time")?,
                    seq: get_u64(p, "seq")?,
                    job: job_from_json(get(p, "job")?)?,
                    dropped: get_bool(p, "dropped")?,
                })
            })
            .collect::<Result<_, Error>>()?,
        retry: get_arr(v, "retry")?
            .iter()
            .map(job_from_json)
            .collect::<Result<_, _>>()?,
        searcher: get_str(v, "searcher")?.to_owned(),
        trace: get_arr(v, "trace")?
            .iter()
            .map(trace_event_from_json)
            .collect::<Result<_, _>>()?,
    })
}

/// Encode raw xoshiro256++ state words captured by `StdRng::state`.
pub fn rng_state_to_json(s: [u64; 4]) -> JsonValue {
    JsonValue::Arr(s.iter().map(|&w| JsonValue::Int(w)).collect())
}

/// Decode RNG state words written by [`rng_state_to_json`].
pub fn rng_state_from_json(v: &JsonValue) -> Result<[u64; 4], Error> {
    let words = u64s_from_json(v, "rng state")?;
    let arr: [u64; 4] = words
        .try_into()
        .map_err(|_| "rng state must have exactly 4 words".to_owned())?;
    Ok(arr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &JsonValue) -> JsonValue {
        JsonValue::parse(&v.render()).expect("rendered JSON reparses")
    }

    #[test]
    fn float_codec_handles_non_finite() {
        for v in [0.5, -3.25, f64::INFINITY, f64::NEG_INFINITY] {
            let back = float_from_json(&roundtrip(&float_to_json(v))).unwrap();
            assert_eq!(v.to_bits(), back.to_bits());
        }
        let nan = float_from_json(&roundtrip(&float_to_json(f64::NAN))).unwrap();
        assert!(nan.is_nan());
        // Telemetry-log compatibility: null decodes as +inf.
        assert_eq!(float_from_json(&JsonValue::Null).unwrap(), f64::INFINITY);
    }

    #[test]
    fn space_round_trips_every_param_kind() {
        let space = SearchSpace::builder()
            .continuous("lr", 1e-4, 1.0, Scale::Log)
            .continuous("mom", 0.0, 0.99, Scale::Linear)
            .discrete("layers", -2, 7)
            .ordinal("batch", &[32.0, 64.0, 128.0])
            .categorical("act", &["relu", "tanh"])
            .build()
            .unwrap();
        let back = space_from_json(&roundtrip(&space_to_json(&space))).unwrap();
        assert_eq!(
            space_to_json(&back).render(),
            space_to_json(&space).render()
        );
    }

    #[test]
    fn config_round_trips() {
        let c = Config::new(vec![
            ParamValue::Float(0.125),
            ParamValue::Int(-5),
            ParamValue::Index(2),
        ]);
        let back = config_from_json(&roundtrip(&config_to_json(&c))).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn job_round_trips() {
        let job = Job {
            trial: TrialId(42),
            config: Config::new(vec![ParamValue::Float(0.5)]),
            rung: 3,
            resource: 64.0,
            bracket: 1,
            inherit_from: Some(TrialId(7)),
        };
        assert_eq!(job_from_json(&roundtrip(&job_to_json(&job))).unwrap(), job);
    }

    #[test]
    fn sim_config_round_trips() {
        let cfg = SimConfig::new(25, 60.0)
            .with_stragglers(0.5)
            .with_drops(0.01)
            .with_max_jobs(1000)
            .with_resume(ResumePolicy::FromScratch)
            .with_trace_mode(TraceMode::IncumbentOnly);
        let back = sim_config_from_json(&roundtrip(&sim_config_to_json(&cfg))).unwrap();
        assert_eq!(back, cfg);
    }
}

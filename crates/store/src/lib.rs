//! Durable experiment store for ASHA runs: write-ahead event log behind a
//! versioned codec, full and delta snapshots, group-committed fsyncs, crash
//! recovery, and a multi-experiment supervisor.
//!
//! The store makes a tuning run a *recoverable* object. Every telemetry
//! event the run emits is appended to a write-ahead log with an explicit
//! fsync discipline ([`Durability`]), and on a job cadence the full run
//! state — scheduler rungs/brackets, sampler cursors, raw RNG words, and
//! the simulator's event loop — is checkpointed: a full snapshot file, or
//! a *delta* (a structural diff against the previous checkpoint) while the
//! chain stays short. How any of this becomes bytes is a [`StoreFormat`]'s
//! business: `jsonl-v1` (one JSON object per line / per file, the original
//! dialect) and `binary-v2` (length-prefixed, CRC-guarded frames) are both
//! fully readable and writable, sniffed per file, so pre-redesign stores
//! open unchanged and dialects may mix within one directory. Because every
//! component of the system is deterministic given its state and the RNG
//! stream, recovery after a crash (load the newest durable checkpoint —
//! base snapshot plus its delta chain — discard the WAL suffix past its
//! marker, continue) produces a run whose decisions, telemetry, and final
//! result are bit-for-bit identical to one that never crashed.
//!
//! Layers, bottom up:
//!
//! - [`codec`]: hand-rolled JSON codecs for every persisted type (the
//!   vendored `serde` is a stub), including exact `f64` round-trips and
//!   non-finite loss encoding.
//! - [`binary`]: the byte-level toolkit for `binary-v2` — CRC32, LEB128
//!   varints, and a compact tagged encoding of JSON documents.
//! - [`format`]: the versioned codec API — [`WalCodec`] and
//!   [`SnapshotCodec`] traits, the [`StoreFormat`] registry, and per-file
//!   dialect detection.
//! - [`delta`]: structural diff/patch over JSON documents, the engine
//!   behind delta snapshots.
//! - [`wal`]: the append-only log of typed [`WalRecord`]s — scheduler
//!   decisions, job events, checkpoint markers, lifecycle events — with
//!   torn-tail-tolerant reading in either dialect.
//! - [`snapshot`]: crash-safe checkpoint files (full and delta) and the
//!   [`StoredScheduler`] wrapper that restores any supported scheduler
//!   kind from data.
//! - [`tail`]: live, dialect-agnostic WAL following ([`WalTail`]), every
//!   record rendered as its `jsonl-v1` line — what the service streams to
//!   subscribers.
//! - [`commit`]: the group-commit pipeline that coalesces WAL fsyncs
//!   across experiments into one fsync per commit window.
//! - [`experiment`]: one experiment directory (`meta.json` + WAL +
//!   checkpoints) and [`DurableRun`], the persisting sim driver with
//!   [`DurableRun::create`] / [`DurableRun::resume`]; plus
//!   [`replay_scheduler`] for scheduler-level WAL-suffix replay in
//!   executor-driven runs.
//! - [`supervisor`]: many named experiments in one process, each on a
//!   worker thread with independent pause/resume/abort, under a crash-safe
//!   manifest and an optional shared commit pipeline.
//!
//! # Example: kill-and-recover
//!
//! ```
//! use asha_store::{BenchSpec, DurableRun, ExperimentMeta, RunOptions, SchedulerState};
//! use asha_core::{Asha, AshaConfig};
//! use asha_sim::SimConfig;
//! use asha_surrogate::BenchmarkModel;
//!
//! let spec = BenchSpec { preset: "svm_vehicle".into(), seed: 1 };
//! let bench = spec.build().unwrap();
//! // The scheduler samples from the benchmark's own search space.
//! let space = bench.space().clone();
//! let scheduler = Asha::new(space.clone(), AshaConfig::new(1.0, 27.0, 3.0));
//! let meta = ExperimentMeta {
//!     name: "demo".into(),
//!     space,
//!     initial: SchedulerState::Asha(scheduler.export_state()),
//!     sampler: None,
//!     seed: 7,
//!     sim: SimConfig::new(4, 40.0),
//!     bench: spec,
//! };
//! let dir = std::env::temp_dir().join(format!("asha-store-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! // Run a while, then "crash" (drop without finishing).
//! let mut run = DurableRun::create(&dir, &meta, &bench, RunOptions::default()).unwrap();
//! run.run_until_jobs(10).unwrap();
//! drop(run);
//!
//! // Recover and finish: same result as a run that never stopped.
//! let resumed = DurableRun::resume(&dir, &meta, &bench, RunOptions::default()).unwrap();
//! let result = resumed.run_to_completion().unwrap();
//! assert!(result.jobs_completed >= 10);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod codec;
pub mod commit;
pub mod delta;
mod error;
pub mod experiment;
pub mod format;
pub mod metrics;
pub mod snapshot;
pub mod supervisor;
pub mod tail;
pub mod wal;

pub use crate::commit::{CommitHandle, CommitPipeline};
pub use crate::error::{Error, ErrorKind, StoreError};
pub use crate::experiment::{
    read_meta, replay_scheduler, write_meta, BenchSpec, DurableRun, ExperimentMeta, RunOptions,
    RunOptionsBuilder, WalRecorder, META_FILE, META_SCHEMA, WAL_FILE,
};
pub use crate::format::{DecodeStep, EncodeBuf, SnapshotCodec, StoreFormat, WalCodec};
pub use crate::metrics::StoreMetrics;
pub use crate::snapshot::{
    delta_file_name, list_snapshots, load_latest, make_sampler, read_document, write_document,
    DeltaDoc, SamplerSpec, SchedulerState, Snapshot, StoredScheduler, DELTA_SCHEMA,
    SNAPSHOT_SCHEMA,
};
pub use crate::supervisor::{
    read_manifest, ExperimentStatus, ExperimentSupervisor, ManifestEntry, StatusListener,
    MANIFEST_FILE, MANIFEST_SCHEMA,
};
pub use crate::tail::{WalChunk, WalTail};
#[allow(deprecated)]
pub use crate::wal::SyncPolicy;
pub use crate::wal::{
    read_wal, Durability, MarkerRef, SnapMarker, StoreEvent, WalContents, WalRecord, WalWriter,
};

//! Durable experiment store for ASHA runs: write-ahead event log, periodic
//! full-state snapshots, crash recovery, and a multi-experiment supervisor.
//!
//! The store makes a tuning run a *recoverable* object. Every telemetry
//! event the run emits is appended to a JSONL write-ahead log with an
//! explicit fsync discipline ([`SyncPolicy`]), and on a job cadence the full
//! run state — scheduler rungs/brackets, sampler cursors, raw RNG words,
//! and the simulator's event loop — is written to a versioned snapshot
//! file. Because every component of the system is deterministic given its
//! state and the RNG stream, recovery after a crash (load the newest durable
//! snapshot, discard the WAL suffix past its marker, continue) produces a
//! run whose decisions, telemetry, and final result are bit-for-bit
//! identical to one that never crashed.
//!
//! Layers, bottom up:
//!
//! - [`codec`]: hand-rolled JSON codecs for every persisted type (the
//!   vendored `serde` is a stub), including exact `f64` round-trips and
//!   non-finite loss encoding.
//! - [`wal`]: the append-only log — telemetry lines in the exact `asha-obs`
//!   schema plus store markers (`snapshot`, `paused`, `resumed`, ...), with
//!   torn-tail-tolerant reading.
//! - [`snapshot`]: crash-safe snapshot files and the [`StoredScheduler`]
//!   wrapper that restores any supported scheduler kind from data.
//! - [`experiment`]: one experiment directory (`meta.json` + WAL +
//!   snapshots) and [`DurableRun`], the persisting sim driver with
//!   [`DurableRun::create`] / [`DurableRun::resume`]; plus
//!   [`replay_scheduler`] for scheduler-level WAL-suffix replay in
//!   executor-driven runs.
//! - [`supervisor`]: many named experiments in one process, each on a
//!   worker thread with independent pause/resume/abort, under a crash-safe
//!   manifest.
//!
//! # Example: kill-and-recover
//!
//! ```
//! use asha_store::{BenchSpec, DurableRun, ExperimentMeta, RunOptions, SchedulerState};
//! use asha_core::{Asha, AshaConfig};
//! use asha_sim::SimConfig;
//! use asha_surrogate::BenchmarkModel;
//!
//! let spec = BenchSpec { preset: "svm_vehicle".into(), seed: 1 };
//! let bench = spec.build().unwrap();
//! // The scheduler samples from the benchmark's own search space.
//! let space = bench.space().clone();
//! let scheduler = Asha::new(space.clone(), AshaConfig::new(1.0, 27.0, 3.0));
//! let meta = ExperimentMeta {
//!     name: "demo".into(),
//!     space,
//!     initial: SchedulerState::Asha(scheduler.export_state()),
//!     sampler: None,
//!     seed: 7,
//!     sim: SimConfig::new(4, 40.0),
//!     bench: spec,
//! };
//! let dir = std::env::temp_dir().join(format!("asha-store-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! // Run a while, then "crash" (drop without finishing).
//! let mut run = DurableRun::create(&dir, &meta, &bench, RunOptions::default()).unwrap();
//! run.run_until_jobs(10).unwrap();
//! drop(run);
//!
//! // Recover and finish: same result as a run that never stopped.
//! let resumed = DurableRun::resume(&dir, &meta, &bench, RunOptions::default()).unwrap();
//! let result = resumed.run_to_completion().unwrap();
//! assert!(result.jobs_completed >= 10);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod error;
pub mod experiment;
pub mod metrics;
pub mod snapshot;
pub mod supervisor;
pub mod wal;

pub use crate::error::{Error, ErrorKind, StoreError};
pub use crate::experiment::{
    read_meta, replay_scheduler, write_meta, BenchSpec, DurableRun, ExperimentMeta, RunOptions,
    RunOptionsBuilder, WalRecorder, META_FILE, META_SCHEMA, WAL_FILE,
};
pub use crate::metrics::StoreMetrics;
pub use crate::snapshot::{
    list_snapshots, load_latest, make_sampler, SamplerSpec, SchedulerState, Snapshot,
    StoredScheduler, SNAPSHOT_SCHEMA,
};
pub use crate::supervisor::{
    read_manifest, ExperimentStatus, ExperimentSupervisor, ManifestEntry, StatusListener,
    MANIFEST_FILE, MANIFEST_SCHEMA,
};
pub use crate::wal::{read_wal, StoreEvent, SyncPolicy, WalContents, WalRecord, WalWriter};

//! One experiment's on-disk store and the durable run driver on top of it.
//!
//! Directory layout (one directory per experiment):
//!
//! ```text
//! <dir>/meta.json             immutable: space, scheduler, seed, sim, benchmark
//! <dir>/wal.jsonl             write-ahead log (name is historical: the codec
//!                             — jsonl-v1 or binary-v2 — is sniffed from the
//!                             file's first bytes, never from its extension)
//! <dir>/snap-<seq>.<ext>      full-state snapshots (scheduler + RNG + sim loop)
//! <dir>/delta-<seq>-<k>.<ext> delta snapshots: diffs chained on snap <seq>
//! ```
//!
//! The recovery protocol pivots on the WAL's checkpoint *markers*: a
//! checkpoint file (full snapshot or delta) is fsynced **before** its
//! marker is appended, so the newest marker in the WAL always names a
//! durable recovery point. Recovery loads the marker's base full snapshot,
//! applies its chained deltas, discards the WAL suffix past the marker
//! (the resumed engine deterministically regenerates the identical
//! events), and continues — producing a final log and result bit-for-bit
//! equal to a run that never crashed.

use std::path::{Path, PathBuf};

use asha_core::telemetry::{Event, EventKind, IdleKind, Recorder};
use asha_core::{Decision, Durability, Observation, Scheduler, TrialId};
use asha_metrics::JsonValue;
use asha_sim::{SimConfig, SimEngine, SimResult};
use asha_space::SearchSpace;
use asha_surrogate::CurveBenchmark;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::codec;
use crate::delta;
use crate::error::{Error, StoreError};
use crate::format::{EncodeBuf, StoreFormat};
use crate::snapshot::{self, DeltaDoc, SchedulerState, Snapshot, StoredScheduler};
use crate::wal::{read_wal, MarkerRef, SnapMarker, StoreEvent, WalContents, WalRecord, WalWriter};

/// Schema tag written into every `meta.json`.
pub const META_SCHEMA: &str = "asha-store-meta-v1";
/// File name of the experiment metadata.
pub const META_FILE: &str = "meta.json";
/// File name of the write-ahead log.
pub const WAL_FILE: &str = "wal.jsonl";

/// Which surrogate benchmark an experiment runs against, by preset name —
/// benchmarks are code, so the store records how to rebuild one rather
/// than trying to serialize it.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSpec {
    /// An `asha_surrogate::presets` constructor name.
    pub preset: String,
    /// The surrogate's surface seed.
    pub seed: u64,
}

impl BenchSpec {
    /// Rebuild the benchmark. Fails on an unknown preset name (e.g. a store
    /// written by a newer version).
    pub fn build(&self) -> Result<CurveBenchmark, Error> {
        use asha_surrogate::presets;
        Ok(match self.preset.as_str() {
            "cifar10_cuda_convnet" => presets::cifar10_cuda_convnet(self.seed),
            "cifar10_small_cnn" => presets::cifar10_small_cnn(self.seed),
            "svhn_small_cnn" => presets::svhn_small_cnn(self.seed),
            "ptb_lstm" => presets::ptb_lstm(self.seed),
            "ptb_dropconnect_lstm" => presets::ptb_dropconnect_lstm(self.seed),
            "svm_vehicle" => presets::svm_vehicle(self.seed),
            "svm_mnist" => presets::svm_mnist(self.seed),
            other => return Err(Error::codec(format!("unknown benchmark preset {other:?}"))),
        })
    }
}

/// Everything needed to start (or restart from nothing) one experiment.
///
/// `initial` is the scheduler's exported state *before any call* — storing
/// a state rather than a config means recovery has a single path: rebuild
/// from a [`SchedulerState`], whether that state came from `meta.json` or
/// from a snapshot.
#[derive(Debug, Clone)]
pub struct ExperimentMeta {
    /// The experiment's name (unique within a supervisor).
    pub name: String,
    /// The search space.
    pub space: SearchSpace,
    /// The scheduler's initial exported state.
    pub initial: SchedulerState,
    /// Sampler kind attached to the scheduler (`"tpe"`, `"gp"`); `None`
    /// means the default uniform random sampler. Stored here — not in the
    /// scheduler state — because samplers are code: the store records how
    /// to rebuild one, and snapshots carry the model cursor.
    pub sampler: Option<String>,
    /// Seed of the run's RNG.
    pub seed: u64,
    /// Simulation parameters.
    pub sim: SimConfig,
    /// The surrogate benchmark to run against.
    pub bench: BenchSpec,
}

impl ExperimentMeta {
    /// Encode as JSON. The `sampler` key is present only for model-based
    /// samplers, so random-run metas are byte-identical to earlier store
    /// versions (and old metas decode with `sampler: None`).
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("schema", JsonValue::Str(META_SCHEMA.to_owned())),
            ("name", JsonValue::Str(self.name.clone())),
            ("space", codec::space_to_json(&self.space)),
            ("scheduler", self.initial.to_json()),
        ];
        if let Some(kind) = &self.sampler {
            fields.push(("sampler", JsonValue::Str(kind.clone())));
        }
        fields.push(("seed", JsonValue::Int(self.seed)));
        fields.push(("sim", codec::sim_config_to_json(&self.sim)));
        fields.push((
            "bench",
            JsonValue::obj([
                ("preset", JsonValue::Str(self.bench.preset.clone())),
                ("seed", JsonValue::Int(self.bench.seed)),
            ]),
        ));
        JsonValue::obj(fields)
    }

    /// Decode, verifying the schema tag.
    pub fn from_json(v: &JsonValue) -> Result<Self, Error> {
        let schema = v
            .get("schema")
            .and_then(|s| s.as_str())
            .ok_or("meta missing schema")?;
        if schema != META_SCHEMA {
            return Err(Error::codec(format!(
                "unsupported meta schema {schema:?} (expected {META_SCHEMA:?})"
            )));
        }
        let bench = v.get("bench").ok_or("meta missing bench")?;
        Ok(ExperimentMeta {
            name: v
                .get("name")
                .and_then(|n| n.as_str())
                .ok_or("meta missing name")?
                .to_owned(),
            space: codec::space_from_json(v.get("space").ok_or("meta missing space")?)?,
            initial: SchedulerState::from_json(
                v.get("scheduler").ok_or("meta missing scheduler")?,
            )?,
            sampler: v.get("sampler").and_then(|s| s.as_str()).map(str::to_owned),
            seed: v
                .get("seed")
                .and_then(|s| s.as_u64())
                .ok_or("meta missing seed")?,
            sim: codec::sim_config_from_json(v.get("sim").ok_or("meta missing sim")?)?,
            bench: BenchSpec {
                preset: bench
                    .get("preset")
                    .and_then(|p| p.as_str())
                    .ok_or("bench missing preset")?
                    .to_owned(),
                seed: bench
                    .get("seed")
                    .and_then(|s| s.as_u64())
                    .ok_or("bench missing seed")?,
            },
        })
    }
}

/// Write `meta.json` crash-safely (temp file + fsync + rename).
pub fn write_meta(dir: &Path, meta: &ExperimentMeta) -> Result<(), StoreError> {
    let path = dir.join(META_FILE);
    let tmp = dir.join(format!("{META_FILE}.tmp"));
    std::fs::write(&tmp, meta.to_json().render()).map_err(|e| StoreError::io(&tmp, e))?;
    std::fs::File::open(&tmp)
        .and_then(|f| f.sync_all())
        .map_err(|e| StoreError::io(&tmp, e))?;
    std::fs::rename(&tmp, &path).map_err(|e| StoreError::io(&path, e))?;
    snapshot::fsync_dir(dir)
}

/// Read and decode `<dir>/meta.json`.
pub fn read_meta(dir: &Path) -> Result<ExperimentMeta, StoreError> {
    let path = dir.join(META_FILE);
    let text = std::fs::read_to_string(&path).map_err(|e| StoreError::io(&path, e))?;
    JsonValue::parse(&text)
        .map_err(|e| Error::codec(e.to_string()))
        .and_then(|v| ExperimentMeta::from_json(&v))
        .map_err(|e| e.corrupt_at(&path))
}

/// A [`Recorder`] that appends every telemetry event to the WAL, stamping
/// gap-free sequence numbers. `Recorder::record` is infallible by trait, so
/// I/O errors are stashed and surfaced by [`WalRecorder::take_error`] after
/// each step.
#[derive(Debug)]
pub struct WalRecorder {
    writer: WalWriter,
    next_seq: u64,
    error: Option<StoreError>,
}

impl WalRecorder {
    /// Wrap a WAL writer; `next_seq` is the next telemetry sequence number
    /// (0 for a fresh run, the snapshot's event count after recovery).
    pub fn new(writer: WalWriter, next_seq: u64) -> Self {
        WalRecorder {
            writer,
            next_seq,
            error: None,
        }
    }

    /// The next telemetry sequence number (== events written so far).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Access the underlying writer (for store events and syncs).
    pub fn writer(&mut self) -> &mut WalWriter {
        &mut self.writer
    }

    /// Surface any I/O error that occurred inside `record`.
    pub fn take_error(&mut self) -> Result<(), StoreError> {
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Recorder for WalRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, now: f64, kind: EventKind) {
        if self.error.is_some() {
            return;
        }
        let event = Event {
            seq: self.next_seq,
            time: now,
            kind,
        };
        match self.writer.append(&WalRecord::telemetry(event)) {
            Ok(()) => self.next_seq += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// Durability knobs for a [`DurableRun`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// WAL fsync cadence.
    pub sync: Durability,
    /// Take a checkpoint every `snapshot_jobs` completed jobs.
    pub snapshot_jobs: usize,
    /// On-disk dialect for newly created files. An existing WAL keeps its
    /// own dialect on resume (sniffed from the file), but checkpoints
    /// written after the resume use this format — mixed-dialect stores are
    /// fully supported.
    pub format: StoreFormat,
    /// Maximum delta snapshots between full snapshots. `0` disables delta
    /// checkpoints entirely (every checkpoint is a full snapshot);
    /// otherwise each full snapshot is followed by up to this many diffs
    /// before the next full one, bounding recovery to `delta_chain` patch
    /// applications.
    pub delta_chain: usize,
}

impl Default for RunOptions {
    /// Fsync every 64 WAL records, checkpoint every 200 completed jobs in
    /// the binary dialect, with up to 8 deltas per full snapshot.
    fn default() -> Self {
        RunOptions {
            sync: Durability::default(),
            snapshot_jobs: 200,
            format: StoreFormat::default(),
            delta_chain: 8,
        }
    }
}

impl RunOptions {
    /// A validating builder: [`RunOptionsBuilder::build`] returns a typed
    /// [`asha_core::Error`] (kind `Config`) instead of panicking. Defaults
    /// match [`RunOptions::default`].
    pub fn builder() -> RunOptionsBuilder {
        RunOptionsBuilder {
            opts: RunOptions::default(),
        }
    }
}

/// Builder for [`RunOptions`]; see [`RunOptions::builder`].
///
/// ```
/// use asha_store::{Durability, RunOptions, StoreFormat};
///
/// let opts = RunOptions::builder()
///     .sync(Durability::Sync)
///     .snapshot_jobs(50)
///     .format(StoreFormat::JsonlV1)
///     .delta_chain(0)
///     .build()
///     .unwrap();
/// assert_eq!(opts.snapshot_jobs, 50);
/// assert!(RunOptions::builder().snapshot_jobs(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct RunOptionsBuilder {
    opts: RunOptions,
}

impl RunOptionsBuilder {
    /// WAL fsync cadence.
    pub fn sync(mut self, sync: Durability) -> Self {
        self.opts.sync = sync;
        self
    }

    /// Take a checkpoint every `snapshot_jobs` completed jobs (must end up
    /// > 0).
    pub fn snapshot_jobs(mut self, snapshot_jobs: usize) -> Self {
        self.opts.snapshot_jobs = snapshot_jobs;
        self
    }

    /// On-disk dialect for newly created files.
    pub fn format(mut self, format: StoreFormat) -> Self {
        self.opts.format = format;
        self
    }

    /// Maximum delta snapshots between full snapshots (0 = always full).
    pub fn delta_chain(mut self, delta_chain: usize) -> Self {
        self.opts.delta_chain = delta_chain;
        self
    }

    /// Validate and produce the options.
    pub fn build(self) -> Result<RunOptions, asha_core::Error> {
        if self.opts.snapshot_jobs == 0 {
            return Err(asha_core::Error::config("snapshot_jobs must be positive"));
        }
        if let Durability::EveryN(0) = self.opts.sync {
            return Err(asha_core::Error::config(
                "sync EveryN cadence must be positive",
            ));
        }
        Ok(self.opts)
    }
}

/// The in-memory tail of the delta chain: which full snapshot it hangs
/// off, how long it is, and the previous checkpoint's document (diff base).
#[derive(Debug)]
struct ChainState {
    /// Base full snapshot's sequence number.
    snap: u64,
    /// Deltas written on top so far.
    len: u64,
    /// The previous checkpoint's JSON document (full or patched), kept as
    /// the base for the next structural diff.
    doc: JsonValue,
}

/// A simulated tuning run with durable state: every telemetry event goes to
/// the WAL and checkpoints (full snapshots plus bounded delta chains) are
/// taken on a job cadence, so the run can be killed at any instant and
/// [resumed](DurableRun::resume) to the identical final result.
pub struct DurableRun<'b> {
    dir: PathBuf,
    engine: SimEngine<'b, StoredScheduler>,
    rng: StdRng,
    recorder: WalRecorder,
    next_snap: u64,
    last_snapshot_jobs: usize,
    opts: RunOptions,
    finished_recorded: bool,
    /// The live delta chain; `None` until the first full snapshot lands
    /// (or when `delta_chain` is 0, which never opens a chain).
    chain: Option<ChainState>,
    /// Optional durability-plane histograms (snapshot-write latency; the
    /// WAL writer holds its own handle for append/fsync).
    metrics: Option<std::sync::Arc<crate::StoreMetrics>>,
}

impl<'b> DurableRun<'b> {
    /// Initialize a fresh experiment directory and the run driving it.
    /// Writes `meta.json`, starts the WAL, and takes snapshot 0 (the
    /// pristine state), so the directory is recoverable from the first
    /// instant.
    pub fn create(
        dir: &Path,
        meta: &ExperimentMeta,
        bench: &'b dyn asha_surrogate::BenchmarkModel,
        opts: RunOptions,
    ) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, e))?;
        write_meta(dir, meta)?;
        let scheduler = StoredScheduler::from_state_with_sampler(
            meta.space.clone(),
            meta.initial.clone(),
            meta.sampler.as_deref().unwrap_or("random"),
        )?;
        let mut wal = WalWriter::create(&dir.join(WAL_FILE), opts.sync, opts.format)?;
        wal.append(&WalRecord::Meta {
            time: 0.0,
            event: StoreEvent::ExperimentCreated {
                name: meta.name.clone(),
            },
        })?;
        let engine = SimEngine::new(meta.sim.clone(), scheduler, bench);
        let rng = StdRng::seed_from_u64(meta.seed);
        let mut run = DurableRun {
            dir: dir.to_owned(),
            engine,
            rng,
            recorder: WalRecorder::new(wal, 0),
            next_snap: 0,
            last_snapshot_jobs: 0,
            opts,
            finished_recorded: false,
            chain: None,
            metrics: None,
        };
        run.write_snapshot()?;
        Ok(run)
    }

    /// Recover a run from its experiment directory: load the snapshot named
    /// by the newest durable WAL marker, discard the WAL suffix past it
    /// (the resumed engine regenerates those events identically), and
    /// continue.
    ///
    /// The caller owns the benchmark; rebuild it from
    /// [`ExperimentMeta::bench`] (via [`read_meta`]) or pass the original.
    pub fn resume(
        dir: &Path,
        meta: &ExperimentMeta,
        bench: &'b dyn asha_surrogate::BenchmarkModel,
        opts: RunOptions,
    ) -> Result<Self, StoreError> {
        let wal_path = dir.join(WAL_FILE);
        let contents = read_wal(&wal_path)?;
        let marker = contents.last_snapshot_marker().ok_or_else(|| {
            StoreError::corrupt(
                &wal_path,
                "no checkpoint marker in WAL (store never initialized?)",
            )
        })?;
        let snap_path = Snapshot::find(dir, marker.snap).ok_or_else(|| {
            StoreError::corrupt(
                dir,
                format!(
                    "full snapshot {} named by the WAL marker is missing",
                    marker.snap
                ),
            )
        })?;
        // Rebuild the checkpoint document: the base full snapshot, then the
        // marker's delta chain patched on top in order.
        let mut doc = snapshot::read_document(&snap_path)?;
        for k in 1..=marker.delta {
            let delta_doc = DeltaDoc::load(dir, marker.snap, k)?;
            doc = delta::apply(&doc, &delta_doc.patch).map_err(|msg| {
                StoreError::corrupt(
                    dir,
                    format!("applying delta {k} of snapshot {}: {msg}", marker.snap),
                )
            })?;
        }
        let snap = Snapshot::from_json(&doc).map_err(|e| e.corrupt_at(&snap_path))?;
        if snap.events != marker.events {
            return Err(StoreError::corrupt(
                &snap_path,
                format!(
                    "checkpoint covers {} events but its WAL marker says {}",
                    snap.events, marker.events
                ),
            ));
        }
        truncate_after_marker(&wal_path, &contents, marker)?;
        let sim_state = snap.sim.ok_or_else(|| {
            StoreError::corrupt(&snap_path, "snapshot has no simulator state to resume")
        })?;
        // Rebuild the sampling plane alongside the scheduler: a fresh
        // sampler of the recorded kind, rehydrated from the snapshot's
        // cursors, so an adaptive sampler resumes warm — not silently reset
        // to cold — and the recovered run stays byte-identical.
        let sampler_kind = snap
            .sampler
            .as_ref()
            .map(|spec| spec.kind.as_str())
            .or(meta.sampler.as_deref())
            .unwrap_or("random");
        let mut scheduler = StoredScheduler::from_state_with_sampler(
            meta.space.clone(),
            snap.scheduler,
            sampler_kind,
        )
        .map_err(|e| e.corrupt_at(&snap_path))?;
        if let Some(spec) = &snap.sampler {
            scheduler.restore_sampler_spec(spec);
        }
        let engine = SimEngine::restore(meta.sim.clone(), scheduler, bench, sim_state);
        let rng = StdRng::from_state(snap.rng);
        let mut wal = WalWriter::open_append(&wal_path, opts.sync, marker.events, opts.format)?;
        wal.append(&WalRecord::Meta {
            time: engine.now(),
            event: StoreEvent::Resumed,
        })?;
        let jobs = engine.jobs_completed();
        // Reopen the delta chain exactly where the marker left it, so the
        // post-recovery checkpoint schedule (and hence every file written
        // from here on) matches the uninterrupted run's byte for byte.
        let chain = (opts.delta_chain > 0).then_some(ChainState {
            snap: marker.snap,
            len: marker.delta,
            doc,
        });
        Ok(DurableRun {
            dir: dir.to_owned(),
            engine,
            rng,
            recorder: WalRecorder::new(wal, marker.events),
            next_snap: marker.snap + 1,
            last_snapshot_jobs: jobs,
            opts,
            finished_recorded: false,
            chain,
            metrics: None,
        })
    }

    /// Attach durability-plane histograms: snapshot writes record here,
    /// and the underlying WAL writer gets the same handle for appends and
    /// fsyncs.
    pub fn set_metrics(&mut self, metrics: std::sync::Arc<crate::StoreMetrics>) {
        self.recorder.writer().set_metrics(metrics.clone());
        self.metrics = Some(metrics);
    }

    /// Route this run's WAL fsyncs through a shared group-commit pipeline:
    /// registers the WAL file and hands the writer the resulting
    /// [`CommitHandle`](crate::CommitHandle). Policy-due fsyncs become
    /// asynchronous batch requests; checkpoint markers still block for
    /// their durability ack.
    pub fn attach_commit_pipeline(
        &mut self,
        pipeline: &crate::CommitPipeline,
    ) -> Result<(), StoreError> {
        let file = self.recorder.writer().file_clone()?;
        let handle = pipeline.register(file)?;
        self.recorder.writer().set_group_commit(handle);
        Ok(())
    }

    /// The experiment directory this run persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Jobs completed so far.
    pub fn jobs_completed(&self) -> usize {
        self.engine.jobs_completed()
    }

    /// Whether the run has ended.
    pub fn is_done(&self) -> bool {
        self.engine.is_done()
    }

    /// Push any WAL records still buffered in userspace to the OS (no
    /// fsync). Crash durability still follows the configured
    /// [`Durability`]; this only narrows the loss window for buffered
    /// records, e.g. before a long idle stretch.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.recorder.writer().flush()
    }

    /// Advance the run by one event-loop step, persisting telemetry and
    /// snapshotting on the configured cadence. Returns `false` when the run
    /// is over (and its final snapshot + `experiment_finished` marker are
    /// durable).
    pub fn step(&mut self) -> Result<bool, StoreError> {
        let alive = self.engine.step(&mut self.rng, &mut self.recorder);
        self.recorder.take_error()?;
        if alive {
            if self.engine.jobs_completed() - self.last_snapshot_jobs >= self.opts.snapshot_jobs {
                self.write_snapshot()?;
            }
        } else if !self.finished_recorded {
            self.finished_recorded = true;
            let record = WalRecord::Meta {
                time: self.engine.now(),
                event: StoreEvent::ExperimentFinished,
            };
            self.recorder.writer().append(&record)?;
            self.write_snapshot()?;
        }
        Ok(alive)
    }

    /// Drive the run to completion and return its result.
    pub fn run_to_completion(mut self) -> Result<SimResult, StoreError> {
        while self.step()? {}
        Ok(self.into_result())
    }

    /// Step until at least `jobs` jobs have completed (or the run ends).
    /// Returns whether the run is still live — the hook crash-injection
    /// tests use to die at a controlled point.
    pub fn run_until_jobs(&mut self, jobs: usize) -> Result<bool, StoreError> {
        while self.engine.jobs_completed() < jobs {
            if !self.step()? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Persist a pause point: snapshot the full state, then append a
    /// `paused` marker and sync. After this the process can idle (or exit)
    /// and the run resumes from exactly here.
    pub fn mark_paused(&mut self) -> Result<(), StoreError> {
        self.write_snapshot()?;
        let record = WalRecord::Meta {
            time: self.engine.now(),
            event: StoreEvent::Paused,
        };
        self.recorder.writer().append(&record)?;
        self.recorder.writer().sync()
    }

    /// Append a `resumed` marker after a pause.
    pub fn mark_resumed(&mut self) -> Result<(), StoreError> {
        let record = WalRecord::Meta {
            time: self.engine.now(),
            event: StoreEvent::Resumed,
        };
        self.recorder.writer().append(&record)?;
        self.recorder.writer().sync()
    }

    /// Take a checkpoint now (also called automatically on the job cadence
    /// and at the end of the run): a delta while the current chain is
    /// shorter than [`RunOptions::delta_chain`], a full snapshot otherwise.
    ///
    /// The choice is a pure function of the chain position — never of
    /// content sizes — so an interrupted-and-recovered run makes exactly
    /// the same full/delta decisions as an uninterrupted one, keeping the
    /// two stores byte-identical.
    pub fn write_snapshot(&mut self) -> Result<(), StoreError> {
        let events = self.recorder.next_seq();
        let can_delta = self
            .chain
            .as_ref()
            .is_some_and(|chain| (chain.len as usize) < self.opts.delta_chain);
        let start = self.metrics.is_some().then(std::time::Instant::now);
        let marker = if can_delta {
            let chain = self.chain.as_mut().expect("can_delta checked chain");
            // The delta keeps the base snapshot's seq: patching the chain
            // onto the base must reproduce this document exactly.
            let snap = Snapshot {
                seq: chain.snap,
                events,
                scheduler: self.engine.scheduler().export_state(),
                sampler: self.engine.scheduler().export_sampler_spec(),
                rng: self.rng.state(),
                sim: Some(self.engine.export_state()),
            };
            let doc = snap.to_json();
            let delta = chain.len + 1;
            let delta_doc = DeltaDoc {
                snap: chain.snap,
                delta,
                events,
                patch: delta::diff(&chain.doc, &doc),
            };
            let (_, bytes) = delta_doc.write(&self.dir, self.opts.format)?;
            if let (Some(m), Some(t0)) = (&self.metrics, start) {
                m.snapshot_delta_write.observe_duration(t0.elapsed());
                m.snapshot_delta_bytes.add(bytes);
            }
            chain.len = delta;
            chain.doc = doc;
            SnapMarker::Delta {
                snap: chain.snap,
                delta,
                events,
            }
        } else {
            let seq = self.next_snap;
            let snap = Snapshot {
                seq,
                events,
                scheduler: self.engine.scheduler().export_state(),
                sampler: self.engine.scheduler().export_sampler_spec(),
                rng: self.rng.state(),
                sim: Some(self.engine.export_state()),
            };
            let (_, bytes) = snap.write(&self.dir, self.opts.format)?;
            if let (Some(m), Some(t0)) = (&self.metrics, start) {
                m.snapshot_write.observe_duration(t0.elapsed());
                m.snapshot_full_bytes.add(bytes);
            }
            self.next_snap = seq + 1;
            self.chain = (self.opts.delta_chain > 0).then(|| ChainState {
                snap: seq,
                len: 0,
                doc: snap.to_json(),
            });
            SnapMarker::Full { snap: seq, events }
        };
        // Marker only after the checkpoint file is durable: the newest
        // marker in the WAL must always name a loadable recovery point.
        let record = WalRecord::SnapshotMarker {
            time: self.engine.now(),
            marker,
        };
        self.recorder.writer().append(&record)?;
        self.recorder.writer().sync()?;
        self.last_snapshot_jobs = self.engine.jobs_completed();
        Ok(())
    }

    /// Finish and produce the run's [`SimResult`].
    pub fn into_result(self) -> SimResult {
        self.engine.into_result()
    }
}

/// Rewrite the WAL to end exactly at the record for checkpoint `marker`,
/// re-encoded in the file's own dialect (crash-safe: temp + rename). No-op
/// when the marker is already the final record and the tail is clean.
fn truncate_after_marker(
    wal_path: &Path,
    contents: &WalContents,
    marker: MarkerRef,
) -> Result<(), StoreError> {
    let marker_idx = contents
        .records
        .iter()
        .rposition(|r| {
            matches!(
                r,
                WalRecord::SnapshotMarker { marker: m, .. }
                    if m.snap() == marker.snap && m.delta() == marker.delta
            )
        })
        .ok_or_else(|| StoreError::corrupt(wal_path, "checkpoint marker vanished"))?;
    if marker_idx + 1 == contents.records.len() && !contents.torn_tail {
        return Ok(());
    }
    let codec = contents.format.wal_codec();
    let mut out: Vec<u8> = codec.magic().to_vec();
    let mut buf = EncodeBuf::default();
    for record in &contents.records[..=marker_idx] {
        codec.encode_record(record, &mut buf);
        out.extend_from_slice(&buf.bytes);
    }
    let tmp = wal_path.with_extension("jsonl.tmp");
    std::fs::write(&tmp, out).map_err(|e| StoreError::io(&tmp, e))?;
    std::fs::File::open(&tmp)
        .and_then(|f| f.sync_all())
        .map_err(|e| StoreError::io(&tmp, e))?;
    std::fs::rename(&tmp, wal_path).map_err(|e| StoreError::io(wal_path, e))?;
    if let Some(dir) = wal_path.parent() {
        snapshot::fsync_dir(dir)?;
    }
    Ok(())
}

/// Replay a WAL telemetry suffix into a snapshot-restored scheduler,
/// reconstructing a scheduler (and RNG) decision-for-decision identical to
/// the one that emitted the log.
///
/// For every logged decision event (`suggest`/`promote`/`grow_bottom`) the
/// scheduler's `suggest` is re-invoked with `rng` and the produced decision
/// is checked against the log — a mismatch means the snapshot, the log, and
/// the code disagree, and recovery must not silently continue. `job_end`
/// events are fed to `observe`; worker-side events (`job_start`, `drop`,
/// `retry`, `worker_idle`) carry no scheduler state and are skipped.
///
/// This is sound whenever the scheduler is the only RNG consumer — true
/// for `asha-exec` (objectives get no RNG), not for `asha-sim` (the
/// benchmark model shares the stream), which is why simulated runs resume
/// from full snapshots instead.
///
/// Returns the number of telemetry events replayed.
pub fn replay_scheduler(
    scheduler: &mut dyn Scheduler,
    rng: &mut dyn rand::RngCore,
    records: &[WalRecord],
    skip_telemetry: u64,
) -> Result<u64, Error> {
    let mut seen = 0u64;
    let mut replayed = 0u64;
    for record in records {
        let Some(event) = record.event() else {
            continue;
        };
        seen += 1;
        if seen <= skip_telemetry {
            continue;
        }
        match event.kind {
            EventKind::Suggest { decision } => {
                let d = scheduler.suggest(rng);
                let matches = matches!(
                    (&d, decision),
                    (Decision::Wait, IdleKind::Wait) | (Decision::Finished, IdleKind::Finished)
                );
                if !matches {
                    return Err(Error::codec(format!(
                        "replay mismatch at event {}: log says idle {:?}, scheduler said {d:?}",
                        event.seq, decision
                    )));
                }
            }
            EventKind::Promote { .. } | EventKind::GrowBottom { .. } => {
                let d = scheduler.suggest(rng);
                let got = EventKind::of_decision(&d);
                if got != event.kind {
                    return Err(Error::codec(format!(
                        "replay mismatch at event {}: log says {:?}, scheduler said {got:?}",
                        event.seq, event.kind
                    )));
                }
            }
            EventKind::JobEnd {
                trial,
                rung,
                resource,
                loss,
            } => {
                scheduler.observe(Observation::new(TrialId(trial), rung, resource, loss));
            }
            EventKind::JobStart { .. }
            | EventKind::Drop { .. }
            | EventKind::Retry { .. }
            | EventKind::WorkerIdle { .. } => {}
        }
        replayed += 1;
    }
    Ok(replayed)
}

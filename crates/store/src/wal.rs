//! The write-ahead event log: durable typed records behind a versioned
//! codec.
//!
//! A WAL holds one stream of [`WalRecord`]s — telemetry split into
//! scheduler [`WalRecord::Decision`]s and executor [`WalRecord::Job`]
//! events, snapshot markers (full and delta), and experiment-lifecycle
//! [`WalRecord::Meta`] events. How records become bytes is the
//! [`WalCodec`](crate::format::WalCodec)'s business: `jsonl-v1` writes one
//! JSON object per line (telemetry in the exact `asha-obs` log schema, so
//! a v1 WAL is a superset of a telemetry event log), `binary-v2` writes
//! length-prefixed CRC-guarded frames. Readers sniff the dialect from the
//! file's first bytes, so every pre-redesign store opens unchanged.
//!
//! Durability follows a [`Durability`] policy: appends always reach the OS
//! (flushed through the userspace buffer at each commit point), and
//! `fsync` is issued per policy so a machine crash loses at most the
//! configured window. When a [`CommitHandle`] is attached the fsyncs are
//! delegated to the shared group-commit pipeline instead (see
//! [`crate::commit`]). A process crash mid-append can leave a *torn tail*
//! — a partial final record — which the reader tolerates by discarding it;
//! any damage *before* the tail is real corruption and is reported as an
//! error.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use asha_core::telemetry::EventKind;
pub use asha_core::Durability;
use asha_metrics::JsonValue;
use asha_obs::Event;

use crate::commit::CommitHandle;
use crate::error::StoreError;
use crate::format::{DecodeStep, EncodeBuf, StoreFormat, WalCodec};

/// Old name of [`Durability`], kept for one release.
#[deprecated(note = "renamed to `Durability` (now shared with `asha-obs`)")]
pub type SyncPolicy = Durability;

/// An experiment-lifecycle record (everything that is neither telemetry
/// nor a snapshot marker).
#[derive(Debug, Clone, PartialEq)]
pub enum StoreEvent {
    /// The experiment directory was initialized.
    ExperimentCreated {
        /// The experiment's name.
        name: String,
    },
    /// The experiment was paused by the supervisor.
    Paused,
    /// The experiment was resumed (after a pause or a crash recovery).
    Resumed,
    /// The experiment ran to completion.
    ExperimentFinished,
}

impl StoreEvent {
    /// Stable lowercase name used in the JSONL `ev` field.
    pub fn name(&self) -> &'static str {
        match self {
            StoreEvent::ExperimentCreated { .. } => "experiment_created",
            StoreEvent::Paused => "paused",
            StoreEvent::Resumed => "resumed",
            StoreEvent::ExperimentFinished => "experiment_finished",
        }
    }
}

/// A durably recorded checkpoint marker. The marker is appended only
/// *after* the checkpoint file it names is durable, so the newest marker
/// in a WAL always points at a loadable recovery point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapMarker {
    /// A full snapshot file (`snap-<snap>.<ext>`).
    Full {
        /// The snapshot's sequence number.
        snap: u64,
        /// Telemetry events the snapshot covers; WAL replay starts after
        /// this many telemetry records.
        events: u64,
    },
    /// A delta snapshot (`delta-<snap>-<delta>.<ext>`): a state diff on
    /// top of full snapshot `snap` and the `delta - 1` deltas before it.
    Delta {
        /// The chain's base full-snapshot sequence number.
        snap: u64,
        /// Position in the chain (1-based).
        delta: u64,
        /// Telemetry events covered after applying the whole chain.
        events: u64,
    },
}

impl SnapMarker {
    /// Telemetry events covered by this checkpoint.
    pub fn events(&self) -> u64 {
        match self {
            SnapMarker::Full { events, .. } | SnapMarker::Delta { events, .. } => *events,
        }
    }

    /// The base full snapshot's sequence number.
    pub fn snap(&self) -> u64 {
        match self {
            SnapMarker::Full { snap, .. } | SnapMarker::Delta { snap, .. } => *snap,
        }
    }

    /// Chain position: 0 for a full snapshot, 1-based for deltas.
    pub fn delta(&self) -> u64 {
        match self {
            SnapMarker::Full { .. } => 0,
            SnapMarker::Delta { delta, .. } => *delta,
        }
    }
}

/// One typed WAL record. Codecs serialize these — call sites never hand
/// the writer free-form JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A scheduler decision (`suggest` / `promote` / `grow_bottom`).
    Decision(Event),
    /// An execution-plane event (job lifecycle, faults, idle workers).
    Job(Event),
    /// A checkpoint became durable.
    SnapshotMarker {
        /// Timestamp on the run's clock (simulated time).
        time: f64,
        /// Which checkpoint.
        marker: SnapMarker,
    },
    /// An experiment-lifecycle event.
    Meta {
        /// Timestamp on the run's clock (simulated time).
        time: f64,
        /// The event.
        event: StoreEvent,
    },
}

impl WalRecord {
    /// Wrap a telemetry event, classifying it as a scheduler decision or
    /// an execution-plane job event by its kind.
    pub fn telemetry(event: Event) -> WalRecord {
        match event.kind {
            EventKind::Suggest { .. }
            | EventKind::Promote { .. }
            | EventKind::GrowBottom { .. } => WalRecord::Decision(event),
            _ => WalRecord::Job(event),
        }
    }

    /// The telemetry event inside, if this is a telemetry record.
    pub fn event(&self) -> Option<&Event> {
        match self {
            WalRecord::Decision(event) | WalRecord::Job(event) => Some(event),
            _ => None,
        }
    }

    /// Render this record as its `jsonl-v1` line (no trailing newline):
    /// the human-readable form of either dialect. `store_inspect` dumps
    /// binary WALs through this, and the service tailer uses it to fan
    /// binary records out as JSON events.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        render_record_jsonl(self, &mut out);
        out
    }
}

/// Render one record as its `jsonl-v1` line (no trailing newline). Also
/// used by the tailer to fan binary WALs out as JSON events.
pub(crate) fn render_record_jsonl(record: &WalRecord, out: &mut String) {
    match record {
        WalRecord::Decision(event) | WalRecord::Job(event) => {
            asha_obs::encode_event_into(out, event);
        }
        WalRecord::SnapshotMarker { time, marker } => {
            let mut fields = vec![
                (
                    "ev",
                    JsonValue::Str(
                        match marker {
                            SnapMarker::Full { .. } => "snapshot",
                            SnapMarker::Delta { .. } => "delta_snapshot",
                        }
                        .to_owned(),
                    ),
                ),
                ("t", JsonValue::Num(*time)),
                ("snap", JsonValue::Int(marker.snap())),
            ];
            if let SnapMarker::Delta { delta, .. } = marker {
                fields.push(("delta", JsonValue::Int(*delta)));
            }
            fields.push(("events", JsonValue::Int(marker.events())));
            JsonValue::obj(fields).render_compact_into(out);
        }
        WalRecord::Meta { time, event } => {
            let mut fields = vec![
                ("ev", JsonValue::Str(event.name().to_owned())),
                ("t", JsonValue::Num(*time)),
            ];
            if let StoreEvent::ExperimentCreated { name } = event {
                fields.push(("name", JsonValue::Str(name.clone())));
            }
            JsonValue::obj(fields).render_compact_into(out);
        }
    }
}

/// Parse one `jsonl-v1` WAL line into a typed record.
pub(crate) fn parse_record_jsonl(line: &str) -> Result<WalRecord, String> {
    let value = JsonValue::parse(line).map_err(|e| e.to_string())?;
    let ev = value
        .get("ev")
        .and_then(|e| e.as_str())
        .ok_or("missing ev field")?
        .to_owned();
    let time = || {
        value
            .get("t")
            .and_then(|t| t.as_f64())
            .ok_or_else(|| "store event missing numeric t".to_owned())
    };
    let marker_field = |key: &str| {
        value
            .get(key)
            .and_then(|s| s.as_u64())
            .ok_or_else(|| format!("{ev} missing {key}"))
    };
    match ev.as_str() {
        "experiment_created" => Ok(WalRecord::Meta {
            time: time()?,
            event: StoreEvent::ExperimentCreated {
                name: value
                    .get("name")
                    .and_then(|n| n.as_str())
                    .ok_or("experiment_created missing name")?
                    .to_owned(),
            },
        }),
        "snapshot" => Ok(WalRecord::SnapshotMarker {
            time: time()?,
            marker: SnapMarker::Full {
                snap: marker_field("snap")?,
                events: marker_field("events")?,
            },
        }),
        "delta_snapshot" => Ok(WalRecord::SnapshotMarker {
            time: time()?,
            marker: SnapMarker::Delta {
                snap: marker_field("snap")?,
                delta: marker_field("delta")?,
                events: marker_field("events")?,
            },
        }),
        "paused" => Ok(WalRecord::Meta {
            time: time()?,
            event: StoreEvent::Paused,
        }),
        "resumed" => Ok(WalRecord::Meta {
            time: time()?,
            event: StoreEvent::Resumed,
        }),
        "experiment_finished" => Ok(WalRecord::Meta {
            time: time()?,
            event: StoreEvent::ExperimentFinished,
        }),
        _ => {
            let events = asha_obs::parse_jsonl(line).map_err(|e| e.to_string())?;
            match events.into_iter().next() {
                Some(event) => Ok(WalRecord::telemetry(event)),
                None => Err("empty telemetry line".to_owned()),
            }
        }
    }
}

/// Append-only writer for a WAL file.
///
/// Appends go through a userspace buffer that is flushed to the OS at every
/// commit point crossing [`Durability`]'s fsync cadence, and unconditionally
/// on [`WalWriter::sync`] and on drop (so a cleanly exiting process never
/// loses records even with [`Durability::Flush`]). With a group-commit
/// handle attached, policy-due fsyncs become asynchronous pipeline
/// requests and only [`WalWriter::sync`] blocks for the durability ack.
#[derive(Debug)]
pub struct WalWriter {
    file: BufWriter<File>,
    path: PathBuf,
    policy: Durability,
    format: StoreFormat,
    since_sync: usize,
    telemetry_appended: u64,
    buf: EncodeBuf,
    group: Option<CommitHandle>,
    /// Optional durability-plane metrics; `None` (the default) keeps
    /// clock reads off the append path entirely.
    metrics: Option<std::sync::Arc<crate::StoreMetrics>>,
}

impl WalWriter {
    /// Create a fresh WAL in `format` (truncating any existing file). The
    /// format's magic (if any) is written and flushed immediately so the
    /// file's dialect is detectable from its very first bytes.
    pub fn create(
        path: &Path,
        policy: Durability,
        format: StoreFormat,
    ) -> Result<Self, StoreError> {
        let file = File::create(path).map_err(|e| StoreError::io(path, e))?;
        let mut writer = WalWriter::from_file(file, path, policy, format, 0);
        let magic = format.wal_codec().magic();
        if !magic.is_empty() {
            writer
                .file
                .write_all(magic)
                .map_err(|e| StoreError::io(path, e))?;
            writer.flush()?;
        }
        Ok(writer)
    }

    /// Open an existing WAL for appending, *keeping the file's own
    /// dialect* (sniffed from its first bytes) — `preferred` only applies
    /// when the file is missing or empty. `telemetry_so_far` seeds the
    /// telemetry counter (the recovered event count), so snapshot markers
    /// written after recovery carry correct positions.
    pub fn open_append(
        path: &Path,
        policy: Durability,
        telemetry_so_far: u64,
        preferred: StoreFormat,
    ) -> Result<Self, StoreError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| StoreError::io(path, e))?;
        let len = file.metadata().map_err(|e| StoreError::io(path, e))?.len();
        if len == 0 {
            drop(file);
            let mut writer = WalWriter::create(path, policy, preferred)?;
            writer.telemetry_appended = telemetry_so_far;
            return Ok(writer);
        }
        let format = {
            let mut head = [0u8; 8];
            let mut probe = File::open(path).map_err(|e| StoreError::io(path, e))?;
            let n = read_fully(&mut probe, &mut head).map_err(|e| StoreError::io(path, e))?;
            StoreFormat::detect_wal(&head[..n])
        };
        Ok(WalWriter::from_file(
            file,
            path,
            policy,
            format,
            telemetry_so_far,
        ))
    }

    fn from_file(
        file: File,
        path: &Path,
        policy: Durability,
        format: StoreFormat,
        telemetry_so_far: u64,
    ) -> Self {
        WalWriter {
            file: BufWriter::new(file),
            path: path.to_owned(),
            policy,
            format,
            since_sync: 0,
            telemetry_appended: telemetry_so_far,
            buf: EncodeBuf::default(),
            group: None,
            metrics: None,
        }
    }

    /// The dialect this writer appends in.
    pub fn format(&self) -> StoreFormat {
        self.format
    }

    /// Attach durability-plane histograms; subsequent appends and fsyncs
    /// record their latency into `metrics`.
    pub fn set_metrics(&mut self, metrics: std::sync::Arc<crate::StoreMetrics>) {
        self.metrics = Some(metrics);
    }

    /// Route this writer's fsyncs through a group-commit pipeline:
    /// policy-due syncs become fire-and-forget requests, and
    /// [`WalWriter::sync`] waits for the covering batch instead of issuing
    /// its own fsync syscall.
    pub fn set_group_commit(&mut self, handle: CommitHandle) {
        self.group = Some(handle);
    }

    /// A duplicated handle to the underlying file (for registering with a
    /// [`crate::CommitPipeline`]).
    pub fn file_clone(&self) -> Result<File, StoreError> {
        self.file
            .get_ref()
            .try_clone()
            .map_err(|e| StoreError::io(&self.path, e))
    }

    /// Telemetry events written (including any recovered count passed to
    /// [`WalWriter::open_append`]).
    pub fn telemetry_appended(&self) -> u64 {
        self.telemetry_appended
    }

    /// Append one record. This is the only write entry point: every call
    /// site hands the writer a typed [`WalRecord`], and the codec owns the
    /// bytes.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), StoreError> {
        let start = self.metrics.is_some().then(std::time::Instant::now);
        self.format.wal_codec().encode_record(record, &mut self.buf);
        self.file
            .write_all(&self.buf.bytes)
            .map_err(|e| StoreError::io(&self.path, e))?;
        if matches!(record, WalRecord::Decision(_) | WalRecord::Job(_)) {
            self.telemetry_appended += 1;
        }
        self.since_sync += 1;
        if self.policy.fsync_due(self.since_sync) {
            match &self.group {
                Some(handle) => {
                    // Group commit: get the bytes to the OS and enqueue an
                    // asynchronous durability request; the pipeline batches
                    // it with every other writer in the commit window.
                    self.file
                        .flush()
                        .map_err(|e| StoreError::io(&self.path, e))?;
                    if let Some(m) = &self.metrics {
                        m.group_commit_requests.inc();
                    }
                    handle.request();
                    self.since_sync = 0;
                }
                None => self.sync()?,
            }
        }
        if let (Some(m), Some(t0)) = (&self.metrics, start) {
            m.wal_append.observe_duration(t0.elapsed());
        }
        Ok(())
    }

    /// Flush userspace buffers to the OS (no fsync).
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.file.flush().map_err(|e| StoreError::io(&self.path, e))
    }

    /// Flush and make every appended record crash-durable — by a direct
    /// fsync, or by waiting for the group-commit pipeline's covering batch
    /// when a handle is attached.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        let start = self.metrics.is_some().then(std::time::Instant::now);
        self.flush()?;
        match &self.group {
            Some(handle) => {
                if let Some(m) = &self.metrics {
                    m.group_commit_requests.inc();
                }
                handle.commit()?;
            }
            None => {
                self.file
                    .get_ref()
                    .sync_all()
                    .map_err(|e| StoreError::io(&self.path, e))?;
            }
        }
        self.since_sync = 0;
        if let (Some(m), Some(t0)) = (&self.metrics, start) {
            m.wal_fsync.observe_duration(t0.elapsed());
        }
        Ok(())
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        // Best effort: a cleanly dropped writer leaves nothing in userspace
        // buffers, and syncs so even Durability::Flush survives a machine
        // crash shortly after exit.
        let _ = self.sync();
    }
}

/// A checkpoint reference resolved from WAL markers: full snapshot `snap`
/// plus `delta` chained diffs, covering `events` telemetry events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkerRef {
    /// The base full snapshot's sequence number.
    pub snap: u64,
    /// How many deltas to apply on top (0 = the full snapshot itself).
    pub delta: u64,
    /// Telemetry events covered.
    pub events: u64,
}

/// The parsed contents of a WAL file.
#[derive(Debug, Clone, PartialEq)]
pub struct WalContents {
    /// Every well-formed record, in append order.
    pub records: Vec<WalRecord>,
    /// Whether a torn (partial or damaged) tail was discarded.
    pub torn_tail: bool,
    /// The dialect the file was written in.
    pub format: StoreFormat,
}

impl WalContents {
    /// The telemetry events only, in append order.
    pub fn telemetry(&self) -> impl Iterator<Item = &Event> {
        self.records.iter().filter_map(WalRecord::event)
    }

    /// Number of telemetry events.
    pub fn telemetry_len(&self) -> u64 {
        self.telemetry().count() as u64
    }

    /// The last durably recorded checkpoint marker, if any.
    pub fn last_snapshot_marker(&self) -> Option<MarkerRef> {
        self.records.iter().rev().find_map(|r| match r {
            WalRecord::SnapshotMarker { marker, .. } => Some(MarkerRef {
                snap: marker.snap(),
                delta: marker.delta(),
                events: marker.events(),
            }),
            _ => None,
        })
    }
}

fn read_fully(file: &mut File, buf: &mut [u8]) -> std::io::Result<usize> {
    use std::io::Read;
    let mut filled = 0;
    while filled < buf.len() {
        match file.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Does any complete valid record decode from `rest`? Distinguishes a torn
/// tail (damage at EOF — tolerated) from mid-file corruption (damage
/// *followed by* valid records — an error).
fn rest_has_record(codec: &dyn WalCodec, mut rest: &[u8]) -> bool {
    loop {
        match codec.decode_step(rest) {
            DecodeStep::Record { .. } => return true,
            DecodeStep::Blank { consumed } | DecodeStep::Invalid { consumed, .. } => {
                if consumed == 0 || consumed > rest.len() {
                    return false;
                }
                rest = &rest[consumed..];
            }
            DecodeStep::Incomplete | DecodeStep::Lost(_) => return false,
        }
    }
}

/// Read a WAL file of either dialect (sniffed by magic), tolerating a torn
/// tail.
pub fn read_wal(path: &Path) -> Result<WalContents, StoreError> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::io(path, e))?;
    let format = StoreFormat::detect_wal(&bytes);
    let codec = format.wal_codec();
    let mut pos = codec.magic().len();
    let mut records = Vec::new();
    let mut torn_tail = false;
    let mut record_no = 0usize;
    while pos < bytes.len() {
        record_no += 1;
        match codec.decode_step(&bytes[pos..]) {
            DecodeStep::Record { consumed, record } => {
                records.push(record);
                pos += consumed;
            }
            DecodeStep::Blank { consumed } => {
                record_no -= 1;
                pos += consumed;
            }
            DecodeStep::Incomplete => {
                torn_tail = true;
                break;
            }
            DecodeStep::Invalid { consumed, why } => {
                if rest_has_record(codec, &bytes[(pos + consumed).min(bytes.len())..]) {
                    return Err(StoreError::corrupt(
                        path,
                        format!("record {record_no}: {why}"),
                    ));
                }
                torn_tail = true;
                break;
            }
            DecodeStep::Lost(why) => {
                // Destroyed framing cannot come from a torn append (partial
                // writes decode as Incomplete), so it is always corruption.
                return Err(StoreError::corrupt(
                    path,
                    format!("record {record_no}: {why}"),
                ));
            }
        }
    }
    Ok(WalContents {
        records,
        torn_tail,
        format,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_core::telemetry::EventKind;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("asha-store-wal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ev(seq: u64, time: f64) -> Event {
        Event {
            seq,
            time,
            kind: EventKind::GrowBottom {
                trial: seq,
                bracket: 0,
                resource: 1.0,
            },
        }
    }

    #[test]
    fn wal_round_trips_telemetry_and_store_events_in_both_formats() {
        for format in [StoreFormat::JsonlV1, StoreFormat::BinaryV2] {
            let dir = tmpdir(&format!("roundtrip-{}", format.extensionless_tag()));
            let path = dir.join("wal");
            {
                let mut wal = WalWriter::create(&path, Durability::Sync, format).unwrap();
                wal.append(&WalRecord::Meta {
                    time: 0.0,
                    event: StoreEvent::ExperimentCreated {
                        name: "exp".to_owned(),
                    },
                })
                .unwrap();
                wal.append(&WalRecord::telemetry(ev(0, 0.0))).unwrap();
                wal.append(&WalRecord::telemetry(ev(1, 0.5))).unwrap();
                wal.append(&WalRecord::SnapshotMarker {
                    time: 0.5,
                    marker: SnapMarker::Full { snap: 0, events: 2 },
                })
                .unwrap();
                wal.append(&WalRecord::SnapshotMarker {
                    time: 0.75,
                    marker: SnapMarker::Delta {
                        snap: 0,
                        delta: 1,
                        events: 2,
                    },
                })
                .unwrap();
                wal.append(&WalRecord::Meta {
                    time: 1.0,
                    event: StoreEvent::ExperimentFinished,
                })
                .unwrap();
                assert_eq!(wal.telemetry_appended(), 2);
                assert_eq!(wal.format(), format);
            }
            let contents = read_wal(&path).unwrap();
            assert_eq!(contents.format, format);
            assert!(!contents.torn_tail);
            assert_eq!(contents.records.len(), 6);
            assert_eq!(contents.telemetry_len(), 2);
            assert_eq!(
                contents.last_snapshot_marker(),
                Some(MarkerRef {
                    snap: 0,
                    delta: 1,
                    events: 2
                })
            );
            assert_eq!(
                contents.records[1],
                WalRecord::Decision(ev(0, 0.0)),
                "grow_bottom classifies as a scheduler decision"
            );

            // Appending keeps the file's own dialect even when the caller
            // prefers the other one.
            let other = match format {
                StoreFormat::JsonlV1 => StoreFormat::BinaryV2,
                StoreFormat::BinaryV2 => StoreFormat::JsonlV1,
            };
            {
                let mut wal = WalWriter::open_append(&path, Durability::Flush, 2, other).unwrap();
                assert_eq!(wal.format(), format, "existing dialect wins");
                wal.append(&WalRecord::telemetry(ev(2, 2.0))).unwrap();
            }
            assert_eq!(read_wal(&path).unwrap().telemetry_len(), 3);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn torn_tail_is_discarded_but_midfile_corruption_errors() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.jsonl");
        {
            let mut wal =
                WalWriter::create(&path, Durability::Flush, StoreFormat::JsonlV1).unwrap();
            wal.append(&WalRecord::telemetry(ev(0, 0.0))).unwrap();
            wal.append(&WalRecord::telemetry(ev(1, 0.5))).unwrap();
        }
        // Simulate a crash mid-append: a partial final line.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"seq\":2,\"t\":0.7,\"ev\":\"job_e").unwrap();
        }
        let contents = read_wal(&path).unwrap();
        assert!(contents.torn_tail);
        assert_eq!(contents.telemetry_len(), 2);

        // The same garbage mid-file is corruption, not a torn tail.
        std::fs::write(
            &path,
            "{\"seq\":0,\"t\":0.0,\"ev\":\"job_e\n{\"seq\":1,\"t\":0.5,\"ev\":\"retry\",\"trial\":1,\"rung\":0}\n",
        )
        .unwrap();
        assert_eq!(
            read_wal(&path).unwrap_err().kind(),
            crate::error::ErrorKind::Corrupt
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_torn_tail_and_crc_damage() {
        let dir = tmpdir("binary-torn");
        let path = dir.join("wal.bin");
        {
            let mut wal =
                WalWriter::create(&path, Durability::Flush, StoreFormat::BinaryV2).unwrap();
            for i in 0..4 {
                wal.append(&WalRecord::telemetry(ev(i, i as f64))).unwrap();
            }
        }
        let clean = std::fs::read(&path).unwrap();

        // A truncated final frame is a torn tail.
        std::fs::write(&path, &clean[..clean.len() - 3]).unwrap();
        let contents = read_wal(&path).unwrap();
        assert!(contents.torn_tail);
        assert_eq!(contents.telemetry_len(), 3);

        // A flipped bit in the final record: CRC failure at EOF, torn tail.
        let mut tail_flip = clean.clone();
        let n = tail_flip.len();
        tail_flip[n - 6] ^= 0x01;
        std::fs::write(&path, &tail_flip).unwrap();
        let contents = read_wal(&path).unwrap();
        assert!(contents.torn_tail);
        assert_eq!(contents.telemetry_len(), 3);

        // The same flip mid-file (valid records after it) is corruption.
        let mut mid_flip = clean.clone();
        mid_flip[12] ^= 0x01;
        std::fs::write(&path, &mid_flip).unwrap();
        assert_eq!(
            read_wal(&path).unwrap_err().kind(),
            crate::error::ErrorKind::Corrupt
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_n_policy_counts_records() {
        let dir = tmpdir("everyn");
        let path = dir.join("wal.jsonl");
        let mut wal =
            WalWriter::create(&path, Durability::EveryN(2), StoreFormat::JsonlV1).unwrap();
        for i in 0..5 {
            wal.append(&WalRecord::telemetry(ev(i, i as f64))).unwrap();
        }
        // Records are at least flushed per policy; all 5 parse back after a
        // plain flush (the buffered tail).
        wal.flush().unwrap();
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.telemetry_len(), 5);
        drop(wal);
        std::fs::remove_dir_all(&dir).ok();
    }

    impl StoreFormat {
        fn extensionless_tag(&self) -> &'static str {
            match self {
                StoreFormat::JsonlV1 => "jsonl",
                StoreFormat::BinaryV2 => "bin",
            }
        }
    }
}

//! The write-ahead event log: durable JSONL of telemetry plus store events.
//!
//! Every line is one JSON object. Telemetry lines use the exact
//! `asha-obs` log schema (`seq`/`t`/`ev` + kind fields), so a WAL is a
//! superset of a telemetry event log; store lines use their own small `ev`
//! vocabulary (`experiment_created`, `snapshot`, `paused`, `resumed`,
//! `experiment_finished`) that the obs parser never sees.
//!
//! Durability follows a [`SyncPolicy`]: appends always reach the OS
//! (flushed through the userspace buffer), and `fsync` is issued per policy
//! so a machine crash loses at most the configured window. A process crash
//! mid-append can leave a *torn tail* — a final partial line — which the
//! reader tolerates by discarding it; any malformed line before the tail is
//! real corruption and is reported as an error.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use asha_obs::Event;

use crate::error::{Error, StoreError};

/// How often the WAL issues `fsync` after an append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Never fsync explicitly; rely on the OS writeback. Fastest, loses up
    /// to the writeback window on machine crash (process crashes lose at
    /// most a torn tail either way, since appends are always flushed).
    Never,
    /// Fsync after every N appended records.
    EveryN(usize),
    /// Fsync after every append. Slowest, loses nothing.
    Always,
}

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy::EveryN(64)
    }
}

/// A store-level WAL record (everything that is not a telemetry event).
#[derive(Debug, Clone, PartialEq)]
pub enum StoreEvent {
    /// The experiment directory was initialized.
    ExperimentCreated {
        /// The experiment's name.
        name: String,
    },
    /// A snapshot was durably written.
    Snapshot {
        /// The snapshot's sequence number (its file is `snap-<snap>.json`).
        snap: u64,
        /// Number of telemetry events the snapshot covers: replaying the
        /// WAL suffix starts after this many telemetry lines.
        events: u64,
    },
    /// The experiment was paused by the supervisor.
    Paused,
    /// The experiment was resumed (after a pause or a crash recovery).
    Resumed,
    /// The experiment ran to completion.
    ExperimentFinished,
}

impl StoreEvent {
    /// Stable lowercase name used in the JSONL `ev` field.
    pub fn name(&self) -> &'static str {
        match self {
            StoreEvent::ExperimentCreated { .. } => "experiment_created",
            StoreEvent::Snapshot { .. } => "snapshot",
            StoreEvent::Paused => "paused",
            StoreEvent::Resumed => "resumed",
            StoreEvent::ExperimentFinished => "experiment_finished",
        }
    }
}

/// One parsed WAL line.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A telemetry event in the `asha-obs` schema.
    Telemetry(Event),
    /// A store event.
    Store {
        /// Timestamp on the run's clock (simulated time).
        time: f64,
        /// The event.
        event: StoreEvent,
    },
}

pub(crate) fn encode_store_line(time: f64, event: &StoreEvent) -> String {
    use asha_metrics::JsonValue;
    let mut fields = vec![
        ("ev", JsonValue::Str(event.name().to_owned())),
        ("t", JsonValue::Num(time)),
    ];
    match event {
        StoreEvent::ExperimentCreated { name } => {
            fields.push(("name", JsonValue::Str(name.clone())));
        }
        StoreEvent::Snapshot { snap, events } => {
            fields.push(("snap", JsonValue::Int(*snap)));
            fields.push(("events", JsonValue::Int(*events)));
        }
        StoreEvent::Paused | StoreEvent::Resumed | StoreEvent::ExperimentFinished => {}
    }
    JsonValue::obj(fields).render_compact()
}

fn decode_store_line(
    v: &asha_metrics::JsonValue,
    ev: &str,
) -> Result<Option<(f64, StoreEvent)>, Error> {
    let time = v
        .get("t")
        .and_then(|t| t.as_f64())
        .ok_or("store event missing numeric t")?;
    let event = match ev {
        "experiment_created" => StoreEvent::ExperimentCreated {
            name: v
                .get("name")
                .and_then(|n| n.as_str())
                .ok_or("experiment_created missing name")?
                .to_owned(),
        },
        "snapshot" => StoreEvent::Snapshot {
            snap: v
                .get("snap")
                .and_then(|s| s.as_u64())
                .ok_or("snapshot missing snap")?,
            events: v
                .get("events")
                .and_then(|s| s.as_u64())
                .ok_or("snapshot missing events")?,
        },
        "paused" => StoreEvent::Paused,
        "resumed" => StoreEvent::Resumed,
        "experiment_finished" => StoreEvent::ExperimentFinished,
        _ => return Ok(None),
    };
    Ok(Some((time, event)))
}

/// Append-only writer for a WAL file.
///
/// Appends go through a userspace buffer that is flushed to the OS on every
/// record boundary crossing [`SyncPolicy`]'s fsync cadence, and
/// unconditionally on [`WalWriter::sync`] and on drop (so a cleanly exiting
/// process never loses records even with [`SyncPolicy::Never`]).
#[derive(Debug)]
pub struct WalWriter {
    file: BufWriter<File>,
    path: PathBuf,
    policy: SyncPolicy,
    since_sync: usize,
    telemetry_appended: u64,
    scratch: String,
    /// Optional durability-plane histograms; `None` (the default) keeps
    /// clock reads off the append path entirely.
    metrics: Option<std::sync::Arc<crate::StoreMetrics>>,
}

impl WalWriter {
    /// Create a fresh WAL (truncating any existing file).
    pub fn create(path: &Path, policy: SyncPolicy) -> Result<Self, StoreError> {
        let file = File::create(path).map_err(|e| StoreError::io(path, e))?;
        Ok(WalWriter::from_file(file, path, policy, 0))
    }

    /// Open an existing WAL for appending. `telemetry_so_far` seeds the
    /// telemetry counter (the recovered event count), so snapshot markers
    /// written after recovery carry correct positions.
    pub fn open_append(
        path: &Path,
        policy: SyncPolicy,
        telemetry_so_far: u64,
    ) -> Result<Self, StoreError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| StoreError::io(path, e))?;
        Ok(WalWriter::from_file(file, path, policy, telemetry_so_far))
    }

    fn from_file(file: File, path: &Path, policy: SyncPolicy, telemetry_so_far: u64) -> Self {
        WalWriter {
            file: BufWriter::new(file),
            path: path.to_owned(),
            policy,
            since_sync: 0,
            telemetry_appended: telemetry_so_far,
            scratch: String::new(),
            metrics: None,
        }
    }

    /// Attach durability-plane histograms; subsequent appends and fsyncs
    /// record their latency into `metrics`.
    pub fn set_metrics(&mut self, metrics: std::sync::Arc<crate::StoreMetrics>) {
        self.metrics = Some(metrics);
    }

    /// Telemetry events written (including any recovered count passed to
    /// [`WalWriter::open_append`]).
    pub fn telemetry_appended(&self) -> u64 {
        self.telemetry_appended
    }

    /// Append one telemetry event.
    pub fn append_telemetry(&mut self, event: &Event) -> Result<(), StoreError> {
        let mut line = std::mem::take(&mut self.scratch);
        line.clear();
        asha_obs::encode_event_into(&mut line, event);
        let appended = self.append_line(&line);
        self.scratch = line;
        appended?;
        self.telemetry_appended += 1;
        Ok(())
    }

    /// Append one store event stamped with the run's current time.
    pub fn append_store(&mut self, time: f64, event: &StoreEvent) -> Result<(), StoreError> {
        let line = encode_store_line(time, event);
        self.append_line(&line)
    }

    fn append_line(&mut self, line: &str) -> Result<(), StoreError> {
        let start = self.metrics.is_some().then(std::time::Instant::now);
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.write_all(b"\n"))
            .map_err(|e| StoreError::io(&self.path, e))?;
        self.since_sync += 1;
        let due = match self.policy {
            SyncPolicy::Never => false,
            SyncPolicy::EveryN(n) => self.since_sync >= n.max(1),
            SyncPolicy::Always => true,
        };
        if due {
            self.sync()?;
        }
        if let (Some(m), Some(t0)) = (&self.metrics, start) {
            m.wal_append.observe_duration(t0.elapsed());
        }
        Ok(())
    }

    /// Flush userspace buffers to the OS (no fsync).
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.file.flush().map_err(|e| StoreError::io(&self.path, e))
    }

    /// Flush and fsync, making every appended record crash-durable.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        let start = self.metrics.is_some().then(std::time::Instant::now);
        self.flush()?;
        self.file
            .get_ref()
            .sync_all()
            .map_err(|e| StoreError::io(&self.path, e))?;
        self.since_sync = 0;
        if let (Some(m), Some(t0)) = (&self.metrics, start) {
            m.wal_fsync.observe_duration(t0.elapsed());
        }
        Ok(())
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        // Best effort: a cleanly dropped writer leaves nothing in userspace
        // buffers, and syncs so even SyncPolicy::Never survives a machine
        // crash shortly after exit.
        let _ = self.sync();
    }
}

/// The parsed contents of a WAL file.
#[derive(Debug, Clone, PartialEq)]
pub struct WalContents {
    /// Every well-formed record, in append order.
    pub records: Vec<WalRecord>,
    /// Whether a torn (partial) final line was discarded.
    pub torn_tail: bool,
}

impl WalContents {
    /// The telemetry events only, in append order.
    pub fn telemetry(&self) -> impl Iterator<Item = &Event> {
        self.records.iter().filter_map(|r| match r {
            WalRecord::Telemetry(e) => Some(e),
            WalRecord::Store { .. } => None,
        })
    }

    /// Number of telemetry events.
    pub fn telemetry_len(&self) -> u64 {
        self.telemetry().count() as u64
    }

    /// The last durably recorded snapshot marker, if any.
    pub fn last_snapshot_marker(&self) -> Option<(u64, u64)> {
        self.records.iter().rev().find_map(|r| match r {
            WalRecord::Store {
                event: StoreEvent::Snapshot { snap, events },
                ..
            } => Some((*snap, *events)),
            _ => None,
        })
    }
}

/// Read a WAL file, tolerating a torn final line.
pub fn read_wal(path: &Path) -> Result<WalContents, StoreError> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| StoreError::io(path, e))?;
    let lines: Vec<&str> = text.lines().collect();
    let last_non_empty = lines.iter().rposition(|l| !l.trim().is_empty());
    let mut records = Vec::new();
    let mut torn_tail = false;
    for (idx, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let is_last = Some(idx) == last_non_empty;
        match parse_wal_line(line) {
            Ok(record) => records.push(record),
            Err(msg) => {
                if is_last {
                    torn_tail = true;
                } else {
                    return Err(StoreError::corrupt(
                        path,
                        format!("line {}: {msg}", idx + 1),
                    ));
                }
            }
        }
    }
    Ok(WalContents { records, torn_tail })
}

fn parse_wal_line(line: &str) -> Result<WalRecord, Error> {
    let value = asha_metrics::JsonValue::parse(line).map_err(|e| e.to_string())?;
    let ev = value
        .get("ev")
        .and_then(|e| e.as_str())
        .ok_or("missing ev field")?
        .to_owned();
    if let Some((time, event)) = decode_store_line(&value, &ev)? {
        return Ok(WalRecord::Store { time, event });
    }
    let events = asha_obs::parse_jsonl(line).map_err(|e| e.to_string())?;
    match events.into_iter().next() {
        Some(event) => Ok(WalRecord::Telemetry(event)),
        None => Err(Error::codec("empty telemetry line")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_core::telemetry::EventKind;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("asha-store-wal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ev(seq: u64, time: f64) -> Event {
        Event {
            seq,
            time,
            kind: EventKind::GrowBottom {
                trial: seq,
                bracket: 0,
                resource: 1.0,
            },
        }
    }

    #[test]
    fn wal_round_trips_telemetry_and_store_events() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.jsonl");
        {
            let mut wal = WalWriter::create(&path, SyncPolicy::Always).unwrap();
            wal.append_store(
                0.0,
                &StoreEvent::ExperimentCreated {
                    name: "exp".to_owned(),
                },
            )
            .unwrap();
            wal.append_telemetry(&ev(0, 0.0)).unwrap();
            wal.append_telemetry(&ev(1, 0.5)).unwrap();
            wal.append_store(0.5, &StoreEvent::Snapshot { snap: 0, events: 2 })
                .unwrap();
            wal.append_store(1.0, &StoreEvent::ExperimentFinished)
                .unwrap();
            assert_eq!(wal.telemetry_appended(), 2);
        }
        let contents = read_wal(&path).unwrap();
        assert!(!contents.torn_tail);
        assert_eq!(contents.records.len(), 5);
        assert_eq!(contents.telemetry_len(), 2);
        assert_eq!(contents.last_snapshot_marker(), Some((0, 2)));
        assert_eq!(
            contents.records[1],
            WalRecord::Telemetry(ev(0, 0.0)),
            "telemetry lines use the obs schema verbatim"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_discarded_but_midfile_corruption_errors() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.jsonl");
        {
            let mut wal = WalWriter::create(&path, SyncPolicy::Never).unwrap();
            wal.append_telemetry(&ev(0, 0.0)).unwrap();
            wal.append_telemetry(&ev(1, 0.5)).unwrap();
        }
        // Simulate a crash mid-append: a partial final line.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"seq\":2,\"t\":0.7,\"ev\":\"job_e").unwrap();
        }
        let contents = read_wal(&path).unwrap();
        assert!(contents.torn_tail);
        assert_eq!(contents.telemetry_len(), 2);

        // The same garbage mid-file is corruption, not a torn tail.
        std::fs::write(
            &path,
            "{\"seq\":0,\"t\":0.0,\"ev\":\"job_e\n{\"seq\":1,\"t\":0.5,\"ev\":\"retry\",\"trial\":1,\"rung\":0}\n",
        )
        .unwrap();
        assert_eq!(
            read_wal(&path).unwrap_err().kind(),
            crate::error::ErrorKind::Corrupt
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_n_policy_counts_records() {
        let dir = tmpdir("everyn");
        let path = dir.join("wal.jsonl");
        let mut wal = WalWriter::create(&path, SyncPolicy::EveryN(2)).unwrap();
        for i in 0..5 {
            wal.append_telemetry(&ev(i, i as f64)).unwrap();
        }
        // Records are at least flushed per policy; all 5 parse back after a
        // plain flush (the buffered tail).
        wal.flush().unwrap();
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.telemetry_len(), 5);
        drop(wal);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Durability-plane metrics: where the store spends its time on disk.
//!
//! [`StoreMetrics`] is a small bundle of concurrent latency histograms and
//! counters (from [`asha_obs::shared`]) covering the operations whose cost
//! dominates a durable run: WAL record appends, WAL fsyncs, full and delta
//! snapshot writes, and the group-commit pipeline. The store never creates
//! one itself — a host (the service daemon, a bench harness) attaches a
//! handle via
//! [`ExperimentSupervisor::set_metrics`](crate::ExperimentSupervisor::set_metrics)
//! or [`WalWriter::set_metrics`](crate::WalWriter::set_metrics), and every
//! run worker under that supervisor records into the same shared cells.
//! With no handle attached (the default, and all standalone use), the hot
//! paths skip the clock reads entirely.

use std::sync::Arc;

use asha_obs::{SharedCounter, SharedHistogram};

/// Shared latency histograms and counters for the store's durability hot
/// paths.
///
/// All histogram observations are wall-clock seconds from a monotonic
/// [`std::time::Instant`] pair taken around the operation.
#[derive(Debug)]
pub struct StoreMetrics {
    /// One WAL record append (userspace buffer write, plus any
    /// policy-triggered fsync it absorbed).
    pub wal_append: SharedHistogram,
    /// One explicit WAL flush+fsync (under group commit: the wait for the
    /// covering batch).
    pub wal_fsync: SharedHistogram,
    /// One full snapshot write (serialize, temp file, fsync, rename).
    pub snapshot_write: SharedHistogram,
    /// One delta snapshot write (diff, serialize, temp file, fsync,
    /// rename).
    pub snapshot_delta_write: SharedHistogram,
    /// Bytes written by full snapshots.
    pub snapshot_full_bytes: SharedCounter,
    /// Bytes written by delta snapshots. Comparing against
    /// `snapshot_full_bytes` shows what the delta chain saves.
    pub snapshot_delta_bytes: SharedCounter,
    /// One group-commit batch, first request to durable (bounded by the
    /// commit window plus fsync time).
    pub commit_window: SharedHistogram,
    /// Durability requests submitted to the group-commit pipeline.
    pub group_commit_requests: SharedCounter,
    /// Fsync syscalls the pipeline actually issued; the gap to
    /// `group_commit_requests` is the fsyncs saved by coalescing.
    pub group_commit_fsyncs: SharedCounter,
}

impl StoreMetrics {
    /// A fresh, zeroed bundle behind an [`Arc`] ready to share across run
    /// workers.
    pub fn new() -> Arc<StoreMetrics> {
        Arc::new(StoreMetrics {
            wal_append: SharedHistogram::latency(),
            wal_fsync: SharedHistogram::latency(),
            snapshot_write: SharedHistogram::latency(),
            snapshot_delta_write: SharedHistogram::latency(),
            snapshot_full_bytes: SharedCounter::new(),
            snapshot_delta_bytes: SharedCounter::new(),
            commit_window: SharedHistogram::latency(),
            group_commit_requests: SharedCounter::new(),
            group_commit_fsyncs: SharedCounter::new(),
        })
    }
}

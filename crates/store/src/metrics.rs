//! Durability-plane metrics: where the store spends its time on disk.
//!
//! [`StoreMetrics`] is a small bundle of concurrent latency histograms
//! (from [`asha_obs::shared`]) covering the three operations whose cost
//! dominates a durable run: WAL record appends, WAL fsyncs, and snapshot
//! writes. The store never creates one itself — a host (the service
//! daemon, a bench harness) attaches a handle via
//! [`ExperimentSupervisor::set_metrics`](crate::ExperimentSupervisor::set_metrics)
//! or [`WalWriter::set_metrics`](crate::WalWriter::set_metrics), and every
//! run worker under that supervisor records into the same shared cells.
//! With no handle attached (the default, and all standalone use), the hot
//! paths skip the clock reads entirely.

use std::sync::Arc;

use asha_obs::SharedHistogram;

/// Shared latency histograms for the store's durability hot paths.
///
/// All observations are wall-clock seconds from a monotonic
/// [`std::time::Instant`] pair taken around the operation.
#[derive(Debug)]
pub struct StoreMetrics {
    /// One WAL record append (userspace buffer write, plus any
    /// policy-triggered fsync it absorbed).
    pub wal_append: SharedHistogram,
    /// One explicit WAL flush+fsync.
    pub wal_fsync: SharedHistogram,
    /// One full snapshot write (serialize, temp file, fsync, rename).
    pub snapshot_write: SharedHistogram,
}

impl StoreMetrics {
    /// A fresh, zeroed bundle behind an [`Arc`] ready to share across run
    /// workers.
    pub fn new() -> Arc<StoreMetrics> {
        Arc::new(StoreMetrics {
            wal_append: SharedHistogram::latency(),
            wal_fsync: SharedHistogram::latency(),
            snapshot_write: SharedHistogram::latency(),
        })
    }
}

//! Store errors are the unified [`asha_core::Error`].
//!
//! Earlier revisions had a crate-local `StoreError` enum; it converged on
//! the workspace-wide error hierarchy (`asha_core::error`) so `?` works
//! across the store / service / obs boundaries. The old name remains as an
//! alias for downstream code.

pub use asha_core::{Error, ErrorKind};

/// Legacy name for the unified error type.
pub type StoreError = Error;

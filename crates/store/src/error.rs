use std::fmt;
use std::path::{Path, PathBuf};

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The OS error message.
        msg: String,
    },
    /// A store file exists but its contents are not what the schema
    /// requires (excluding a torn WAL tail, which is tolerated).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What was wrong.
        msg: String,
    },
    /// A required store file or experiment is absent.
    Missing {
        /// What was looked for.
        what: String,
    },
    /// An operation does not apply to the store's current state (e.g.
    /// creating a duplicate experiment, or pausing one that is not
    /// running).
    Invalid {
        /// What was wrong.
        msg: String,
    },
}

impl StoreError {
    pub(crate) fn io(path: &Path, err: std::io::Error) -> Self {
        StoreError::Io {
            path: path.to_owned(),
            msg: err.to_string(),
        }
    }

    pub(crate) fn corrupt(path: &Path, msg: impl Into<String>) -> Self {
        StoreError::Corrupt {
            path: path.to_owned(),
            msg: msg.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, msg } => write!(f, "{}: {msg}", path.display()),
            StoreError::Corrupt { path, msg } => {
                write!(f, "{}: corrupt store file: {msg}", path.display())
            }
            StoreError::Missing { what } => write!(f, "not found: {what}"),
            StoreError::Invalid { msg } => write!(f, "invalid store operation: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

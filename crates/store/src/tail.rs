//! Incremental tailing of a live WAL in either dialect.
//!
//! A [`WalTail`] follows a WAL file that another process (or thread) is
//! appending to and yields each *complete* record exactly once, rendered
//! as its `jsonl-v1` line — so consumers (the service tailer fanning
//! events out to subscribers, ad-hoc follow tools) see one stable JSON
//! surface regardless of the bytes on disk. The dialect is sniffed from
//! the file's magic on first contact and re-sniffed after any rewind, so
//! a tail pointed at a path before the writer creates the file follows
//! whichever dialect eventually appears.
//!
//! Three realities of live WALs shape the API, mirrored from the obs
//! crate's line-oriented `LogTail`:
//!
//! * **Torn tails.** The writer may be mid-append when we poll. A record
//!   never yields until it is complete — its trailing newline (`jsonl-v1`)
//!   or its full CRC-checked frame (`binary-v2`) has landed — so a torn
//!   tail is simply "not yet".
//! * **Truncation / rewrite.** Crash recovery rewrites a WAL in place
//!   (temp file + rename), discarding a suffix. A shorter file is the
//!   obvious case, but not the only one: a live resume truncates the WAL
//!   and the (deterministic) run immediately regrows it, so between two
//!   polls the file can end up *longer* than the consumed offset with
//!   entirely different bytes at it. The tail therefore keeps a content
//!   anchor — the last consumed bytes — and re-verifies it against the
//!   file on every poll; a shrink or an anchor mismatch rewinds to the
//!   start and reports the rewind so the consumer can reset derived
//!   state.
//! * **Bounded reads.** Several tails may follow one file with a lagging
//!   reader capped at the lead reader's byte offset
//!   ([`WalTail::poll_to`]); offsets are plain byte positions in either
//!   dialect, so the bound composes across tails.
//!
//! The tail re-opens the file on every poll, so it also survives the
//! rename-over-inode pattern used by crash-safe rewriters.

use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use crate::format::{DecodeStep, StoreFormat};

/// What one [`WalTail::poll`] observed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalChunk {
    /// Complete records in file order, each rendered as its `jsonl-v1`
    /// line (no trailing newline) — raw lines verbatim for a `jsonl-v1`
    /// file, decoded and re-rendered for `binary-v2`.
    pub lines: Vec<String>,
    /// True when the file shrank below the previous offset (it was
    /// truncated or rewritten) and the tail rewound to the start: `lines`
    /// begins at byte 0 again and the consumer should reset derived state.
    pub rewound: bool,
}

/// Follows a WAL file across appends, truncations, and rewrites,
/// dialect-agnostically.
#[derive(Debug)]
pub struct WalTail {
    path: PathBuf,
    /// Byte offset of the first byte not yet consumed as a complete
    /// record. Bytes held in `partial` count as consumed here (exactly
    /// like the obs `LogTail`), so a bounded follower given this offset
    /// re-reads and re-holds the same pending fragment.
    offset: u64,
    /// Bytes read past the last complete record, pending completion.
    partial: Vec<u8>,
    /// Resolved on first contact with enough bytes; cleared on rewind.
    format: Option<StoreFormat>,
    /// The last up-to-[`ANCHOR`] bytes of the consumed stream, ending at
    /// `offset`. Re-read from the file on every poll: a mismatch means
    /// the file was rewritten underneath us (even if it is now as long as
    /// or longer than `offset`) and the tail must rewind.
    anchor: Vec<u8>,
}

/// How many trailing consumed bytes are kept to detect rewrites. One CRC
/// plus a couple of frames' worth — an accidental 64-byte collision at
/// the same offset of a rewritten log is not a realistic event.
const ANCHOR: usize = 64;

impl WalTail {
    /// Tail `path` from the beginning (the first poll yields every
    /// complete record already in the file).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        WalTail {
            path: path.into(),
            offset: 0,
            partial: Vec::new(),
            format: None,
            anchor: Vec::new(),
        }
    }

    /// The file being tailed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte offset of the next unconsumed byte (pending partial-record
    /// bytes included).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// The dialect sniffed from the file, once enough bytes exist to tell.
    pub fn format(&self) -> Option<StoreFormat> {
        self.format
    }

    /// Read any new complete records. A missing file is not an error — the
    /// writer may not have created it yet — and yields an empty chunk.
    pub fn poll(&mut self) -> std::io::Result<WalChunk> {
        self.poll_to(u64::MAX)
    }

    /// Like [`WalTail::poll`], but never reads past byte offset `limit`.
    ///
    /// Rewind detection still compares against the file's *real* length,
    /// so a truncating rewrite is noticed even when it happens beyond the
    /// limit.
    pub fn poll_to(&mut self, limit: u64) -> std::io::Result<WalChunk> {
        let mut file = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalChunk::default()),
            Err(e) => return Err(e),
        };
        let real_len = file.metadata()?.len();
        let len = real_len.min(limit);
        let mut chunk = WalChunk::default();
        if real_len < self.offset || !self.anchor_matches(&mut file)? {
            // The file was truncated or rewritten: start over and
            // re-sniff — recovery preserves a file's dialect today, but
            // nothing about this tail needs to assume that. The anchor
            // check catches the rewrite even when the new file has
            // already regrown past our offset (a live resume truncates
            // the WAL and the deterministic run re-extends it at full
            // speed, so a pure length comparison can race and miss it).
            self.offset = 0;
            self.partial.clear();
            self.format = None;
            self.anchor.clear();
            chunk.rewound = true;
        }
        if len <= self.offset {
            return Ok(chunk);
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let mut buf = std::mem::take(&mut self.partial);
        let held = buf.len();
        file.take(len - self.offset).read_to_end(&mut buf)?;
        self.offset += (buf.len() - held) as u64;
        // The anchor tracks the consumed stream's trailing bytes, ending
        // at the (just advanced) offset. Partial bytes are file bytes
        // too, so they belong in it.
        let fresh = &buf[held..];
        if fresh.len() >= ANCHOR {
            self.anchor.clear();
            self.anchor
                .extend_from_slice(&fresh[fresh.len() - ANCHOR..]);
        } else {
            self.anchor.extend_from_slice(fresh);
            if self.anchor.len() > ANCHOR {
                self.anchor.drain(..self.anchor.len() - ANCHOR);
            }
        }

        // Resolve the dialect once the prefix is unambiguous: a file
        // shorter than the binary magic that matches its prefix could
        // still become either, so it stays pending.
        let magic = StoreFormat::BinaryV2.wal_codec().magic();
        if self.format.is_none() {
            if buf.len() >= magic.len() {
                self.format = Some(StoreFormat::detect_wal(&buf));
            } else if !magic.starts_with(&buf) {
                self.format = Some(StoreFormat::JsonlV1);
            }
        }
        let Some(format) = self.format else {
            self.partial = buf;
            return Ok(chunk);
        };

        // Consume complete records from the front of the pending buffer;
        // whatever remains is a torn tail that stays pending until a later
        // poll completes it. The magic counts as consumed prefix.
        let mut start = 0usize;
        if self.offset == buf.len() as u64 && buf.starts_with(magic) {
            start = magic.len();
        }
        match format {
            StoreFormat::JsonlV1 => {
                let mut line_start = start;
                for i in start..buf.len() {
                    if buf[i] == b'\n' {
                        let text = String::from_utf8_lossy(&buf[line_start..i]);
                        if !text.trim().is_empty() {
                            chunk.lines.push(text.into_owned());
                        }
                        line_start = i + 1;
                    }
                }
                start = line_start;
            }
            StoreFormat::BinaryV2 => {
                let codec = format.wal_codec();
                loop {
                    match codec.decode_step(&buf[start..]) {
                        DecodeStep::Record { consumed, record } => {
                            start += consumed;
                            chunk.lines.push(record.render_jsonl());
                        }
                        DecodeStep::Blank { consumed } => start += consumed,
                        // Incomplete: the writer is mid-append. Invalid or
                        // lost mid-stream: hold position — either the bytes
                        // complete into sense on a later poll or crash
                        // recovery rewrites the file and we rewind.
                        DecodeStep::Incomplete
                        | DecodeStep::Invalid { .. }
                        | DecodeStep::Lost(_) => break,
                    }
                    if start >= buf.len() {
                        break;
                    }
                }
            }
        }
        self.partial = buf.split_off(start);
        Ok(chunk)
    }

    /// Check that the file still holds the consumed stream's trailing
    /// bytes at `[offset - anchor.len(), offset)`. A short read counts as
    /// a mismatch (the file is being swapped underneath us), not an
    /// error. Only called once `real_len >= offset`, so the seek target
    /// is in range.
    fn anchor_matches(&self, file: &mut std::fs::File) -> std::io::Result<bool> {
        if self.anchor.is_empty() {
            return Ok(true);
        }
        let mut on_disk = vec![0u8; self.anchor.len()];
        file.seek(SeekFrom::Start(self.offset - self.anchor.len() as u64))?;
        match file.read_exact(&mut on_disk) {
            Ok(()) => Ok(on_disk == self.anchor),
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(false),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::EncodeBuf;
    use crate::wal::{StoreEvent, WalRecord};
    use asha_core::telemetry::{Event, EventKind};
    use std::io::Write;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("asha-store-tail-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ev(seq: u64) -> WalRecord {
        WalRecord::telemetry(Event {
            seq,
            time: seq as f64,
            kind: EventKind::WorkerIdle { idle: seq as usize },
        })
    }

    fn encode(format: StoreFormat, records: &[WalRecord]) -> Vec<u8> {
        let codec = format.wal_codec();
        let mut bytes = codec.magic().to_vec();
        let mut buf = EncodeBuf::default();
        for record in records {
            codec.encode_record(record, &mut buf);
            bytes.extend_from_slice(&buf.bytes);
        }
        bytes
    }

    #[test]
    fn both_dialects_yield_identical_lines() {
        let records: Vec<WalRecord> = (0..4).map(ev).collect();
        let mut rendered: Vec<Vec<String>> = Vec::new();
        for format in [StoreFormat::JsonlV1, StoreFormat::BinaryV2] {
            let dir = tmpdir(&format!("dialects-{}", format.name()));
            let path = dir.join("wal.jsonl");
            std::fs::write(&path, encode(format, &records)).unwrap();
            let mut tail = WalTail::new(&path);
            let chunk = tail.poll().unwrap();
            assert!(!chunk.rewound);
            assert_eq!(chunk.lines.len(), 4, "{format:?}");
            assert_eq!(tail.format(), Some(format));
            rendered.push(chunk.lines);
            std::fs::remove_dir_all(&dir).ok();
        }
        assert_eq!(
            rendered[0], rendered[1],
            "binary records must fan out as the same JSON lines"
        );
    }

    #[test]
    fn binary_torn_frame_stays_pending_until_complete() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.jsonl");
        let records: Vec<WalRecord> = (0..3).map(ev).collect();
        let bytes = encode(StoreFormat::BinaryV2, &records);
        // Cut mid-way through the final frame.
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let mut tail = WalTail::new(&path);
        assert_eq!(tail.poll().unwrap().lines.len(), 2);
        assert!(tail.poll().unwrap().lines.is_empty(), "torn frame pending");
        // Completing the frame releases exactly the third record.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&bytes[bytes.len() - 5..]).unwrap();
        drop(f);
        assert_eq!(tail.poll().unwrap().lines, vec![records[2].render_jsonl()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_prefix_defers_dialect_detection() {
        let dir = tmpdir("prefix");
        let path = dir.join("wal.jsonl");
        let bytes = encode(StoreFormat::BinaryV2, &[ev(0)]);
        // Only part of the magic on disk: could still become either
        // dialect, so nothing yields and no format is claimed.
        std::fs::write(&path, &bytes[..4]).unwrap();
        let mut tail = WalTail::new(&path);
        assert!(tail.poll().unwrap().lines.is_empty());
        assert_eq!(tail.format(), None);
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(tail.poll().unwrap().lines.len(), 1);
        assert_eq!(tail.format(), Some(StoreFormat::BinaryV2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rewinds_and_resniffs_after_truncating_rewrite() {
        let dir = tmpdir("rewind");
        let path = dir.join("wal.jsonl");
        let records: Vec<WalRecord> = (0..3).map(ev).collect();
        std::fs::write(&path, encode(StoreFormat::BinaryV2, &records)).unwrap();
        let mut tail = WalTail::new(&path);
        assert_eq!(tail.poll().unwrap().lines.len(), 3);

        // Crash recovery rewrites the log shorter (rename-over pattern) —
        // here even switching dialect, which the tail takes in stride.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, encode(StoreFormat::JsonlV1, &records[..1])).unwrap();
        std::fs::rename(&tmp, &path).unwrap();
        let chunk = tail.poll().unwrap();
        assert!(chunk.rewound);
        assert_eq!(chunk.lines, vec![records[0].render_jsonl()]);
        assert_eq!(tail.format(), Some(StoreFormat::JsonlV1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rewind_detected_when_rewrite_regrows_past_the_offset() {
        // The race from a live resume: the WAL is truncated at a marker
        // and the deterministic run immediately regrows it, so by the
        // next poll the file is *longer* than the consumed offset while
        // holding different bytes at it. Length comparison alone misses
        // this; the content anchor must catch it.
        let dir = tmpdir("regrow");
        let path = dir.join("wal.jsonl");
        let records: Vec<WalRecord> = (0..6).map(ev).collect();
        std::fs::write(&path, encode(StoreFormat::BinaryV2, &records)).unwrap();
        let mut tail = WalTail::new(&path);
        assert_eq!(tail.poll().unwrap().lines.len(), 6);

        // Rewrite: keep the first two records, splice in a marker (the
        // `resumed` analogue, shifting every later byte), then regrow
        // well past the old end of file.
        let mut rewritten = vec![records[0].clone(), records[1].clone()];
        rewritten.push(WalRecord::Meta {
            time: 1.0,
            event: StoreEvent::Resumed,
        });
        rewritten.extend((2..20).map(ev));
        let bytes = encode(StoreFormat::BinaryV2, &rewritten);
        assert!(
            bytes.len() as u64 > tail.offset(),
            "must regrow past the tail"
        );
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes).unwrap();
        std::fs::rename(&tmp, &path).unwrap();

        let chunk = tail.poll().unwrap();
        assert!(chunk.rewound, "regrown rewrite must rewind the tail");
        let want: Vec<String> = rewritten.iter().map(|r| r.render_jsonl()).collect();
        assert_eq!(chunk.lines, want);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bounded_poll_stops_at_the_limit_and_resumes() {
        let dir = tmpdir("bounded");
        let path = dir.join("wal.jsonl");
        let records: Vec<WalRecord> = (0..3).map(ev).collect();
        let bytes = encode(StoreFormat::BinaryV2, &records);
        std::fs::write(&path, &bytes).unwrap();
        let mut tail = WalTail::new(&path);
        // A limit cutting mid-frame yields only the records before it and
        // holds the cut prefix; raising the limit releases the rest.
        let limit = bytes.len() as u64 - 7;
        let chunk = tail.poll_to(limit).unwrap();
        assert_eq!(chunk.lines.len(), 2);
        assert_eq!(tail.offset(), limit);
        let chunk = tail.poll().unwrap();
        assert_eq!(chunk.lines, vec![records[2].render_jsonl()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn marker_records_render_with_store_fields() {
        let dir = tmpdir("markers");
        let path = dir.join("wal.jsonl");
        let records = vec![
            WalRecord::Meta {
                time: 0.0,
                event: StoreEvent::ExperimentCreated {
                    name: "demo".into(),
                },
            },
            ev(0),
        ];
        std::fs::write(&path, encode(StoreFormat::BinaryV2, &records)).unwrap();
        let mut tail = WalTail::new(&path);
        let chunk = tail.poll().unwrap();
        assert_eq!(chunk.lines.len(), 2);
        assert!(
            chunk.lines[0].contains("experiment_created"),
            "{}",
            chunk.lines[0]
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

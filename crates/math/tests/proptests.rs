//! Property-based tests of the numerics: Cholesky solves on random SPD
//! systems, quantile/ECDF laws, GP sanity, and KDE normalization.

use asha_math::dist::{normal_cdf, normal_pdf};
use asha_math::stats::{quantile, Ecdf};
use asha_math::{expected_improvement, Gp, GpConfig, Kde1d, Matrix};
use proptest::prelude::*;

/// Random SPD matrix A = B Bᵀ + εI.
fn spd_strategy(max_n: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_n)
        .prop_flat_map(|n| {
            prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
                let b = Matrix::from_fn(n, n, |i, j| data[i * n + j]);
                let mut a = Matrix::zeros(n, n);
                for i in 0..n {
                    for j in 0..n {
                        let mut sum = 0.0;
                        for k in 0..n {
                            sum += b[(i, k)] * b[(j, k)];
                        }
                        a[(i, j)] = sum;
                    }
                    a[(i, i)] += 0.5;
                }
                a
            })
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn cholesky_solves_random_spd_systems(a in spd_strategy(8), seed in any::<u32>()) {
        let n = a.rows();
        let x_true: Vec<f64> = (0..n).map(|i| ((seed as usize + i * 7919) % 13) as f64 - 6.0).collect();
        let b = a.matvec(&x_true);
        let chol = a.cholesky().expect("construction guarantees SPD");
        let x = chol.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-6, "solve error: {xi} vs {ti}");
        }
        // log|A| is finite and consistent with the factor diagonal.
        prop_assert!(chol.log_det().is_finite());
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(mut xs in prop::collection::vec(-1e6f64..1e6, 1..60)) {
        let q25 = quantile(&xs, 0.25);
        let q50 = quantile(&xs, 0.50);
        let q75 = quantile(&xs, 0.75);
        prop_assert!(q25 <= q50 && q50 <= q75);
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        prop_assert!(q25 >= xs[0] && q75 <= *xs.last().expect("non-empty"));
    }

    #[test]
    fn ecdf_is_a_cdf(xs in prop::collection::vec(-1e3f64..1e3, 1..50), probe in -2e3f64..2e3) {
        let e = Ecdf::new(&xs);
        let v = e.eval(probe);
        prop_assert!((0.0..=1.0).contains(&v));
        // Monotone in the probe.
        prop_assert!(e.eval(probe + 1.0) >= v);
        // Right tail is 1.
        prop_assert_eq!(e.eval(1e9), 1.0);
    }

    #[test]
    fn normal_cdf_pdf_consistency(x in -5.0f64..5.0) {
        // Numerical derivative of the cdf approximates the pdf.
        let h = 1e-5;
        let numeric = (normal_cdf(x + h) - normal_cdf(x - h)) / (2.0 * h);
        prop_assert!((numeric - normal_pdf(x)).abs() < 1e-4);
    }

    #[test]
    fn expected_improvement_is_monotone_in_best(mu in -5.0f64..5.0, var in 0.0f64..4.0, b1 in -5.0f64..5.0, delta in 0.0f64..3.0) {
        // A better (lower) incumbent can only shrink the improvement over it.
        let ei_loose = expected_improvement(mu, var, b1 + delta);
        let ei_tight = expected_improvement(mu, var, b1);
        prop_assert!(ei_tight <= ei_loose + 1e-12);
        prop_assert!(ei_tight >= 0.0);
    }

    #[test]
    fn kde_pdf_is_positive_and_sampling_bounded(
        points in prop::collection::vec(0.0f64..1.0, 1..30),
        probe in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let kde = Kde1d::new(&points, 0.02);
        prop_assert!(kde.pdf(probe) > 0.0);
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let x = kde.sample(&mut rng);
            prop_assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn gp_fits_and_predicts_finite_values(
        n in 2usize..20,
        dims in 1usize..5,
        seed in any::<u64>(),
    ) {
        use rand::{Rng as _, SeedableRng as _};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dims).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 10.0 - 5.0).collect();
        let gp = Gp::fit(&xs, &ys, GpConfig::default()).expect("jittered fit succeeds");
        let q: Vec<f64> = (0..dims).map(|_| rng.gen::<f64>()).collect();
        let (mu, var) = gp.predict(&q);
        prop_assert!(mu.is_finite());
        prop_assert!(var >= 0.0 && var.is_finite());
        // Predictions stay within a generous envelope of the targets
        // (near-duplicate inputs make GP interpolation overshoot, so the
        // envelope is wide — the property is sanity, not tightness).
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(1.0);
        prop_assert!(mu > lo - 20.0 * span && mu < hi + 20.0 * span, "mu = {mu}");
    }
}

//! Descriptive statistics used throughout the workspace: means, variances,
//! linear-interpolation quantiles, argsort, top-k selection, ECDF, and
//! Spearman rank correlation.

/// Arithmetic mean; `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; `NaN` for an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; `NaN` for an empty slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolation quantile (the "linear" method of NumPy), `q` in
/// `[0, 1]`. `NaN` for an empty slice.
///
/// # Panics
///
/// Panics in debug builds if `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    quantile_sorted(&sorted, q)
}

/// Quantile of an already-sorted slice (ascending).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Indices that would sort `xs` ascending (NaN values sort last).
pub fn argsort(xs: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or_else(|| xs[a].is_nan().cmp(&xs[b].is_nan()))
    });
    idx
}

/// Indices of the `k` smallest values of `xs` (ties broken by index order).
/// Returns fewer than `k` indices when `xs` is shorter than `k`.
pub fn bottom_k_indices(xs: &[f64], k: usize) -> Vec<usize> {
    let mut idx = argsort(xs);
    idx.truncate(k);
    idx
}

/// Fractional ranks (average rank for ties), 1-based, as used by Spearman
/// correlation.
pub fn fractional_ranks(xs: &[f64]) -> Vec<f64> {
    let order = argsort(xs);
    let n = xs.len();
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        // Group ties.
        while j + 1 < n && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &o in &order[i..=j] {
            ranks[o] = avg_rank;
        }
        i = j + 1;
    }
    ranks
}

/// Pearson correlation coefficient; `NaN` when either input is constant or
/// the lengths differ.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return f64::NAN;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    if sxx == 0.0 || syy == 0.0 {
        return f64::NAN;
    }
    sxy / (sxx * syy).sqrt()
}

/// Spearman rank correlation: Pearson correlation of fractional ranks. Used
/// to verify that the surrogate benchmarks preserve early-vs-final loss rank
/// structure (the property early stopping relies on).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    pearson(&fractional_ranks(xs), &fractional_ranks(ys))
}

/// Empirical cumulative distribution function of a sample.
///
/// # Examples
///
/// ```
/// let ecdf = asha_math::stats::Ecdf::new(&[1.0, 2.0, 3.0]);
/// assert_eq!(ecdf.eval(2.0), 2.0 / 3.0);
/// assert_eq!(ecdf.eval(0.0), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build the ECDF of a sample (NaN values are dropped).
    pub fn new(xs: &[f64]) -> Self {
        let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after filter"));
        Ecdf { sorted }
    }

    /// Fraction of the sample `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        // partition_point returns the count of elements <= x for a sorted
        // slice when the predicate is `v <= x`.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Number of (non-NaN) points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF has no points.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
        assert!(mean(&[]).is_nan());
        assert!(variance(&[]).is_nan());
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    fn argsort_orders_and_handles_nan() {
        let xs = [3.0, f64::NAN, 1.0, 2.0];
        let idx = argsort(&xs);
        assert_eq!(&idx[..3], &[2, 3, 0]);
        assert_eq!(idx[3], 1); // NaN last
    }

    #[test]
    fn bottom_k_selects_smallest() {
        let xs = [0.5, 0.1, 0.9, 0.3];
        assert_eq!(bottom_k_indices(&xs, 2), vec![1, 3]);
        assert_eq!(bottom_k_indices(&xs, 10).len(), 4);
        assert!(bottom_k_indices(&xs, 0).is_empty());
    }

    #[test]
    fn fractional_ranks_average_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        assert_eq!(fractional_ranks(&xs), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_of_monotone_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [10.0, 100.0, 1000.0, 10_000.0, 100_000.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        let rev: Vec<f64> = ys.iter().rev().copied().collect();
        assert!((spearman(&xs, &rev) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_nan());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_nan());
        assert!(pearson(&[], &[]).is_nan());
    }

    #[test]
    fn ecdf_basic() {
        let e = Ecdf::new(&[3.0, 1.0, 2.0, f64::NAN]);
        assert_eq!(e.len(), 3);
        assert_eq!(e.eval(0.5), 0.0);
        assert!((e.eval(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((e.eval(2.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.eval(10.0), 1.0);
        assert!(Ecdf::new(&[]).eval(0.0).is_nan());
        assert!(Ecdf::new(&[]).is_empty());
    }
}

//! Normal-family sampling and densities.
//!
//! Implemented from scratch (Box–Muller for sampling, the Abramowitz–Stegun
//! rational approximation for the cdf) so the workspace does not need
//! `rand_distr`.

use rand::Rng;

/// Inverse of `sqrt(2*pi)`.
const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// Draw one standard-normal sample using the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let z = asha_math::dist::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Reject u1 == 0 so ln(u1) is finite.
    let mut u1 = rng.gen::<f64>();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.gen::<f64>();
    }
    let u2 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draw a normal sample with the given mean and standard deviation.
///
/// # Panics
///
/// Panics in debug builds if `std` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    debug_assert!(std >= 0.0, "standard deviation must be non-negative");
    mean + std * standard_normal(rng)
}

/// Draw a half-normal sample `|z| * std`: the straggler model of the paper's
/// Appendix A.1 multiplies expected training time by `1 + |z|`.
pub fn half_normal<R: Rng + ?Sized>(rng: &mut R, std: f64) -> f64 {
    (standard_normal(rng) * std).abs()
}

/// Draw a normal sample truncated to `[low, high]` by rejection, falling back
/// to clamping after 64 rejections (only reachable for extreme bounds).
pub fn truncated_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    std: f64,
    low: f64,
    high: f64,
) -> f64 {
    debug_assert!(low <= high, "truncation interval must be non-empty");
    for _ in 0..64 {
        let x = normal(rng, mean, std);
        if (low..=high).contains(&x) {
            return x;
        }
    }
    normal(rng, mean, std).clamp(low, high)
}

/// Standard normal probability density at `x`.
pub fn normal_pdf(x: f64) -> f64 {
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Probability density of `N(mean, std^2)` at `x`.
///
/// Returns 0 for `std <= 0` (a degenerate distribution), never NaN.
pub fn normal_pdf_scaled(x: f64, mean: f64, std: f64) -> f64 {
    if std <= 0.0 {
        return 0.0;
    }
    normal_pdf((x - mean) / std) / std
}

/// Standard normal cumulative distribution function.
///
/// Uses the Abramowitz & Stegun 7.1.26 rational approximation of `erf`
/// (absolute error < 1.5e-7), which is plenty for acquisition functions.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function via the Abramowitz & Stegun 7.1.26 approximation.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "sample mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "sample variance {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "sample mean {mean}");
    }

    #[test]
    fn half_normal_is_nonnegative() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(half_normal(&mut r, 1.3) >= 0.0);
        }
    }

    #[test]
    fn half_normal_mean_matches_theory() {
        // E|Z| = sqrt(2/pi) for std = 1.
        let mut r = rng();
        let n = 40_000;
        let mean = (0..n).map(|_| half_normal(&mut r, 1.0)).sum::<f64>() / n as f64;
        let expected = (2.0 / std::f64::consts::PI).sqrt();
        assert!((mean - expected).abs() < 0.02, "half-normal mean {mean}");
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = truncated_normal(&mut r, 0.0, 1.0, -0.5, 0.5);
            assert!((-0.5..=0.5).contains(&x));
        }
        // Unreachable interval falls back to clamping.
        let x = truncated_normal(&mut r, 0.0, 1e-9, 100.0, 101.0);
        assert!((100.0..=101.0).contains(&x));
    }

    #[test]
    fn cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.841_344_7).abs() < 1e-5);
        assert!((normal_cdf(-1.0) - 0.158_655_3).abs() < 1e-5);
        assert!((normal_cdf(3.0) - 0.998_650_1).abs() < 1e-5);
        assert!(normal_cdf(-8.0) < 1e-7);
        assert!(normal_cdf(8.0) > 1.0 - 1e-7);
    }

    #[test]
    fn pdf_known_values() {
        assert!((normal_pdf(0.0) - 0.398_942_3).abs() < 1e-6);
        assert!((normal_pdf(1.0) - 0.241_970_7).abs() < 1e-6);
        assert_eq!(normal_pdf_scaled(0.0, 0.0, 0.0), 0.0);
        assert!((normal_pdf_scaled(1.0, 1.0, 2.0) - normal_pdf(0.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut prev = 0.0;
        let mut x = -6.0;
        while x <= 6.0 {
            let c = normal_cdf(x);
            assert!(c >= prev - 1e-12, "cdf not monotone at {x}");
            prev = c;
            x += 0.01;
        }
    }

    #[test]
    fn erf_is_odd() {
        for x in [0.1, 0.7, 1.5, 2.5] {
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
        }
    }
}

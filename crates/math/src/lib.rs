//! From-scratch numerics for the `asha` workspace.
//!
//! Everything the model-based baselines and the simulator need, with no
//! dependencies beyond `rand`:
//!
//! * [`dist`] — normal / truncated-normal sampling (Box–Muller), the standard
//!   normal pdf/cdf used by expected improvement.
//! * [`stats`] — descriptive statistics, quantiles, argsort, ECDF, and
//!   Spearman rank correlation (used to validate surrogate fidelity).
//! * [`linalg`] — a small dense matrix type with Cholesky factorization and
//!   triangular solves, enough to implement Gaussian-process regression.
//! * [`gp`] — Gaussian-process regression with a squared-exponential ARD
//!   kernel and the expected-improvement acquisition (the Vizier-like and
//!   Fabolas-like baselines).
//! * [`kde`] — one-dimensional Gaussian kernel density estimation (the TPE
//!   sampler inside BOHB).
//!
//! # Examples
//!
//! ```
//! use asha_math::stats::{mean, quantile};
//!
//! let xs = [1.0, 2.0, 3.0, 4.0];
//! assert_eq!(mean(&xs), 2.5);
//! assert_eq!(quantile(&xs, 0.5), 2.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod gp;
pub mod kde;
pub mod linalg;
pub mod stats;

pub use gp::{expected_improvement, Gp, GpConfig};
pub use kde::Kde1d;
pub use linalg::{CholeskyError, Matrix};

//! Gaussian-process regression with a squared-exponential ARD kernel, plus
//! the expected-improvement acquisition function.
//!
//! This is the modelling core of the Vizier-like and Fabolas-like baselines.
//! Inputs are expected to live in the unit hypercube (see
//! `asha_space::SearchSpace::to_unit`); targets are standardized internally
//! so kernel amplitudes are well-scaled regardless of the loss magnitude.

use crate::dist::{normal_cdf, normal_pdf};
use crate::linalg::{CholeskyError, Matrix};
use crate::stats::{mean, std_dev};

/// Hyperparameters of the squared-exponential GP.
#[derive(Debug, Clone, PartialEq)]
pub struct GpConfig {
    /// Per-dimension length scales; a single element is broadcast to every
    /// dimension.
    pub length_scales: Vec<f64>,
    /// Signal variance (kernel amplitude) in standardized-target units.
    pub signal_variance: f64,
    /// Observation-noise variance in standardized-target units.
    pub noise_variance: f64,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig {
            length_scales: vec![0.2],
            signal_variance: 1.0,
            noise_variance: 1e-3,
        }
    }
}

/// A fitted Gaussian-process posterior.
///
/// # Examples
///
/// ```
/// use asha_math::{Gp, GpConfig};
///
/// let xs = vec![vec![0.0], vec![0.5], vec![1.0]];
/// let ys = vec![1.0, 0.0, 1.0];
/// let gp = Gp::fit(&xs, &ys, GpConfig::default())?;
/// let (mu, var) = gp.predict(&[0.5]);
/// assert!((mu - 0.0).abs() < 0.1);
/// assert!(var >= 0.0);
/// # Ok::<(), asha_math::CholeskyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Gp {
    xs: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: crate::linalg::Cholesky,
    config: GpConfig,
    y_mean: f64,
    y_std: f64,
}

impl Gp {
    /// Fit a GP to observations; `xs[i]` is a point in `[0,1]^d`, `ys[i]` its
    /// target (e.g. validation loss).
    ///
    /// The kernel matrix gets progressively more diagonal jitter (up to
    /// `1e-2`) if the initial factorization fails.
    ///
    /// # Errors
    ///
    /// Returns [`CholeskyError`] if the kernel matrix cannot be factorized
    /// even with maximum jitter (pathological duplicate inputs).
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` have different lengths or `xs` is empty.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], config: GpConfig) -> Result<Self, CholeskyError> {
        assert_eq!(xs.len(), ys.len(), "xs and ys must have the same length");
        assert!(!xs.is_empty(), "cannot fit a GP to zero observations");
        let y_mean = mean(ys);
        let y_std = {
            let s = std_dev(ys);
            if s > 1e-12 {
                s
            } else {
                1.0
            }
        };
        let yz: Vec<f64> = ys.iter().map(|y| (y - y_mean) / y_std).collect();

        let n = xs.len();
        let base = Matrix::from_fn(n, n, |i, j| kernel(&config, &xs[i], &xs[j]));
        let mut jitter = config.noise_variance.max(1e-10);
        let mut last_err = CholeskyError { pivot: 0 };
        while jitter <= 1e-2 {
            let mut k = base.clone();
            for i in 0..n {
                k[(i, i)] += jitter;
            }
            match k.cholesky() {
                Ok(chol) => {
                    let alpha = chol.solve(&yz);
                    return Ok(Gp {
                        xs: xs.to_vec(),
                        alpha,
                        chol,
                        config,
                        y_mean,
                        y_std,
                    });
                }
                Err(e) => {
                    last_err = e;
                    jitter *= 10.0;
                }
            }
        }
        Err(last_err)
    }

    /// Posterior mean and variance at a query point, in the original target
    /// units.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let kx: Vec<f64> = self
            .xs
            .iter()
            .map(|xi| kernel(&self.config, xi, x))
            .collect();
        let mu_z: f64 = kx.iter().zip(&self.alpha).map(|(k, a)| k * a).sum();
        let v = self.chol.solve_lower(&kx);
        let var_z =
            (self.config.signal_variance - v.iter().map(|vi| vi * vi).sum::<f64>()).max(1e-12);
        (
            self.y_mean + self.y_std * mu_z,
            var_z * self.y_std * self.y_std,
        )
    }

    /// Number of training observations.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the GP has no training points (never true for a fitted GP).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

fn kernel(config: &GpConfig, a: &[f64], b: &[f64]) -> f64 {
    let mut d2 = 0.0;
    for (i, (ai, bi)) in a.iter().zip(b).enumerate() {
        let ls = config
            .length_scales
            .get(i)
            .or_else(|| config.length_scales.first())
            .copied()
            .unwrap_or(0.2);
        let d = (ai - bi) / ls;
        d2 += d * d;
    }
    config.signal_variance * (-0.5 * d2).exp()
}

/// Expected improvement of a *minimization* objective at a point with
/// posterior `(mu, var)` over the incumbent `best`.
///
/// Returns 0 when the posterior is (numerically) deterministic.
pub fn expected_improvement(mu: f64, var: f64, best: f64) -> f64 {
    let sigma = var.max(0.0).sqrt();
    if sigma < 1e-12 {
        return (best - mu).max(0.0);
    }
    let z = (best - mu) / sigma;
    // Clamp at zero: EI is non-negative by definition, but the rational
    // erf approximation's absolute error (~1e-7) can push the far tail
    // microscopically negative.
    ((best - mu) * normal_cdf(z) + sigma * normal_pdf(z)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_training_points() {
        let xs = grid_1d(6);
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 6.0).sin()).collect();
        let gp = Gp::fit(
            &xs,
            &ys,
            GpConfig {
                noise_variance: 1e-8,
                ..GpConfig::default()
            },
        )
        .unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let (mu, var) = gp.predict(x);
            assert!((mu - y).abs() < 0.05, "mu={mu} y={y}");
            assert!(var < 0.1);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let xs = vec![vec![0.0], vec![0.1]];
        let ys = vec![0.0, 0.1];
        let gp = Gp::fit(&xs, &ys, GpConfig::default()).unwrap();
        let (_, var_near) = gp.predict(&[0.05]);
        let (_, var_far) = gp.predict(&[1.0]);
        assert!(var_far > var_near, "far {var_far} near {var_near}");
    }

    #[test]
    fn duplicate_points_do_not_break_fit() {
        let xs = vec![vec![0.5], vec![0.5], vec![0.5], vec![0.7]];
        let ys = vec![1.0, 1.0, 1.0, 2.0];
        let gp = Gp::fit(&xs, &ys, GpConfig::default()).unwrap();
        let (mu, _) = gp.predict(&[0.5]);
        assert!(mu.is_finite());
        assert_eq!(gp.len(), 4);
        assert!(!gp.is_empty());
    }

    #[test]
    fn constant_targets_are_handled() {
        let xs = grid_1d(4);
        let ys = vec![3.0; 4];
        let gp = Gp::fit(&xs, &ys, GpConfig::default()).unwrap();
        let (mu, _) = gp.predict(&[0.5]);
        assert!((mu - 3.0).abs() < 0.2);
    }

    #[test]
    fn ard_length_scales_apply_per_dimension() {
        // Short scale in dim 0, long in dim 1: correlation should decay much
        // faster along dim 0.
        let cfg = GpConfig {
            length_scales: vec![0.05, 2.0],
            signal_variance: 1.0,
            noise_variance: 1e-6,
        };
        let k_same = kernel(&cfg, &[0.0, 0.0], &[0.0, 0.0]);
        let k_d0 = kernel(&cfg, &[0.0, 0.0], &[0.3, 0.0]);
        let k_d1 = kernel(&cfg, &[0.0, 0.0], &[0.0, 0.3]);
        assert!(k_same > k_d1 && k_d1 > k_d0);
    }

    #[test]
    fn ei_known_values() {
        // Deterministic posterior: EI = max(best - mu, 0).
        assert_eq!(expected_improvement(1.0, 0.0, 2.0), 1.0);
        assert_eq!(expected_improvement(3.0, 0.0, 2.0), 0.0);
        // At mu == best with sigma = 1, EI = phi(0) ≈ 0.3989.
        assert!((expected_improvement(2.0, 1.0, 2.0) - 0.398_942_3).abs() < 1e-5);
        // EI decreases as mu rises above best.
        assert!(expected_improvement(2.5, 1.0, 2.0) < expected_improvement(2.0, 1.0, 2.0));
        // EI is non-negative everywhere.
        assert!(expected_improvement(10.0, 0.5, 0.0) >= 0.0);
    }

    #[test]
    #[should_panic(expected = "zero observations")]
    fn empty_fit_panics() {
        let _ = Gp::fit(&[], &[], GpConfig::default());
    }
}

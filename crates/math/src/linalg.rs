#![allow(clippy::needless_range_loop)] // index loops mirror the textbook algorithms

//! A small dense-matrix toolkit: just enough linear algebra (Cholesky
//! factorization and triangular solves) to implement Gaussian-process
//! regression without an external BLAS.

use std::error::Error;
use std::fmt;

/// Error returned when a Cholesky factorization fails because the matrix is
/// not (numerically) positive definite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CholeskyError {
    /// The pivot index at which a non-positive diagonal was encountered.
    pub pivot: usize,
}

impl fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix is not positive definite (non-positive pivot at index {})",
            self.pivot
        )
    }
}

impl Error for CholeskyError {}

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use asha_math::Matrix;
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let chol = a.cholesky()?;
/// let x = chol.solve(&[2.0, 1.0]);
/// // Verify A x = b.
/// let b = a.matvec(&x);
/// assert!((b[0] - 2.0).abs() < 1e-12 && (b[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), asha_math::CholeskyError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Build by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in matvec");
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            out[i] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Cholesky factorization `A = L L^T` of a symmetric positive-definite
    /// matrix, returning the lower-triangular factor wrapped in a solver.
    ///
    /// # Errors
    ///
    /// Returns [`CholeskyError`] when the matrix is not numerically positive
    /// definite; callers typically retry after increasing the diagonal
    /// jitter.
    pub fn cholesky(&self) -> Result<Cholesky, CholeskyError> {
        assert_eq!(self.rows, self.cols, "cholesky requires a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(CholeskyError { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// A lower-triangular Cholesky factor with solve routines.
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solve `L y = b` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factor size.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "dimension mismatch in solve_lower");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        y
    }

    /// Solve `L^T x = y` (backward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` does not match the factor size.
    pub fn solve_upper_transpose(&self, y: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(y.len(), n, "dimension mismatch in solve_upper_transpose");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Solve `A x = b` where `A = L L^T`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper_transpose(&self.solve_lower(b))
    }

    /// Log-determinant of `A`: `2 * sum(log diag(L))`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
    }

    #[test]
    fn cholesky_known_factor() {
        // Classic example: L = [[2,0,0],[6,1,0],[-8,5,3]].
        let chol = spd3().cholesky().unwrap();
        let l = chol.factor();
        let expected = [[2.0, 0.0, 0.0], [6.0, 1.0, 0.0], [-8.0, 5.0, 3.0]];
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (l[(i, j)] - expected[i][j]).abs() < 1e-12,
                    "L[{i}][{j}] = {}",
                    l[(i, j)]
                );
            }
        }
    }

    #[test]
    fn solve_recovers_solution() {
        let a = spd3();
        let chol = a.cholesky().unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = chol.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn log_det_matches() {
        // det = (2*1*3)^2 = 36, log_det = ln(36).
        let chol = spd3().cholesky().unwrap();
        assert!((chol.log_det() - 36f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn non_spd_is_rejected() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // indefinite
        let err = m.cholesky().unwrap_err();
        assert_eq!(err.pivot, 1);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn identity_solves_trivially() {
        let chol = Matrix::identity(4).cholesky().unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(chol.solve(&b), b.to_vec());
        assert_eq!(chol.log_det(), 0.0);
    }

    #[test]
    fn from_fn_and_indexing() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_checks_dims() {
        Matrix::zeros(2, 2).matvec(&[1.0]);
    }
}

//! One-dimensional Gaussian kernel density estimation.
//!
//! The Tree-structured Parzen Estimator inside the BOHB baseline factorizes
//! its density over dimensions, so a 1-D KDE per hyperparameter (in unit
//! space) is all it needs.

use rand::Rng;

use crate::dist::{normal_pdf_scaled, truncated_normal};

/// A Gaussian KDE over points in `[0, 1]`, with Scott's-rule bandwidth and a
/// bandwidth floor so degenerate samples still produce a usable density.
#[derive(Debug, Clone, PartialEq)]
pub struct Kde1d {
    points: Vec<f64>,
    bandwidth: f64,
}

impl Kde1d {
    /// Build a KDE from sample points (values are clamped to `[0, 1]`).
    ///
    /// Uses Scott's rule `h = sigma * n^(-1/5)` with a floor of `min_bandwidth`.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn new(points: &[f64], min_bandwidth: f64) -> Self {
        assert!(!points.is_empty(), "KDE requires at least one point");
        let points: Vec<f64> = points.iter().map(|p| p.clamp(0.0, 1.0)).collect();
        let sigma = crate::stats::std_dev(&points);
        let n = points.len() as f64;
        let bandwidth = (sigma * n.powf(-0.2)).max(min_bandwidth);
        Kde1d { points, bandwidth }
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of kernel centers.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the KDE has no centers (never true for a constructed KDE).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Density at `x`, mixed with a small uniform component (weight 0.05) so
    /// the TPE ratio `l(x)/g(x)` stays bounded on `[0, 1]`.
    pub fn pdf(&self, x: f64) -> f64 {
        let kernel_mix: f64 = self
            .points
            .iter()
            .map(|&p| normal_pdf_scaled(x, p, self.bandwidth))
            .sum::<f64>()
            / self.points.len() as f64;
        0.95 * kernel_mix + 0.05
    }

    /// Sample from the KDE: pick a kernel center uniformly, then draw from a
    /// normal truncated to `[0, 1]` around it.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let center = self.points[rng.gen_range(0..self.points.len())];
        truncated_normal(rng, center, self.bandwidth, 0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn density_peaks_at_the_data() {
        let kde = Kde1d::new(&[0.2, 0.21, 0.19, 0.2], 0.05);
        assert!(kde.pdf(0.2) > kde.pdf(0.8));
    }

    #[test]
    fn single_point_uses_bandwidth_floor() {
        let kde = Kde1d::new(&[0.5], 0.1);
        assert_eq!(kde.bandwidth(), 0.1);
        assert!(kde.pdf(0.5) > kde.pdf(0.0));
        assert_eq!(kde.len(), 1);
        assert!(!kde.is_empty());
    }

    #[test]
    fn samples_stay_in_unit_interval() {
        let kde = Kde1d::new(&[0.05, 0.95], 0.1);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let x = kde.sample(&mut rng);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn samples_concentrate_near_centers() {
        let kde = Kde1d::new(&[0.3], 0.02);
        let mut rng = StdRng::seed_from_u64(6);
        let mut near = 0;
        let n = 1000;
        for _ in 0..n {
            if (kde.sample(&mut rng) - 0.3).abs() < 0.1 {
                near += 1;
            }
        }
        assert!(near > n * 9 / 10, "only {near}/{n} samples near the center");
    }

    #[test]
    fn pdf_has_uniform_floor() {
        let kde = Kde1d::new(&[0.0], 0.01);
        // Far from the only kernel the density approaches the uniform mix.
        assert!(kde.pdf(1.0) >= 0.05 - 1e-12);
    }

    #[test]
    fn out_of_range_points_are_clamped() {
        let kde = Kde1d::new(&[-0.5, 1.5], 0.05);
        assert!(kde.pdf(0.0) > kde.pdf(0.5));
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_kde_panics() {
        let _ = Kde1d::new(&[], 0.1);
    }
}

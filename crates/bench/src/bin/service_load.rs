//! `service_load` — load benchmark for the `asha-serve` reactor.
//!
//! Measures the service layer the way the paper's Section 4.4 regime would
//! stress it: request/reply throughput and latency, connection churn,
//! subscriber fan-out scaling, and the headline row — ten thousand
//! concurrent connections (mixed requests and subscriptions) against one
//! daemon on its fixed thread pool — plus a metrics-overhead row comparing
//! ping throughput with the observability plane on vs. off. Results land
//! in `BENCH_service.json` so the perf trajectory is recorded PR over PR.
//!
//! The daemon runs in a *child process* (re-exec of this binary with
//! `--serve-child`), so its thread and fd inventory can be read from
//! `/proc/<pid>/status` without the load driver polluting the numbers, and
//! so driver and daemon each stay under the open-file limit at 10k sockets.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p asha-bench --bin service_load            # full
//! cargo run --release -p asha-bench --bin service_load -- --quick # CI-sized
//!     [--out PATH]    output path (default BENCH_service.json)
//! ```
//!
//! Numbers are wall-clock on whatever machine runs the binary; treat them
//! as a trajectory (same-machine ratios PR over PR), not absolute truth.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use asha::core::{Asha, AshaConfig};
use asha::metrics::JsonValue;
use asha::service::{Client, Daemon, Push, ServeOptions};
use asha::store::{
    BenchSpec, Durability, ExperimentMeta, ExperimentStatus, RunOptions, SchedulerState,
};
use asha::surrogate::BenchmarkModel;

const EXPERIMENT: &str = "load";
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);
const CALL_TIMEOUT: Duration = Duration::from_secs(60);

struct Opts {
    quick: bool,
    out: String,
}

fn parse_opts() -> (Opts, Option<(String, String)>) {
    let mut opts = Opts {
        quick: false,
        out: "BENCH_service.json".to_owned(),
    };
    let mut child: Option<(String, String)> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "--smoke" => opts.quick = true,
            "--out" => {
                if let Some(path) = args.next() {
                    opts.out = path;
                }
            }
            "--serve-child" => {
                let root = args.next().expect("--serve-child needs ROOT ADDRFILE");
                let addrfile = args.next().expect("--serve-child needs ROOT ADDRFILE");
                child = Some((root, addrfile));
            }
            _ => {}
        }
    }
    (opts, child)
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("service_load: error: {msg}");
    std::process::exit(1);
}

/// Child mode: run the daemon until a client asks it to shut down,
/// publishing the bound TCP address through `addrfile` (atomic rename so
/// the parent never reads a half-written line).
fn serve_child(root: &str, addrfile: &str) -> ! {
    let mut serve = ServeOptions::new(root);
    serve.tcp = Some("127.0.0.1:0".to_owned());
    // The overhead row toggles the metrics plane through the environment so
    // both legs run the identical binary and command line.
    if std::env::var("ASHA_METRICS").is_ok_and(|v| v == "off") {
        serve.metrics = false;
    }
    let daemon = match Daemon::start(serve) {
        Ok(d) => d,
        Err(e) => fail(e),
    };
    let addr = daemon.tcp_addr().expect("daemon has a TCP listener");
    let tmp = format!("{addrfile}.tmp");
    std::fs::write(&tmp, format!("{addr}\n")).unwrap_or_else(|e| fail(e));
    std::fs::rename(&tmp, addrfile).unwrap_or_else(|e| fail(e));
    match daemon.wait() {
        Ok(()) => std::process::exit(0),
        Err(e) => fail(e),
    }
}

/// Spawn the daemon child and wait for it to publish its address.
///
/// The returned `Child` is reaped by `main` after the shutdown request;
/// the lint cannot see ownership escaping through the return value.
#[allow(clippy::zombie_processes)]
fn spawn_daemon(root: &std::path::Path, metrics: bool) -> (std::process::Child, String) {
    let exe = std::env::current_exe().expect("current_exe");
    let addrfile = root.join("addr.txt");
    let mut child = std::process::Command::new(exe)
        .arg("--serve-child")
        .arg(root)
        .arg(&addrfile)
        .env("ASHA_METRICS", if metrics { "on" } else { "off" })
        .spawn()
        .expect("spawning daemon child");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(contents) = std::fs::read_to_string(&addrfile) {
            let addr = contents.trim().to_owned();
            if !addr.is_empty() {
                return (child, addr);
            }
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            fail("daemon child never published its address");
        }
        thread::sleep(Duration::from_millis(20));
    }
}

fn connect(addr: &str) -> Client {
    let mut client = Client::connect_tcp_timeout(addr, CONNECT_TIMEOUT).unwrap_or_else(|e| fail(e));
    client.set_call_timeout(Some(CALL_TIMEOUT));
    client
}

fn small_meta() -> ExperimentMeta {
    let spec = BenchSpec {
        preset: "svm_vehicle".to_owned(),
        seed: 11,
    };
    let bench = spec.build().expect("bench preset");
    let space = bench.space().clone();
    let asha = Asha::new(space.clone(), AshaConfig::new(1.0, 27.0, 3.0));
    ExperimentMeta {
        name: EXPERIMENT.to_owned(),
        space,
        initial: SchedulerState::Asha(asha.export_state()),
        sampler: None,
        seed: 5,
        sim: asha::sim::SimConfig::new(4, 40.0),
        bench: spec,
    }
}

fn run_opts() -> RunOptions {
    RunOptions {
        sync: Durability::EveryN(32),
        snapshot_jobs: 200,
        ..RunOptions::default()
    }
}

fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Thread count of a process from `/proc/<pid>/status` (Linux only).
fn process_threads(pid: u32) -> Option<u64> {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Soft open-file limit of this process, from `/proc/self/limits`.
fn open_file_limit() -> Option<u64> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    limits
        .lines()
        .find(|l| l.starts_with("Max open files"))
        .and_then(|l| l.split_whitespace().nth(3))
        .and_then(|v| v.parse().ok())
}

/// Request/reply throughput: `threads` concurrent clients each issuing
/// `per_thread` pings; reports aggregate req/s and latency percentiles.
fn requests_row(addr: &str, threads: usize, per_thread: usize) -> JsonValue {
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let addr = addr.to_owned();
            thread::spawn(move || {
                let mut client = connect(&addr);
                let mut lat = Vec::with_capacity(per_thread);
                for _ in 0..per_thread {
                    let t0 = Instant::now();
                    client.ping().unwrap_or_else(|e| fail(e));
                    lat.push(t0.elapsed().as_micros() as u64);
                }
                lat
            })
        })
        .collect();
    let mut lat: Vec<u64> = Vec::new();
    for handle in handles {
        lat.extend(handle.join().expect("request thread"));
    }
    let secs = start.elapsed().as_secs_f64();
    lat.sort_unstable();
    let total = threads * per_thread;
    let per_sec = total as f64 / secs.max(1e-9);
    let (p50, p99) = (percentile_us(&lat, 0.50), percentile_us(&lat, 0.99));
    println!(
        "  requests {threads:>3} clients x {per_thread}: {total:>7} pings in {secs:>6.3}s = {per_sec:>9.0} req/s (p50 {p50} us, p99 {p99} us)"
    );
    JsonValue::obj([
        ("clients", JsonValue::Int(threads as u64)),
        ("requests", JsonValue::Int(total as u64)),
        ("wall_secs", JsonValue::Num(secs)),
        ("req_per_sec", JsonValue::Num(per_sec)),
        ("p50_us", JsonValue::Int(p50)),
        ("p99_us", JsonValue::Int(p99)),
    ])
}

/// Connection churn: connect + ping + disconnect cycles; the reactor must
/// absorb accept/close storms without latency spikes.
fn churn_row(addr: &str, threads: usize, per_thread: usize) -> JsonValue {
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let addr = addr.to_owned();
            thread::spawn(move || {
                let mut lat = Vec::with_capacity(per_thread);
                for _ in 0..per_thread {
                    let t0 = Instant::now();
                    let mut client = connect(&addr);
                    client.ping().unwrap_or_else(|e| fail(e));
                    drop(client);
                    lat.push(t0.elapsed().as_micros() as u64);
                }
                lat
            })
        })
        .collect();
    let mut lat: Vec<u64> = Vec::new();
    for handle in handles {
        lat.extend(handle.join().expect("churn thread"));
    }
    let secs = start.elapsed().as_secs_f64();
    lat.sort_unstable();
    let total = threads * per_thread;
    let per_sec = total as f64 / secs.max(1e-9);
    let (p50, p99) = (percentile_us(&lat, 0.50), percentile_us(&lat, 0.99));
    println!(
        "  churn    {threads:>3} threads x {per_thread}: {total:>7} cycles in {secs:>6.3}s = {per_sec:>9.0} conn/s (p50 {p50} us, p99 {p99} us)"
    );
    JsonValue::obj([
        ("threads", JsonValue::Int(threads as u64)),
        ("cycles", JsonValue::Int(total as u64)),
        ("wall_secs", JsonValue::Num(secs)),
        ("cycles_per_sec", JsonValue::Num(per_sec)),
        ("p50_us", JsonValue::Int(p50)),
        ("p99_us", JsonValue::Int(p99)),
    ])
}

/// Subscriber fan-out: `subs` concurrent subscribers each replaying the
/// finished experiment's WAL to `End`; one tailer reads the log once and
/// fans frames to every queue, so aggregate events/s should scale with the
/// subscriber count until the wire saturates.
fn fanout_row(addr: &str, subs: usize) -> JsonValue {
    let delivered = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..subs)
        .map(|_| {
            let addr = addr.to_owned();
            let delivered = Arc::clone(&delivered);
            thread::spawn(move || {
                let mut client = connect(&addr);
                let sub = client.subscribe(EXPERIMENT, 0).unwrap_or_else(|e| fail(e));
                let mut events = 0u64;
                loop {
                    match client.next_push(Some(CALL_TIMEOUT)) {
                        Ok(Some(push)) if push.sub() == sub => match push {
                            Push::Event { .. } => {
                                events += 1;
                                delivered.fetch_add(1, Ordering::Relaxed);
                            }
                            Push::End { .. } => break,
                            _ => {}
                        },
                        Ok(Some(_)) => {}
                        Ok(None) => fail("subscriber stream stalled"),
                        Err(e) => fail(e),
                    }
                }
                events
            })
        })
        .collect();
    let mut per_sub: Vec<u64> = handles
        .into_iter()
        .map(|h| h.join().expect("fanout thread"))
        .collect();
    let secs = start.elapsed().as_secs_f64();
    let total = delivered.load(Ordering::Relaxed);
    per_sub.sort_unstable();
    let identical = per_sub.first() == per_sub.last();
    if !identical {
        fail(format!(
            "subscribers saw unequal streams: {:?}..{:?}",
            per_sub.first(),
            per_sub.last()
        ));
    }
    let per_sec = total as f64 / secs.max(1e-9);
    println!(
        "  fanout   {subs:>3} subscribers: {total:>8} events in {secs:>6.3}s = {per_sec:>9.0} events/s ({} per stream)",
        per_sub.first().copied().unwrap_or(0)
    );
    JsonValue::obj([
        ("subscribers", JsonValue::Int(subs as u64)),
        (
            "events_per_stream",
            JsonValue::Int(per_sub.first().copied().unwrap_or(0)),
        ),
        ("events_total", JsonValue::Int(total)),
        ("wall_secs", JsonValue::Num(secs)),
        ("events_per_sec", JsonValue::Num(per_sec)),
        ("streams_identical", JsonValue::Bool(identical)),
    ])
}

/// A single-fd load-driver connection. [`Client`] duplicates its socket
/// (reader + writer), which would double the fd bill at 10k connections;
/// the fleet instead speaks the newline-delimited protocol over one raw
/// stream, wrk-style.
struct RawConn {
    stream: std::net::TcpStream,
    carry: Vec<u8>,
}

impl RawConn {
    fn connect(addr: &std::net::SocketAddr) -> std::io::Result<RawConn> {
        let stream = std::net::TcpStream::connect_timeout(addr, CONNECT_TIMEOUT)?;
        stream.set_read_timeout(Some(CALL_TIMEOUT))?;
        Ok(RawConn {
            stream,
            carry: Vec::new(),
        })
    }

    fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        use std::io::Write;
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")
    }

    /// Read one reply line (the request half never receives pushes, so the
    /// next line is always the pending reply).
    fn read_line(&mut self) -> std::io::Result<String> {
        use std::io::Read;
        let mut chunk = [0u8; 256];
        loop {
            if let Some(nl) = self.carry.iter().position(|&b| b == b'\n') {
                let line = String::from_utf8_lossy(&self.carry[..nl]).into_owned();
                self.carry.drain(..=nl);
                return Ok(line);
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-reply",
                ));
            }
            self.carry.extend_from_slice(&chunk[..n]);
        }
    }
}

/// The headline row: `target` concurrent connections held open at once —
/// half subscribed to the experiment's WAL stream, half issuing requests —
/// with reply latency measured by a ping sweep while every socket stays
/// registered, and the daemon's thread count read from /proc to prove the
/// pool stayed fixed.
fn concurrent_row(addr: &str, admin: &mut Client, daemon_pid: u32, target: usize) -> JsonValue {
    use std::net::ToSocketAddrs;
    // Stay under the fd soft limit with headroom for stdio/WAL/listeners.
    let target = match open_file_limit() {
        Some(limit) => target.min((limit.saturating_sub(256)) as usize),
        None => target,
    };
    let sockaddr = addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
        .unwrap_or_else(|| fail("daemon address unresolvable"));
    let before = admin.stats().unwrap_or_else(|e| fail(e));

    let connect_start = Instant::now();
    let mut fleet: Vec<RawConn> = Vec::with_capacity(target);
    for i in 0..target {
        fleet.push(RawConn::connect(&sockaddr).unwrap_or_else(|e| fail(e)));
        if (i + 1) % 2000 == 0 {
            println!("    ... {} connections open", i + 1);
        }
    }
    let connect_secs = connect_start.elapsed().as_secs_f64();

    // Half the fleet subscribes (replaying the finished WAL into its
    // socket); the other half is the request side of the mix. Replies and
    // pushes accumulate in each subscriber's receive buffer — the driver
    // deliberately leaves them unread, like a slow consumer would.
    let mut subscribed = 0u64;
    let sub_line = format!(
        "{{\"v\":1,\"id\":1,\"op\":\"subscribe\",\"name\":\"{EXPERIMENT}\",\"from_seq\":0}}"
    );
    for (i, conn) in fleet.iter_mut().enumerate() {
        if i % 2 == 0 {
            conn.send_line(&sub_line).unwrap_or_else(|e| fail(e));
            subscribed += 1;
        }
    }

    // Let the fan-out drain: events_sent must stop moving before we call
    // the subscription traffic delivered.
    let mut last = before.events_sent;
    let settle_deadline = Instant::now() + Duration::from_secs(120);
    loop {
        thread::sleep(Duration::from_millis(200));
        let now = admin.stats().unwrap_or_else(|e| fail(e)).events_sent;
        if now == last || Instant::now() > settle_deadline {
            last = now;
            break;
        }
        last = now;
    }

    // Ping sweep across the request half while every connection is live.
    let mut lat = Vec::new();
    let sweep_start = Instant::now();
    for (i, conn) in fleet.iter_mut().enumerate() {
        if i % 2 == 1 {
            let t0 = Instant::now();
            conn.send_line("{\"v\":1,\"id\":1,\"op\":\"ping\"}")
                .unwrap_or_else(|e| fail(e));
            let reply = conn.read_line().unwrap_or_else(|e| fail(e));
            if !reply.contains("\"ok\"") {
                fail(format!("unexpected ping reply: {reply}"));
            }
            lat.push(t0.elapsed().as_micros() as u64);
        }
    }
    let sweep_secs = sweep_start.elapsed().as_secs_f64();
    lat.sort_unstable();
    let (p50, p99) = (percentile_us(&lat, 0.50), percentile_us(&lat, 0.99));

    let stats = admin.stats().unwrap_or_else(|e| fail(e));
    let threads = process_threads(daemon_pid);
    let events_delivered = last.saturating_sub(before.events_sent);
    println!(
        "  concurrent {target:>6} connections ({subscribed} subscribed): connect {connect_secs:>6.2}s, {} pings in {sweep_secs:>6.3}s (p50 {p50} us, p99 {p99} us), {} events fanned out, daemon threads {}",
        lat.len(),
        events_delivered,
        threads.map_or("n/a".to_owned(), |t| t.to_string()),
    );
    drop(fleet);
    JsonValue::obj([
        ("connections", JsonValue::Int(target as u64)),
        ("subscribed", JsonValue::Int(subscribed)),
        ("connect_secs", JsonValue::Num(connect_secs)),
        ("pings", JsonValue::Int(lat.len() as u64)),
        ("ping_sweep_secs", JsonValue::Num(sweep_secs)),
        ("ping_p50_us", JsonValue::Int(p50)),
        ("ping_p99_us", JsonValue::Int(p99)),
        ("events_delivered", JsonValue::Int(events_delivered)),
        ("connections_open", JsonValue::Int(stats.connections_open)),
        (
            "daemon_threads",
            threads.map_or(JsonValue::Null, JsonValue::Int),
        ),
    ])
}

/// Metrics-plane overhead: ping throughput and latency against a fresh
/// daemon with the plane enabled, then against one with `ASHA_METRICS=off`
/// (every recorder compiled in but runtime-gated). The two legs run
/// sequentially on dedicated roots so neither inherits warm state.
fn metrics_overhead_row(quick: bool) -> JsonValue {
    let (threads, each) = if quick { (4, 1000) } else { (8, 4000) };
    let mut legs: Vec<(&str, JsonValue)> = Vec::new();
    for (label, metrics) in [("on", true), ("off", false)] {
        let root = std::env::temp_dir().join(format!(
            "asha-service-overhead-{label}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap_or_else(|e| fail(e));
        let (mut daemon, addr) = spawn_daemon(&root, metrics);
        println!("  overhead leg: metrics {label}");
        let row = requests_row(&addr, threads, each);
        let mut admin = connect(&addr);
        admin.shutdown().unwrap_or_else(|e| fail(e));
        let status = daemon.wait().expect("overhead daemon wait");
        if !status.success() {
            fail(format!("overhead daemon exited abnormally: {status}"));
        }
        std::fs::remove_dir_all(&root).ok();
        legs.push((label, row));
    }
    let p99 = |row: &JsonValue| row.get("p99_us").and_then(JsonValue::as_f64).unwrap_or(0.0);
    let (on_p99, off_p99) = (p99(&legs[0].1), p99(&legs[1].1));
    let p99_ratio = if off_p99 > 0.0 { on_p99 / off_p99 } else { 1.0 };
    println!("  overhead: ping p99 on/off ratio {p99_ratio:.3}");
    let mut fields: Vec<(&'static str, JsonValue)> =
        vec![("on", legs.remove(0).1), ("off", legs.remove(0).1)];
    fields.push(("p99_ratio", JsonValue::Num(p99_ratio)));
    JsonValue::obj(fields)
}

fn main() {
    let (opts, child) = parse_opts();
    if let Some((root, addrfile)) = child {
        serve_child(&root, &addrfile);
    }

    let root = std::env::temp_dir().join(format!("asha-service-load-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).unwrap_or_else(|e| fail(e));
    println!(
        "service_load ({}) ...",
        if opts.quick { "quick" } else { "full" }
    );

    let (mut daemon, addr) = spawn_daemon(&root, true);
    let daemon_pid = daemon.id();
    let mut admin = connect(&addr);

    // Request/reply throughput and connection churn against an idle root.
    let (req_threads, req_each) = if opts.quick { (4, 1500) } else { (8, 5000) };
    let requests = requests_row(&addr, req_threads, req_each);
    let (churn_threads, churn_each) = if opts.quick { (4, 150) } else { (4, 500) };
    let churn = churn_row(&addr, churn_threads, churn_each);

    // One small experiment, run to completion; every subscription row
    // below replays its WAL.
    admin
        .create(&small_meta(), run_opts())
        .unwrap_or_else(|e| fail(e));
    admin
        .start(EXPERIMENT, run_opts())
        .unwrap_or_else(|e| fail(e));
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let status = admin.status(EXPERIMENT).unwrap_or_else(|e| fail(e));
        if status.status == ExperimentStatus::Finished {
            break;
        }
        if Instant::now() > deadline {
            fail("experiment did not finish in 300s");
        }
        thread::sleep(Duration::from_millis(50));
    }

    // Subscriber fan-out scaling.
    let fanout_sizes: &[usize] = if opts.quick { &[4, 32] } else { &[8, 64, 256] };
    let fanout: Vec<JsonValue> = fanout_sizes.iter().map(|&n| fanout_row(&addr, n)).collect();

    // The 10k-connection headline (1k in quick mode).
    let target = if opts.quick { 1000 } else { 10_000 };
    let concurrent = concurrent_row(&addr, &mut admin, daemon_pid, target);

    admin.shutdown().unwrap_or_else(|e| fail(e));
    let status = daemon.wait().expect("daemon child wait");
    if !status.success() {
        fail(format!("daemon exited abnormally: {status}"));
    }

    // Metrics-plane overhead (fresh daemons, plane on vs. off).
    let metrics_overhead = metrics_overhead_row(opts.quick);

    let report = JsonValue::obj([
        ("schema", JsonValue::Str("asha-service-load-v1".to_owned())),
        (
            "mode",
            JsonValue::Str(if opts.quick { "quick" } else { "full" }.to_owned()),
        ),
        ("requests", requests),
        ("churn", churn),
        ("fanout", JsonValue::Arr(fanout)),
        ("concurrent", concurrent),
        ("metrics_overhead", metrics_overhead),
    ]);
    match asha::metrics::write_json(&opts.out, &report) {
        Ok(()) => println!("wrote {}", opts.out),
        Err(e) => fail(e),
    }
    std::fs::remove_dir_all(&root).ok();
}

//! Calibration tool: print the distribution of full-training losses and
//! costs for each surrogate benchmark under uniform random sampling. Used to
//! sanity-check that surfaces make the paper's comparisons meaningful (e.g.
//! "best of ~2k random full evaluations" vs "best of ~50k early-stopped
//! ones" for Figure 5).

use asha::math::stats::{mean, quantile, std_dev};
use asha::surrogate::{presets, BenchmarkModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let seed = presets::DEFAULT_SURFACE_SEED;
    let benches = [
        presets::cifar10_cuda_convnet(seed),
        presets::cifar10_small_cnn(seed),
        presets::svhn_small_cnn(seed),
        presets::ptb_lstm(seed),
        presets::ptb_dropconnect_lstm(seed),
        presets::svm_vehicle(seed),
        presets::svm_mnist(seed),
    ];
    println!("full-training loss quantiles over {n} uniform random configurations\n");
    println!(
        "{:<24} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>11} {:>9}",
        "benchmark", "min", "p0.1%", "p1%", "p10%", "p50%", "p99%", "cost mean", "cost std"
    );
    for b in &benches {
        let mut rng = StdRng::seed_from_u64(9999);
        let mut losses = Vec::with_capacity(n);
        let mut costs = Vec::with_capacity(n);
        for _ in 0..n {
            let c = b.space().sample(&mut rng);
            let mut s = b.init_state(&c, &mut rng);
            b.advance(&c, &mut s, b.max_resource(), &mut rng);
            losses.push(b.validation_loss(&c, &s, &mut rng));
            costs.push(b.time_full(&c));
        }
        println!(
            "{:<24} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>11.2} {:>9.2}",
            b.name(),
            quantile(&losses, 0.0),
            quantile(&losses, 0.001),
            quantile(&losses, 0.01),
            quantile(&losses, 0.10),
            quantile(&losses, 0.50),
            quantile(&losses, 0.99),
            mean(&costs),
            std_dev(&costs),
        );
    }
}

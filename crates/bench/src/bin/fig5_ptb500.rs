//! Figure 5: the large-scale benchmark — 500 workers tuning an LSTM on Penn
//! Treebank for 6 × time(R); ASHA vs asynchronous Hyperband vs the
//! Vizier-like GP-EI baseline, 5 trials each.
//!
//! Paper settings: η = 4, r = R/64, s = 0; asynchronous Hyperband loops
//! brackets s = 0..=3; Vizier runs without early stopping. Observed
//! perplexities are capped at 1000 (the paper's own mitigation), and the
//! benchmark's divergent tail is what hurts the model-based baseline.

use asha::baselines::{Vizier, VizierConfig};
use asha::core::{Asha, AshaConfig, AsyncHyperband, HyperbandConfig};
use asha::surrogate::{presets, BenchmarkModel};
use asha_bench::{
    print_comparison, print_time_to_reach, run_experiment_parallel, threads_from_args,
    write_results, ExperimentConfig, MethodSpec,
};

const R: f64 = 64.0; // r = R/64 = 1
const ETA: f64 = 4.0;

fn main() {
    println!("Figure 5: 500-worker PTB LSTM benchmark (this is the heavy one)...");
    let bench = presets::ptb_lstm(presets::DEFAULT_SURFACE_SEED);
    let s1 = bench.space().clone();
    let s2 = bench.space().clone();
    let s3 = bench.space().clone();
    let methods = vec![
        MethodSpec::new("ASHA", move || {
            Asha::new(s1.clone(), AshaConfig::new(1.0, R, ETA))
        }),
        MethodSpec::new("Hyperband (loop brackets)", move || {
            AsyncHyperband::new(
                s2.clone(),
                HyperbandConfig::new(1.0, R, ETA).with_brackets(4),
            )
        }),
        MethodSpec::new("Vizier", move || {
            let mut cfg = VizierConfig::new(R);
            // Keep the O(n^3) GP affordable at 500-worker scale.
            cfg.max_model_points = 150;
            cfg.candidates = 64;
            cfg.refit_every = 16;
            Vizier::new(s3.clone(), cfg)
        }),
    ];
    // Horizon 6 x time(R); the surrogate's time unit *is* time(R).
    let mut cfg = ExperimentConfig::new(500, 6.0, 5, 1000.0);
    cfg.grid_points = 120;
    let results = run_experiment_parallel(&bench, &methods, &cfg, threads_from_args());
    print_comparison(
        "Figure 5 — LSTM on PTB (500 workers, units of time(R), perplexity)",
        &results,
        &[0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
    );
    print_time_to_reach(&results, 80.0);
    write_results("fig5_ptb", &results);
    println!("\nExpected shape (paper): ASHA/async-Hyperband find good configs in ≈ 1 x time(R)");
    println!("and are ≈ 3x faster than Vizier to perplexity 80; async Hyperband lags ASHA early.");
}

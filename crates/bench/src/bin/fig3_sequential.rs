//! Figure 3: sequential experiments (1 worker) on the two CIFAR-10
//! benchmarks — SHA, Hyperband, Random, PBT, ASHA, asynchronous Hyperband,
//! and BOHB, averaged over 10 trials.
//!
//! Paper settings (Appendix A.3): n = 256, η = 4, s = 0, r = R/256 with
//! R = 30k SGD iterations (our surrogates use R = 256 resource units); PBT
//! population 25 with explore/exploit every 1000 iterations (≈ R/30).

use asha::baselines::{bohb, Pbt, PbtConfig};
use asha::core::{
    Asha, AshaConfig, AsyncHyperband, Hyperband, HyperbandConfig, RandomSearch, ShaConfig, SyncSha,
};
use asha::space::SearchSpace;
use asha::surrogate::{presets, BenchmarkModel, CurveBenchmark};
use asha_bench::{
    print_comparison, print_time_to_reach, run_experiment_parallel, threads_from_args,
    write_results, ExperimentConfig, MethodSpec,
};

const R: f64 = 256.0;
const ETA: f64 = 4.0;

fn methods(space: &SearchSpace) -> Vec<MethodSpec> {
    let pbt_frozen: &[&str] = &["batch_size", "n_layers", "n_filters"];
    let has_arch = space.index_of("n_layers").is_ok();
    let frozen: Vec<String> = if has_arch {
        pbt_frozen.iter().map(|s| (*s).to_string()).collect()
    } else {
        Vec::new()
    };
    let s1 = space.clone();
    let s2 = space.clone();
    let s3 = space.clone();
    let s4 = space.clone();
    let s5 = space.clone();
    let s6 = space.clone();
    let s7 = space.clone();
    vec![
        MethodSpec::new("SHA", move || {
            SyncSha::new(s1.clone(), ShaConfig::new(256, 1.0, R, ETA).growing())
        }),
        MethodSpec::new("Hyperband", move || {
            Hyperband::new(s2.clone(), HyperbandConfig::new(1.0, R, ETA))
        }),
        MethodSpec::new("Random", move || RandomSearch::new(s3.clone(), R)),
        MethodSpec::new("PBT", {
            let frozen = frozen.clone();
            move || {
                let frozen_refs: Vec<&str> = frozen.iter().map(String::as_str).collect();
                Pbt::new(
                    s4.clone(),
                    PbtConfig::new(25, R, R / 30.0)
                        .with_frozen(&frozen_refs)
                        .spawning(),
                )
            }
        }),
        MethodSpec::new("ASHA", move || {
            Asha::new(s5.clone(), AshaConfig::new(1.0, R, ETA))
        }),
        MethodSpec::new("Hyperband (async)", move || {
            AsyncHyperband::new(s6.clone(), HyperbandConfig::new(1.0, R, ETA))
        }),
        MethodSpec::new("BOHB", move || {
            bohb(s7.clone(), ShaConfig::new(256, 1.0, R, ETA).growing())
        }),
    ]
}

fn run(bench: &CurveBenchmark, default_loss: f64, threshold: f64, stem: &str) {
    let cfg = ExperimentConfig::new(1, 2500.0, 10, default_loss);
    let results =
        run_experiment_parallel(bench, &methods(bench.space()), &cfg, threads_from_args());
    print_comparison(
        &format!(
            "Figure 3 — {} (1 worker, mean of 10 trials, test error)",
            bench.name()
        ),
        &results,
        &[250.0, 500.0, 1000.0, 1500.0, 2000.0, 2500.0],
    );
    print_time_to_reach(&results, threshold);
    write_results(stem, &results);
}

fn main() {
    println!("Figure 3: sequential experiments (this may take a minute)...");
    run(
        &presets::cifar10_cuda_convnet(presets::DEFAULT_SURFACE_SEED),
        0.65,
        0.21,
        "fig3_bench1",
    );
    run(
        &presets::cifar10_small_cnn(presets::DEFAULT_SURFACE_SEED),
        0.90,
        0.23,
        "fig3_bench2",
    );
    println!("\nExpected shape (paper): SHA-family and BOHB beat PBT by ~3x on benchmark 1;");
    println!("all methods beat Random on benchmark 2 with SHA/ASHA/BOHB/PBT roughly tied.");
}

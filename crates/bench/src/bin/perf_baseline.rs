//! Perf baseline: measures the two hot paths every large-scale experiment
//! leans on — simulator event throughput and scheduler suggest+observe
//! throughput — plus the parallel-runner speedup on a multi-method sweep,
//! and writes the numbers to `BENCH_sim.json` so the perf trajectory is
//! recorded PR over PR.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p asha-bench --bin perf_baseline            # full
//! cargo run --release -p asha-bench --bin perf_baseline -- --smoke # CI-sized
//!     --quick          alias for --smoke
//!     [--threads N]    extra thread count for the parallel sweep rows
//!     [--out PATH]     output path (default BENCH_sim.json)
//! ```
//!
//! Numbers are wall-clock on whatever machine runs the binary; treat them as
//! a trajectory (same-machine ratios PR over PR), not absolute truth.

use std::time::Instant;

use asha::baselines::bohb_asha;
use asha::core::{
    Asha, AshaConfig, AsyncHyperband, DAsha, HyperbandConfig, Observation, Scheduler, ShaConfig,
    SyncSha,
};
use asha::metrics::JsonValue;
use asha::sim::{ClusterSim, SimConfig, TraceMode};
use asha::space::SearchSpace;
use asha::store::{
    read_wal, replay_scheduler, BenchSpec, CommitPipeline, DeltaDoc, Durability, DurableRun,
    ExperimentMeta, RunOptions, SchedulerState, Snapshot, StoreFormat, StoredScheduler, WalRecord,
    WalWriter,
};
use asha::surrogate::{presets, BenchmarkModel};
use asha_bench::{
    run_experiment, run_experiment_parallel, threads_from_args, ExperimentConfig, MethodSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const R: f64 = 256.0;
const ETA: f64 = 4.0;

struct Opts {
    smoke: bool,
    threads: usize,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        smoke: false,
        threads: threads_from_args(),
        out: "BENCH_sim.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" | "--quick" => opts.smoke = true,
            "--out" => {
                if let Some(path) = args.next() {
                    opts.out = path;
                }
            }
            _ => {}
        }
    }
    opts
}

/// Simulator throughput: completed jobs per wall-clock second for one ASHA
/// run at the given scale and trace mode.
fn sim_throughput(
    bench: &dyn BenchmarkModel,
    workers: usize,
    horizon: f64,
    mode: TraceMode,
) -> JsonValue {
    let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, R, ETA));
    let sim = ClusterSim::new(SimConfig::new(workers, horizon).with_trace_mode(mode));
    let mut rng = StdRng::seed_from_u64(0);
    let start = Instant::now();
    let result = sim.run(asha, bench, &mut rng);
    let secs = start.elapsed().as_secs_f64();
    let events_per_sec = result.jobs_completed as f64 / secs.max(1e-9);
    let mode_name = match mode {
        TraceMode::Full => "full",
        TraceMode::IncumbentOnly => "incumbent_only",
        TraceMode::Aggregated => "aggregated",
    };
    println!(
        "  sim {workers:>3} workers, trace {mode_name:<14}: {:>9} jobs in {secs:>7.3}s = {events_per_sec:>12.0} events/s",
        result.jobs_completed
    );
    JsonValue::obj([
        ("workers", JsonValue::Int(workers as u64)),
        ("trace_mode", JsonValue::Str(mode_name.to_owned())),
        ("horizon", JsonValue::Num(horizon)),
        (
            "jobs_completed",
            JsonValue::Int(result.jobs_completed as u64),
        ),
        ("trace_events", JsonValue::Int(result.trace.len() as u64)),
        ("wall_secs", JsonValue::Num(secs)),
        ("events_per_sec", JsonValue::Num(events_per_sec)),
    ])
}

/// Scheduler throughput: suggest+observe round trips per second against a
/// synthetic loss stream (no simulator in the loop).
fn scheduler_throughput(name: &str, mut scheduler: Box<dyn Scheduler>, rounds: usize) -> JsonValue {
    let mut rng = StdRng::seed_from_u64(1);
    let start = Instant::now();
    let mut issued = 0usize;
    for i in 0..rounds {
        let Some(job) = scheduler.suggest(&mut rng).job() else {
            break;
        };
        scheduler.observe(Observation::for_job(&job, (i % 997) as f64));
        issued += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    let per_sec = issued as f64 / secs.max(1e-9);
    println!(
        "  scheduler {name:<16}: {issued:>8} round trips in {secs:>7.3}s = {per_sec:>12.0} suggests/s"
    );
    JsonValue::obj([
        ("name", JsonValue::Str(name.to_owned())),
        ("round_trips", JsonValue::Int(issued as u64)),
        ("wall_secs", JsonValue::Num(secs)),
        ("suggests_per_sec", JsonValue::Num(per_sec)),
    ])
}

/// Telemetry overhead: the same 25-worker Full-mode simulation with
/// recording off vs on. The two runs must complete identical job counts —
/// recording never consumes randomness — and the delta is the full price of
/// structured telemetry (event construction + JSONL-able buffering + online
/// metrics), reported as events logged per second and a wall-clock ratio.
fn telemetry_overhead(bench: &dyn BenchmarkModel, workers: usize, horizon: f64) -> JsonValue {
    let make = || Asha::new(bench.space().clone(), AshaConfig::new(1.0, R, ETA));
    let sim = ClusterSim::new(SimConfig::new(workers, horizon));

    let mut rng = StdRng::seed_from_u64(0);
    let start = Instant::now();
    let off = sim.run(make(), bench, &mut rng);
    let off_secs = start.elapsed().as_secs_f64();

    let mut rng = StdRng::seed_from_u64(0);
    let mut recorder = asha::obs::RunRecorder::new();
    let start = Instant::now();
    let on = sim.run_recorded(make(), bench, &mut rng, &mut recorder);
    let on_secs = start.elapsed().as_secs_f64();

    assert_eq!(
        off.jobs_completed, on.jobs_completed,
        "recording must not perturb the run"
    );
    let events_per_sec = recorder.len() as f64 / on_secs.max(1e-9);
    let overhead = on_secs / off_secs.max(1e-9);
    println!(
        "  telemetry {workers:>3} workers: off {off_secs:>7.3}s, on {on_secs:>7.3}s ({overhead:>5.2}x), {:>9} events = {events_per_sec:>12.0} events logged/s",
        recorder.len()
    );
    JsonValue::obj([
        ("workers", JsonValue::Int(workers as u64)),
        ("horizon", JsonValue::Num(horizon)),
        ("jobs_completed", JsonValue::Int(on.jobs_completed as u64)),
        ("events_logged", JsonValue::Int(recorder.len() as u64)),
        ("off_secs", JsonValue::Num(off_secs)),
        ("on_secs", JsonValue::Num(on_secs)),
        ("events_logged_per_sec", JsonValue::Num(events_per_sec)),
        ("overhead_ratio", JsonValue::Num(overhead)),
    ])
}

/// One interleaved A/B measurement of the WAL streaming tax at a given
/// scale: the same simulation with telemetry logged the pre-store way
/// (in-memory recorder, one bulk JSONL write at the end — lost entirely if
/// the process dies first) vs streamed through the durable store's WAL as
/// each event happens. Both runs are timed to the same mid-run job
/// checkpoint with all telemetry pushed to the OS, then finish untimed and
/// must complete identical job counts (persistence never consumes
/// randomness). The ratio isolates the per-event WAL streaming tax; fsync
/// cadence and snapshot costs are one-knob cadence choices whose total
/// cost is `cadence x unit price`, metered separately in [`persistence`].
struct WalTax {
    jobs: usize,
    checkpoint: usize,
    off_secs: f64,
    on_secs: f64,
    ratio: f64,
}

fn wal_tax(
    bench: &dyn BenchmarkModel,
    workers: usize,
    horizon: f64,
    reps: usize,
    dir: &std::path::Path,
) -> WalTax {
    let sim_cfg = SimConfig::new(workers, horizon);
    let make = || Asha::new(bench.space().clone(), AshaConfig::new(1.0, R, ETA));
    // `Flush` isolates streaming cost from fsync cost, and snapshots are
    // pushed past any reachable job count so no checkpoint lands inside
    // the timed window.
    let opts = RunOptions {
        sync: Durability::Flush,
        snapshot_jobs: usize::MAX / 2,
        ..RunOptions::default()
    };

    // Untimed scout run to learn the total job count, so the timed window
    // below can stop at a checkpoint strictly inside the run (the final
    // snapshot at completion is a separately-metered cost, not WAL tax).
    let sim = ClusterSim::new(sim_cfg.clone());
    let mut rng = StdRng::seed_from_u64(0);
    let total_jobs = sim.run(make(), bench, &mut rng).jobs_completed;
    let checkpoint = total_jobs * 9 / 10;

    let meta = ExperimentMeta {
        name: format!("perf-baseline-{workers}w"),
        space: bench.space().clone(),
        initial: SchedulerState::Asha(make().export_state()),
        sampler: None,
        seed: 0,
        sim: sim_cfg.clone(),
        bench: BenchSpec {
            preset: "cifar10_cuda_convnet".to_owned(),
            seed: presets::DEFAULT_SURFACE_SEED,
        },
    };

    // The timed windows are tens of milliseconds, so a single pair is at
    // the mercy of scheduler noise: interleave several repetitions of each
    // side and compare the per-side minima. Experiment creation (meta
    // write + first snapshot, a handful of fsyncs) happens outside the
    // timed window — it is a per-experiment constant, not part of the
    // per-event tax.
    let mut off_samples = Vec::with_capacity(reps);
    let mut on_samples = Vec::with_capacity(reps);
    let mut off_jobs = 0usize;
    let mut on_jobs = 0usize;
    for rep in 0..reps {
        // Baseline: record in memory while the engine runs, bulk-write the
        // JSONL log when the checkpoint is reached.
        let mut engine =
            asha::sim::SimEngine::new(sim_cfg.clone(), StoredScheduler::Asha(make()), bench);
        let mut rng = StdRng::seed_from_u64(0);
        let mut recorder = asha::obs::RunRecorder::new();
        let start = Instant::now();
        while engine.jobs_completed() < checkpoint && engine.step(&mut rng, &mut recorder) {}
        recorder
            .write_jsonl(dir.join(format!("baseline-{workers}.jsonl")))
            .expect("baseline log write");
        off_samples.push(start.elapsed().as_secs_f64());
        while engine.step(&mut rng, &mut recorder) {}
        off_jobs = engine.jobs_completed();

        // Same engine, same seed, but every event streams through the
        // durable store's WAL as it happens: kill the process anywhere in
        // this window and the run recovers.
        let run_dir = dir.join(format!("run-{workers}-{rep}"));
        let mut run = DurableRun::create(&run_dir, &meta, bench, opts).expect("store create");
        let start = Instant::now();
        let live = run.run_until_jobs(checkpoint).expect("durable run");
        run.flush().expect("wal flush");
        on_samples.push(start.elapsed().as_secs_f64());
        assert!(live, "checkpoint must land strictly mid-run");
        let on = run.run_to_completion().expect("durable finish");
        on_jobs = on.jobs_completed;
    }
    assert_eq!(off_jobs, on_jobs, "persistence must not perturb the run");
    // Minimum over repetitions: both sides are deterministic CPU-plus-
    // page-cache work, so the fastest observation is the least-noise one.
    let floor = |samples: &[f64]| samples.iter().copied().fold(f64::INFINITY, f64::min);
    let off_secs = floor(&off_samples);
    let on_secs = floor(&on_samples);
    WalTax {
        jobs: on_jobs,
        checkpoint,
        off_secs,
        on_secs,
        ratio: on_secs / off_secs.max(1e-9),
    }
}

/// Persistence tax, metered knob by knob: the WAL streaming A/B at the
/// 25-worker regime (budget 1.10x) and at the paper's 500-worker regime
/// (budget 1.05x — per-event overhead must amortize *better* as scale
/// grows, or durability caps scale-out), WAL append and replay throughput
/// through the default `binary-v2` codec, full and delta snapshot write
/// latency (budget 100 ms), and the group-commit pipeline's fsync
/// amortization across concurrently committing WALs.
fn persistence(
    bench: &dyn BenchmarkModel,
    workers: usize,
    horizon: f64,
    rounds: usize,
    scale_reps: usize,
) -> JsonValue {
    let dir = std::env::temp_dir().join(format!("asha-perf-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("perf tmp dir");
    // The timed windows below need enough work to rise above scheduler
    // noise, so these rows never run shorter than horizon 240 even in
    // smoke mode.
    let horizon = horizon.max(240.0);
    let tax = wal_tax(bench, workers, horizon, 7, &dir);
    // The 500-worker regime completes far more jobs per wall-clock second,
    // so each event's fixed cost is amortized harder and the budget
    // tightens to 1.05x. Fewer repetitions: the timed windows are ~10x
    // longer, so scheduler noise is already small next to the signal.
    let scale = wal_tax(bench, 500, horizon, scale_reps, &dir);

    // WAL append throughput: pre-generate an exec-style event stream by
    // driving a scheduler (RNG consumed only in suggest), then time pure
    // appends through the default binary-v2 codec.
    use asha::core::telemetry::{Event, EventKind};
    let mut scheduler = make_asha(bench);
    let mut gen_rng = StdRng::seed_from_u64(7);
    let mut events = Vec::with_capacity(rounds * 2);
    let mut seq = 0u64;
    for i in 0..rounds {
        let d = scheduler.suggest(&mut gen_rng);
        events.push(Event {
            seq,
            time: i as f64,
            kind: EventKind::of_decision(&d),
        });
        seq += 1;
        if let Some(job) = d.job() {
            let loss = (i % 997) as f64;
            scheduler.observe(Observation::for_job(&job, loss));
            events.push(Event {
                seq,
                time: i as f64,
                kind: EventKind::JobEnd {
                    trial: job.trial.0,
                    rung: job.rung,
                    resource: job.resource,
                    loss,
                },
            });
            seq += 1;
        }
    }
    let wal_path = dir.join("append.wal");
    let start = Instant::now();
    let mut writer = WalWriter::create(&wal_path, Durability::EveryN(64), StoreFormat::default())
        .expect("wal create");
    for event in &events {
        writer
            .append(&WalRecord::telemetry(*event))
            .expect("wal append");
    }
    writer.sync().expect("wal sync");
    drop(writer);
    let append_secs = start.elapsed().as_secs_f64();
    let append_per_sec = events.len() as f64 / append_secs.max(1e-9);

    // Replay speed: a fresh scheduler + same-seed RNG re-derives every
    // decision in the log, with match assertions on.
    let contents = read_wal(&wal_path).expect("wal read");
    let mut replay_sched = StoredScheduler::Asha(Asha::new(
        bench.space().clone(),
        AshaConfig::new(1.0, R, ETA),
    ));
    let mut replay_rng = StdRng::seed_from_u64(7);
    let start = Instant::now();
    let replayed =
        replay_scheduler(&mut replay_sched, &mut replay_rng, &contents.records, 0).expect("replay");
    let replay_secs = start.elapsed().as_secs_f64();
    let replay_per_sec = replayed as f64 / replay_secs.max(1e-9);

    // Full-snapshot write latency for the mid-run scheduler state (encode
    // + tmp write + fsync + rename + directory fsync, binary codec).
    let snap = Snapshot {
        seq: 0,
        events: replayed,
        scheduler: replay_sched.export_state(),
        sampler: None,
        rng: replay_rng.state(),
        sim: None,
    };
    let snap_dir = dir.join("snaps");
    std::fs::create_dir_all(&snap_dir).expect("snap dir");
    let iters = 5;
    let start = Instant::now();
    let mut snap_written = (snap_dir.clone(), 0u64);
    for _ in 0..iters {
        snap_written = snap
            .write(&snap_dir, StoreFormat::BinaryV2)
            .expect("snapshot write");
    }
    let snap_ms = start.elapsed().as_secs_f64() * 1000.0 / iters as f64;
    let snap_bytes = snap_written.1;

    // Delta-snapshot write latency: advance the same scheduler a few
    // hundred rounds — the state drift between two adjacent checkpoints of
    // a live run — then time diff-against-base + delta write. This is the
    // steady-state checkpoint price under a delta chain.
    let base_doc = snap.to_json();
    let mut extra_events = 0u64;
    for i in 0..500 {
        let d = replay_sched.suggest(&mut replay_rng);
        extra_events += 1;
        if let Some(job) = d.job() {
            replay_sched.observe(Observation::for_job(&job, (i % 991) as f64));
            extra_events += 1;
        }
    }
    let next = Snapshot {
        seq: 0,
        events: replayed + extra_events,
        scheduler: replay_sched.export_state(),
        sampler: None,
        rng: replay_rng.state(),
        sim: None,
    };
    let next_doc = next.to_json();
    let start = Instant::now();
    let mut delta_written = (snap_dir.clone(), 0u64);
    for _ in 0..iters {
        let doc = DeltaDoc {
            snap: 0,
            delta: 1,
            events: next.events,
            patch: asha::store::delta::diff(&base_doc, &next_doc),
        };
        delta_written = doc
            .write(&snap_dir, StoreFormat::BinaryV2)
            .expect("delta write");
    }
    let delta_ms = start.elapsed().as_secs_f64() * 1000.0 / iters as f64;
    let delta_bytes = delta_written.1;

    // Group commit: several WALs committing concurrently behind one
    // pipeline. Each writer's EveryN cadence files an asynchronous
    // durability request; the pipeline coalesces every request landing
    // inside one commit window into a single fsync per file, so the
    // request:fsync ratio is the amortization factor an N-experiment
    // supervisor gets over per-writer fsyncs.
    let pipeline = CommitPipeline::new(std::time::Duration::from_millis(2));
    let group_wals = 4usize;
    let mut writers: Vec<WalWriter> = (0..group_wals)
        .map(|w| {
            let mut writer = WalWriter::create(
                &dir.join(format!("group-{w}.wal")),
                Durability::EveryN(8),
                StoreFormat::BinaryV2,
            )
            .expect("group wal create");
            let handle = pipeline
                .register(writer.file_clone().expect("wal fd dup"))
                .expect("pipeline register");
            writer.set_group_commit(handle);
            writer
        })
        .collect();
    for (i, event) in events.iter().enumerate() {
        writers[i % group_wals]
            .append(&WalRecord::telemetry(*event))
            .expect("group append");
    }
    for writer in &mut writers {
        writer.sync().expect("group sync");
    }
    drop(writers);
    let group_requests = pipeline.requests();
    let group_fsyncs = pipeline.fsyncs_issued().max(1);
    let amortization = group_requests as f64 / group_fsyncs as f64;
    drop(pipeline);
    std::fs::remove_dir_all(&dir).ok();

    println!(
        "  persistence {:>3} workers to job {}: log-at-end {:>7.3}s, wal-on {:>7.3}s ({:>5.2}x, budget 1.10x)",
        workers, tax.checkpoint, tax.off_secs, tax.on_secs, tax.ratio
    );
    println!(
        "  persistence 500 workers to job {}: log-at-end {:>7.3}s, wal-on {:>7.3}s ({:>5.2}x, budget 1.05x)",
        scale.checkpoint, scale.off_secs, scale.on_secs, scale.ratio
    );
    println!(
        "  persistence wal append: {:>8} events in {append_secs:>7.3}s = {append_per_sec:>12.0} events/s ({})",
        events.len(),
        StoreFormat::default().name()
    );
    println!(
        "  persistence replay:     {replayed:>8} events in {replay_secs:>7.3}s = {replay_per_sec:>12.0} events/s"
    );
    println!(
        "  persistence snapshot:   full {snap_ms:>7.3} ms ({snap_bytes} B), delta {delta_ms:>7.3} ms ({delta_bytes} B), budget 100 ms"
    );
    println!(
        "  persistence group commit: {group_requests} requests -> {group_fsyncs} fsyncs = {amortization:.1}x amortization ({group_wals} WALs, 2 ms window)"
    );
    JsonValue::obj([
        ("workers", JsonValue::Int(workers as u64)),
        ("horizon", JsonValue::Num(horizon)),
        (
            "wal_format",
            JsonValue::Str(StoreFormat::default().name().to_owned()),
        ),
        ("jobs_completed", JsonValue::Int(tax.jobs as u64)),
        ("checkpoint_jobs", JsonValue::Int(tax.checkpoint as u64)),
        ("overhead_sync_policy", JsonValue::Str("flush".to_owned())),
        ("log_at_end_secs", JsonValue::Num(tax.off_secs)),
        ("wal_on_secs", JsonValue::Num(tax.on_secs)),
        ("wal_overhead_ratio", JsonValue::Num(tax.ratio)),
        ("wal_overhead_budget", JsonValue::Num(1.10)),
        ("wal_events_appended", JsonValue::Int(events.len() as u64)),
        ("wal_append_events_per_sec", JsonValue::Num(append_per_sec)),
        ("replay_events", JsonValue::Int(replayed)),
        ("replay_events_per_sec", JsonValue::Num(replay_per_sec)),
        ("snapshot_write_ms", JsonValue::Num(snap_ms)),
        ("snapshot_bytes", JsonValue::Int(snap_bytes)),
        ("snapshot_delta_write_ms", JsonValue::Num(delta_ms)),
        ("snapshot_delta_bytes", JsonValue::Int(delta_bytes)),
        ("snapshot_budget_ms", JsonValue::Num(100.0)),
        ("group_commit_window_ms", JsonValue::Num(2.0)),
        ("group_commit_wals", JsonValue::Int(group_wals as u64)),
        ("group_commit_requests", JsonValue::Int(group_requests)),
        ("group_commit_fsyncs", JsonValue::Int(group_fsyncs)),
        ("group_commit_amortization", JsonValue::Num(amortization)),
        (
            "at_scale",
            JsonValue::obj([
                ("workers", JsonValue::Int(500)),
                ("jobs_completed", JsonValue::Int(scale.jobs as u64)),
                ("checkpoint_jobs", JsonValue::Int(scale.checkpoint as u64)),
                ("log_at_end_secs", JsonValue::Num(scale.off_secs)),
                ("wal_on_secs", JsonValue::Num(scale.on_secs)),
                ("wal_overhead_ratio", JsonValue::Num(scale.ratio)),
                ("wal_overhead_budget", JsonValue::Num(1.05)),
            ]),
        ),
    ])
}

fn make_asha(bench: &dyn BenchmarkModel) -> Asha {
    Asha::new(bench.space().clone(), AshaConfig::new(1.0, R, ETA))
}

fn sweep_methods(space: &SearchSpace) -> Vec<MethodSpec> {
    let s1 = space.clone();
    let s2 = space.clone();
    let s3 = space.clone();
    vec![
        MethodSpec::new("ASHA", move || {
            Asha::new(s1.clone(), AshaConfig::new(1.0, R, ETA))
        }),
        MethodSpec::new("SHA", move || {
            SyncSha::new(s2.clone(), ShaConfig::new(256, 1.0, R, ETA).growing())
        }),
        MethodSpec::new("AsyncHB", move || {
            AsyncHyperband::new(
                s3.clone(),
                HyperbandConfig::new(1.0, R, ETA).with_brackets(4),
            )
        }),
    ]
}

/// Sequential vs parallel runner on a multi-method sweep, with an output
/// equality check so a wrong-but-fast parallel path can never post a number.
fn sweep_speedup(bench: &dyn BenchmarkModel, cfg: &ExperimentConfig, threads: usize) -> JsonValue {
    let start = Instant::now();
    let sequential = run_experiment(bench, &sweep_methods(bench.space()), cfg);
    let seq_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let parallel = run_experiment_parallel(bench, &sweep_methods(bench.space()), cfg, threads);
    let par_secs = start.elapsed().as_secs_f64();

    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(
            s.aggregate.mean, p.aggregate.mean,
            "parallel runner diverged on {}",
            s.name
        );
        assert_eq!(
            s.mean_jobs, p.mean_jobs,
            "parallel runner diverged on {}",
            s.name
        );
    }
    let resolved = asha_bench::ParallelRunner::new(threads).threads();
    let speedup = seq_secs / par_secs.max(1e-9);
    println!(
        "  sweep {} methods x {} trials, {} workers: sequential {seq_secs:.3}s, parallel({resolved} threads) {par_secs:.3}s = {speedup:.2}x",
        sequential.len(),
        cfg.trials,
        cfg.workers
    );
    JsonValue::obj([
        ("methods", JsonValue::Int(sequential.len() as u64)),
        ("trials", JsonValue::Int(cfg.trials as u64)),
        ("workers", JsonValue::Int(cfg.workers as u64)),
        ("horizon", JsonValue::Num(cfg.horizon)),
        ("threads", JsonValue::Int(resolved as u64)),
        ("sequential_secs", JsonValue::Num(seq_secs)),
        ("parallel_secs", JsonValue::Num(par_secs)),
        ("speedup", JsonValue::Num(speedup)),
        ("outputs_identical", JsonValue::Bool(true)),
    ])
}

fn main() {
    let opts = parse_opts();
    let bench = presets::cifar10_cuda_convnet(presets::DEFAULT_SURFACE_SEED);
    println!(
        "perf_baseline ({}) on {}...",
        if opts.smoke { "smoke" } else { "full" },
        bench.name()
    );

    // Simulator event-loop throughput at the paper's two worker regimes.
    let horizon = if opts.smoke { 60.0 } else { 600.0 };
    let mut sim_rows = Vec::new();
    for &workers in &[25usize, 500] {
        for &mode in &[TraceMode::Full, TraceMode::IncumbentOnly] {
            sim_rows.push(sim_throughput(&bench, workers, horizon, mode));
        }
    }
    // The paper's extreme-scale regime (Section 4.4 tunes with thousands of
    // workers): incumbent-only tracing, since nobody keeps a full per-job
    // trace at this size. Long full-mode horizons hit the 5M job cap, which
    // is fine — events/s is computed over completed jobs either way.
    sim_rows.push(sim_throughput(
        &bench,
        5000,
        horizon,
        TraceMode::IncumbentOnly,
    ));

    // Scheduler round-trip throughput (the `suggest` promotion scan is the
    // algorithmic hot path; see asha-core::rung).
    let rounds = if opts.smoke { 20_000 } else { 200_000 };
    let space = bench.space().clone();
    let scheduler_rows = vec![
        scheduler_throughput(
            "ASHA",
            Box::new(Asha::new(space.clone(), AshaConfig::new(1.0, R, ETA))),
            rounds,
        ),
        scheduler_throughput(
            "SyncSHA",
            Box::new(SyncSha::new(
                space.clone(),
                ShaConfig::new(256, 1.0, R, ETA).growing(),
            )),
            rounds,
        ),
        scheduler_throughput(
            "AsyncHyperband",
            Box::new(AsyncHyperband::new(
                space.clone(),
                HyperbandConfig::new(1.0, R, ETA).with_brackets(4),
            )),
            rounds,
        ),
        scheduler_throughput(
            "D-ASHA",
            Box::new(DAsha::new(space.clone(), AshaConfig::new(1.0, R, ETA))),
            rounds,
        ),
        // Model-on row: TPE reads every observation it has recorded on each
        // non-random proposal, so suggests/s falls as the run grows — this
        // row prices that tax at a fixed (smaller) round count. The random
        // rows above are the regression-gated hot path; this one is a
        // trajectory of model cost, not a floor.
        scheduler_throughput(
            "ASHA+TPE",
            Box::new(bohb_asha(space.clone(), AshaConfig::new(1.0, R, ETA))),
            rounds / 20,
        ),
    ];

    // Telemetry on/off throughput delta at the small-cluster regime.
    let telemetry = telemetry_overhead(&bench, 25, horizon);

    // Durable-store tax at the same regime.
    let persistence = persistence(&bench, 25, horizon, rounds, if opts.smoke { 2 } else { 3 });

    // Parallel sweep speedup at 1 thread (the no-parallelism sanity row)
    // and at a multi-core count, so the report always shows both ends of
    // the runner's scaling. `--threads` adds a third, user-chosen row.
    let cfg = if opts.smoke {
        ExperimentConfig::new(25, 30.0, 2, 0.65)
    } else {
        ExperimentConfig::new(25, 150.0, 8, 0.65)
    };
    let mut thread_counts = vec![1usize, 4];
    if opts.threads > 0 && !thread_counts.contains(&opts.threads) {
        thread_counts.push(opts.threads);
    }
    let sweep_rows: Vec<JsonValue> = thread_counts
        .iter()
        .map(|&threads| sweep_speedup(&bench, &cfg, threads))
        .collect();

    let report = JsonValue::obj([
        ("schema", JsonValue::Str("asha-perf-baseline-v2".to_owned())),
        (
            "mode",
            JsonValue::Str(if opts.smoke { "smoke" } else { "full" }.to_owned()),
        ),
        ("benchmark", JsonValue::Str(bench.name().to_owned())),
        ("sim", JsonValue::Arr(sim_rows)),
        ("scheduler", JsonValue::Arr(scheduler_rows)),
        ("telemetry", telemetry),
        ("persistence", persistence),
        ("sweep", JsonValue::Arr(sweep_rows)),
    ]);
    match asha::metrics::write_json(&opts.out, &report) {
        Ok(()) => println!("wrote {}", opts.out),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

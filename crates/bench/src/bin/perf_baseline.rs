//! Perf baseline: measures the two hot paths every large-scale experiment
//! leans on — simulator event throughput and scheduler suggest+observe
//! throughput — plus the parallel-runner speedup on a multi-method sweep,
//! and writes the numbers to `BENCH_sim.json` so the perf trajectory is
//! recorded PR over PR.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p asha-bench --bin perf_baseline            # full
//! cargo run --release -p asha-bench --bin perf_baseline -- --smoke # CI-sized
//!     [--threads N]    worker threads for the parallel sweep (0 = all cores)
//!     [--out PATH]     output path (default BENCH_sim.json)
//! ```
//!
//! Numbers are wall-clock on whatever machine runs the binary; treat them as
//! a trajectory (same-machine ratios PR over PR), not absolute truth.

use std::time::Instant;

use asha_bench::{
    run_experiment, run_experiment_parallel, threads_from_args, ExperimentConfig, MethodSpec,
};
use asha_core::{
    Asha, AshaConfig, AsyncHyperband, HyperbandConfig, Observation, Scheduler, ShaConfig, SyncSha,
};
use asha_metrics::JsonValue;
use asha_sim::{ClusterSim, SimConfig, TraceMode};
use asha_space::SearchSpace;
use asha_surrogate::{presets, BenchmarkModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

const R: f64 = 256.0;
const ETA: f64 = 4.0;

struct Opts {
    smoke: bool,
    threads: usize,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        smoke: false,
        threads: threads_from_args(),
        out: "BENCH_sim.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                if let Some(path) = args.next() {
                    opts.out = path;
                }
            }
            _ => {}
        }
    }
    opts
}

/// Simulator throughput: completed jobs per wall-clock second for one ASHA
/// run at the given scale and trace mode.
fn sim_throughput(
    bench: &dyn BenchmarkModel,
    workers: usize,
    horizon: f64,
    mode: TraceMode,
) -> JsonValue {
    let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, R, ETA));
    let sim = ClusterSim::new(SimConfig::new(workers, horizon).with_trace_mode(mode));
    let mut rng = StdRng::seed_from_u64(0);
    let start = Instant::now();
    let result = sim.run(asha, bench, &mut rng);
    let secs = start.elapsed().as_secs_f64();
    let events_per_sec = result.jobs_completed as f64 / secs.max(1e-9);
    let mode_name = match mode {
        TraceMode::Full => "full",
        TraceMode::IncumbentOnly => "incumbent_only",
        TraceMode::Aggregated => "aggregated",
    };
    println!(
        "  sim {workers:>3} workers, trace {mode_name:<14}: {:>9} jobs in {secs:>7.3}s = {events_per_sec:>12.0} events/s",
        result.jobs_completed
    );
    JsonValue::obj([
        ("workers", JsonValue::Int(workers as u64)),
        ("trace_mode", JsonValue::Str(mode_name.to_owned())),
        ("horizon", JsonValue::Num(horizon)),
        (
            "jobs_completed",
            JsonValue::Int(result.jobs_completed as u64),
        ),
        ("trace_events", JsonValue::Int(result.trace.len() as u64)),
        ("wall_secs", JsonValue::Num(secs)),
        ("events_per_sec", JsonValue::Num(events_per_sec)),
    ])
}

/// Scheduler throughput: suggest+observe round trips per second against a
/// synthetic loss stream (no simulator in the loop).
fn scheduler_throughput(name: &str, mut scheduler: Box<dyn Scheduler>, rounds: usize) -> JsonValue {
    let mut rng = StdRng::seed_from_u64(1);
    let start = Instant::now();
    let mut issued = 0usize;
    for i in 0..rounds {
        let Some(job) = scheduler.suggest(&mut rng).job() else {
            break;
        };
        scheduler.observe(Observation::for_job(&job, (i % 997) as f64));
        issued += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    let per_sec = issued as f64 / secs.max(1e-9);
    println!(
        "  scheduler {name:<16}: {issued:>8} round trips in {secs:>7.3}s = {per_sec:>12.0} suggests/s"
    );
    JsonValue::obj([
        ("name", JsonValue::Str(name.to_owned())),
        ("round_trips", JsonValue::Int(issued as u64)),
        ("wall_secs", JsonValue::Num(secs)),
        ("suggests_per_sec", JsonValue::Num(per_sec)),
    ])
}

/// Telemetry overhead: the same 25-worker Full-mode simulation with
/// recording off vs on. The two runs must complete identical job counts —
/// recording never consumes randomness — and the delta is the full price of
/// structured telemetry (event construction + JSONL-able buffering + online
/// metrics), reported as events logged per second and a wall-clock ratio.
fn telemetry_overhead(bench: &dyn BenchmarkModel, workers: usize, horizon: f64) -> JsonValue {
    let make = || Asha::new(bench.space().clone(), AshaConfig::new(1.0, R, ETA));
    let sim = ClusterSim::new(SimConfig::new(workers, horizon));

    let mut rng = StdRng::seed_from_u64(0);
    let start = Instant::now();
    let off = sim.run(make(), bench, &mut rng);
    let off_secs = start.elapsed().as_secs_f64();

    let mut rng = StdRng::seed_from_u64(0);
    let mut recorder = asha_obs::RunRecorder::new();
    let start = Instant::now();
    let on = sim.run_recorded(make(), bench, &mut rng, &mut recorder);
    let on_secs = start.elapsed().as_secs_f64();

    assert_eq!(
        off.jobs_completed, on.jobs_completed,
        "recording must not perturb the run"
    );
    let events_per_sec = recorder.len() as f64 / on_secs.max(1e-9);
    let overhead = on_secs / off_secs.max(1e-9);
    println!(
        "  telemetry {workers:>3} workers: off {off_secs:>7.3}s, on {on_secs:>7.3}s ({overhead:>5.2}x), {:>9} events = {events_per_sec:>12.0} events logged/s",
        recorder.len()
    );
    JsonValue::obj([
        ("workers", JsonValue::Int(workers as u64)),
        ("horizon", JsonValue::Num(horizon)),
        ("jobs_completed", JsonValue::Int(on.jobs_completed as u64)),
        ("events_logged", JsonValue::Int(recorder.len() as u64)),
        ("off_secs", JsonValue::Num(off_secs)),
        ("on_secs", JsonValue::Num(on_secs)),
        ("events_logged_per_sec", JsonValue::Num(events_per_sec)),
        ("overhead_ratio", JsonValue::Num(overhead)),
    ])
}

fn sweep_methods(space: &SearchSpace) -> Vec<MethodSpec> {
    let s1 = space.clone();
    let s2 = space.clone();
    let s3 = space.clone();
    vec![
        MethodSpec::new("ASHA", move || {
            Asha::new(s1.clone(), AshaConfig::new(1.0, R, ETA))
        }),
        MethodSpec::new("SHA", move || {
            SyncSha::new(s2.clone(), ShaConfig::new(256, 1.0, R, ETA).growing())
        }),
        MethodSpec::new("AsyncHB", move || {
            AsyncHyperband::new(
                s3.clone(),
                HyperbandConfig::new(1.0, R, ETA).with_brackets(4),
            )
        }),
    ]
}

/// Sequential vs parallel runner on a multi-method sweep, with an output
/// equality check so a wrong-but-fast parallel path can never post a number.
fn sweep_speedup(bench: &dyn BenchmarkModel, cfg: &ExperimentConfig, threads: usize) -> JsonValue {
    let start = Instant::now();
    let sequential = run_experiment(bench, &sweep_methods(bench.space()), cfg);
    let seq_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let parallel = run_experiment_parallel(bench, &sweep_methods(bench.space()), cfg, threads);
    let par_secs = start.elapsed().as_secs_f64();

    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(
            s.aggregate.mean, p.aggregate.mean,
            "parallel runner diverged on {}",
            s.name
        );
        assert_eq!(
            s.mean_jobs, p.mean_jobs,
            "parallel runner diverged on {}",
            s.name
        );
    }
    let resolved = asha_bench::ParallelRunner::new(threads).threads();
    let speedup = seq_secs / par_secs.max(1e-9);
    println!(
        "  sweep {} methods x {} trials, {} workers: sequential {seq_secs:.3}s, parallel({resolved} threads) {par_secs:.3}s = {speedup:.2}x",
        sequential.len(),
        cfg.trials,
        cfg.workers
    );
    JsonValue::obj([
        ("methods", JsonValue::Int(sequential.len() as u64)),
        ("trials", JsonValue::Int(cfg.trials as u64)),
        ("workers", JsonValue::Int(cfg.workers as u64)),
        ("horizon", JsonValue::Num(cfg.horizon)),
        ("threads", JsonValue::Int(resolved as u64)),
        ("sequential_secs", JsonValue::Num(seq_secs)),
        ("parallel_secs", JsonValue::Num(par_secs)),
        ("speedup", JsonValue::Num(speedup)),
        ("outputs_identical", JsonValue::Bool(true)),
    ])
}

fn main() {
    let opts = parse_opts();
    let bench = presets::cifar10_cuda_convnet(presets::DEFAULT_SURFACE_SEED);
    println!(
        "perf_baseline ({}) on {}...",
        if opts.smoke { "smoke" } else { "full" },
        bench.name()
    );

    // Simulator event-loop throughput at the paper's two worker regimes.
    let horizon = if opts.smoke { 60.0 } else { 600.0 };
    let mut sim_rows = Vec::new();
    for &workers in &[25usize, 500] {
        for &mode in &[TraceMode::Full, TraceMode::IncumbentOnly] {
            sim_rows.push(sim_throughput(&bench, workers, horizon, mode));
        }
    }

    // Scheduler round-trip throughput (the `suggest` promotion scan is the
    // algorithmic hot path; see asha-core::rung).
    let rounds = if opts.smoke { 20_000 } else { 200_000 };
    let space = bench.space().clone();
    let scheduler_rows = vec![
        scheduler_throughput(
            "ASHA",
            Box::new(Asha::new(space.clone(), AshaConfig::new(1.0, R, ETA))),
            rounds,
        ),
        scheduler_throughput(
            "SyncSHA",
            Box::new(SyncSha::new(
                space.clone(),
                ShaConfig::new(256, 1.0, R, ETA).growing(),
            )),
            rounds,
        ),
        scheduler_throughput(
            "AsyncHyperband",
            Box::new(AsyncHyperband::new(
                space.clone(),
                HyperbandConfig::new(1.0, R, ETA).with_brackets(4),
            )),
            rounds,
        ),
    ];

    // Telemetry on/off throughput delta at the small-cluster regime.
    let telemetry = telemetry_overhead(&bench, 25, horizon);

    // Parallel sweep speedup.
    let cfg = if opts.smoke {
        ExperimentConfig::new(25, 30.0, 2, 0.65)
    } else {
        ExperimentConfig::new(25, 150.0, 8, 0.65)
    };
    let sweep = sweep_speedup(&bench, &cfg, opts.threads);

    let report = JsonValue::obj([
        ("schema", JsonValue::Str("asha-perf-baseline-v1".to_owned())),
        (
            "mode",
            JsonValue::Str(if opts.smoke { "smoke" } else { "full" }.to_owned()),
        ),
        ("benchmark", JsonValue::Str(bench.name().to_owned())),
        ("sim", JsonValue::Arr(sim_rows)),
        ("scheduler", JsonValue::Arr(scheduler_rows)),
        ("telemetry", telemetry),
        ("sweep", sweep),
    ]);
    match asha_metrics::write_json(&opts.out, &report) {
        Ok(()) => println!("wrote {}", opts.out),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

//! Perf baseline: measures the two hot paths every large-scale experiment
//! leans on — simulator event throughput and scheduler suggest+observe
//! throughput — plus the parallel-runner speedup on a multi-method sweep,
//! and writes the numbers to `BENCH_sim.json` so the perf trajectory is
//! recorded PR over PR.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p asha-bench --bin perf_baseline            # full
//! cargo run --release -p asha-bench --bin perf_baseline -- --smoke # CI-sized
//!     --quick          alias for --smoke
//!     [--threads N]    extra thread count for the parallel sweep rows
//!     [--out PATH]     output path (default BENCH_sim.json)
//! ```
//!
//! Numbers are wall-clock on whatever machine runs the binary; treat them as
//! a trajectory (same-machine ratios PR over PR), not absolute truth.

use std::time::Instant;

use asha::baselines::bohb_asha;
use asha::core::{
    Asha, AshaConfig, AsyncHyperband, DAsha, HyperbandConfig, Observation, Scheduler, ShaConfig,
    SyncSha,
};
use asha::metrics::JsonValue;
use asha::sim::{ClusterSim, SimConfig, TraceMode};
use asha::space::SearchSpace;
use asha::store::{
    read_wal, replay_scheduler, BenchSpec, DurableRun, ExperimentMeta, RunOptions, SchedulerState,
    Snapshot, StoredScheduler, SyncPolicy, WalWriter,
};
use asha::surrogate::{presets, BenchmarkModel};
use asha_bench::{
    run_experiment, run_experiment_parallel, threads_from_args, ExperimentConfig, MethodSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const R: f64 = 256.0;
const ETA: f64 = 4.0;

struct Opts {
    smoke: bool,
    threads: usize,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        smoke: false,
        threads: threads_from_args(),
        out: "BENCH_sim.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" | "--quick" => opts.smoke = true,
            "--out" => {
                if let Some(path) = args.next() {
                    opts.out = path;
                }
            }
            _ => {}
        }
    }
    opts
}

/// Simulator throughput: completed jobs per wall-clock second for one ASHA
/// run at the given scale and trace mode.
fn sim_throughput(
    bench: &dyn BenchmarkModel,
    workers: usize,
    horizon: f64,
    mode: TraceMode,
) -> JsonValue {
    let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, R, ETA));
    let sim = ClusterSim::new(SimConfig::new(workers, horizon).with_trace_mode(mode));
    let mut rng = StdRng::seed_from_u64(0);
    let start = Instant::now();
    let result = sim.run(asha, bench, &mut rng);
    let secs = start.elapsed().as_secs_f64();
    let events_per_sec = result.jobs_completed as f64 / secs.max(1e-9);
    let mode_name = match mode {
        TraceMode::Full => "full",
        TraceMode::IncumbentOnly => "incumbent_only",
        TraceMode::Aggregated => "aggregated",
    };
    println!(
        "  sim {workers:>3} workers, trace {mode_name:<14}: {:>9} jobs in {secs:>7.3}s = {events_per_sec:>12.0} events/s",
        result.jobs_completed
    );
    JsonValue::obj([
        ("workers", JsonValue::Int(workers as u64)),
        ("trace_mode", JsonValue::Str(mode_name.to_owned())),
        ("horizon", JsonValue::Num(horizon)),
        (
            "jobs_completed",
            JsonValue::Int(result.jobs_completed as u64),
        ),
        ("trace_events", JsonValue::Int(result.trace.len() as u64)),
        ("wall_secs", JsonValue::Num(secs)),
        ("events_per_sec", JsonValue::Num(events_per_sec)),
    ])
}

/// Scheduler throughput: suggest+observe round trips per second against a
/// synthetic loss stream (no simulator in the loop).
fn scheduler_throughput(name: &str, mut scheduler: Box<dyn Scheduler>, rounds: usize) -> JsonValue {
    let mut rng = StdRng::seed_from_u64(1);
    let start = Instant::now();
    let mut issued = 0usize;
    for i in 0..rounds {
        let Some(job) = scheduler.suggest(&mut rng).job() else {
            break;
        };
        scheduler.observe(Observation::for_job(&job, (i % 997) as f64));
        issued += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    let per_sec = issued as f64 / secs.max(1e-9);
    println!(
        "  scheduler {name:<16}: {issued:>8} round trips in {secs:>7.3}s = {per_sec:>12.0} suggests/s"
    );
    JsonValue::obj([
        ("name", JsonValue::Str(name.to_owned())),
        ("round_trips", JsonValue::Int(issued as u64)),
        ("wall_secs", JsonValue::Num(secs)),
        ("suggests_per_sec", JsonValue::Num(per_sec)),
    ])
}

/// Telemetry overhead: the same 25-worker Full-mode simulation with
/// recording off vs on. The two runs must complete identical job counts —
/// recording never consumes randomness — and the delta is the full price of
/// structured telemetry (event construction + JSONL-able buffering + online
/// metrics), reported as events logged per second and a wall-clock ratio.
fn telemetry_overhead(bench: &dyn BenchmarkModel, workers: usize, horizon: f64) -> JsonValue {
    let make = || Asha::new(bench.space().clone(), AshaConfig::new(1.0, R, ETA));
    let sim = ClusterSim::new(SimConfig::new(workers, horizon));

    let mut rng = StdRng::seed_from_u64(0);
    let start = Instant::now();
    let off = sim.run(make(), bench, &mut rng);
    let off_secs = start.elapsed().as_secs_f64();

    let mut rng = StdRng::seed_from_u64(0);
    let mut recorder = asha::obs::RunRecorder::new();
    let start = Instant::now();
    let on = sim.run_recorded(make(), bench, &mut rng, &mut recorder);
    let on_secs = start.elapsed().as_secs_f64();

    assert_eq!(
        off.jobs_completed, on.jobs_completed,
        "recording must not perturb the run"
    );
    let events_per_sec = recorder.len() as f64 / on_secs.max(1e-9);
    let overhead = on_secs / off_secs.max(1e-9);
    println!(
        "  telemetry {workers:>3} workers: off {off_secs:>7.3}s, on {on_secs:>7.3}s ({overhead:>5.2}x), {:>9} events = {events_per_sec:>12.0} events logged/s",
        recorder.len()
    );
    JsonValue::obj([
        ("workers", JsonValue::Int(workers as u64)),
        ("horizon", JsonValue::Num(horizon)),
        ("jobs_completed", JsonValue::Int(on.jobs_completed as u64)),
        ("events_logged", JsonValue::Int(recorder.len() as u64)),
        ("off_secs", JsonValue::Num(off_secs)),
        ("on_secs", JsonValue::Num(on_secs)),
        ("events_logged_per_sec", JsonValue::Num(events_per_sec)),
        ("overhead_ratio", JsonValue::Num(overhead)),
    ])
}

/// Persistence tax: the same 25-worker simulation with telemetry logged
/// the pre-store way (in-memory recorder, one bulk JSONL write at the end
/// — lost entirely if the process dies first) vs streamed through the
/// durable store's WAL as each event happens. Both runs are timed to the
/// same mid-run job checkpoint with all telemetry pushed to the OS, then
/// finish untimed and must complete identical job counts (persistence
/// never consumes randomness). The ratio isolates the WAL streaming tax —
/// the budget is 1.10x at this scale; fsync cadence and snapshot costs are
/// deliberately excluded here and measured separately below (WAL append
/// throughput under `EveryN(64)`, snapshot write latency), since both are
/// one-knob cadence choices whose total cost is `cadence x unit price`.
fn persistence(
    bench: &dyn BenchmarkModel,
    workers: usize,
    horizon: f64,
    rounds: usize,
) -> JsonValue {
    let dir = std::env::temp_dir().join(format!("asha-perf-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("perf tmp dir");
    let make = || Asha::new(bench.space().clone(), AshaConfig::new(1.0, R, ETA));
    // The timed windows below need enough work to rise above scheduler
    // noise, so this row never runs shorter than horizon 240 even in smoke
    // mode (the row costs well under a second either way).
    let horizon = horizon.max(240.0);
    let sim_cfg = SimConfig::new(workers, horizon);
    let opts = RunOptions {
        sync: SyncPolicy::Never,
        snapshot_jobs: usize::MAX / 2,
    };

    // Untimed scout run to learn the total job count, so the timed window
    // below can stop at a checkpoint strictly inside the run (the final
    // snapshot at completion is a separately-metered cost, not WAL tax).
    let sim = ClusterSim::new(sim_cfg.clone());
    let mut rng = StdRng::seed_from_u64(0);
    let total_jobs = sim.run(make(), bench, &mut rng).jobs_completed;
    let checkpoint = total_jobs * 9 / 10;

    let meta = ExperimentMeta {
        name: "perf-baseline".to_owned(),
        space: bench.space().clone(),
        initial: SchedulerState::Asha(make().export_state()),
        sampler: None,
        seed: 0,
        sim: sim_cfg.clone(),
        bench: BenchSpec {
            preset: "cifar10_cuda_convnet".to_owned(),
            seed: presets::DEFAULT_SURFACE_SEED,
        },
    };

    // The timed windows are tens of milliseconds, so a single pair is at
    // the mercy of scheduler noise: interleave several repetitions of each
    // side and compare the per-side minima. Experiment creation (meta
    // write + first snapshot, a handful of fsyncs) happens outside the
    // timed window — it is a per-experiment constant, not part of the
    // per-event tax.
    let reps = 7;
    let mut off_samples = Vec::with_capacity(reps);
    let mut on_samples = Vec::with_capacity(reps);
    let mut off_jobs = 0usize;
    let mut on_jobs = 0usize;
    for rep in 0..reps {
        // Baseline: record in memory while the engine runs, bulk-write the
        // JSONL log when the checkpoint is reached.
        let mut engine =
            asha::sim::SimEngine::new(sim_cfg.clone(), StoredScheduler::Asha(make()), bench);
        let mut rng = StdRng::seed_from_u64(0);
        let mut recorder = asha::obs::RunRecorder::new();
        let start = Instant::now();
        while engine.jobs_completed() < checkpoint && engine.step(&mut rng, &mut recorder) {}
        recorder
            .write_jsonl(dir.join("baseline.jsonl"))
            .expect("baseline log write");
        off_samples.push(start.elapsed().as_secs_f64());
        while engine.step(&mut rng, &mut recorder) {}
        off_jobs = engine.jobs_completed();

        // Same engine, same seed, but every event streams through the
        // durable store's WAL as it happens: kill the process anywhere in
        // this window and the run recovers.
        let run_dir = dir.join(format!("run-{rep}"));
        let mut run = DurableRun::create(&run_dir, &meta, bench, opts).expect("store create");
        let start = Instant::now();
        let live = run.run_until_jobs(checkpoint).expect("durable run");
        run.flush().expect("wal flush");
        on_samples.push(start.elapsed().as_secs_f64());
        assert!(live, "checkpoint must land strictly mid-run");
        let on = run.run_to_completion().expect("durable finish");
        on_jobs = on.jobs_completed;
    }
    assert_eq!(off_jobs, on_jobs, "persistence must not perturb the run");
    // Minimum over repetitions: both sides are deterministic CPU-plus-
    // page-cache work, so the fastest observation is the least-noise one.
    let floor = |samples: &[f64]| samples.iter().copied().fold(f64::INFINITY, f64::min);
    let off_secs = floor(&off_samples);
    let on_secs = floor(&on_samples);
    let wal_overhead = on_secs / off_secs.max(1e-9);

    // WAL append throughput: pre-generate an exec-style event stream by
    // driving a scheduler (RNG consumed only in suggest), then time pure
    // appends.
    use asha::core::telemetry::{Event, EventKind};
    let mut scheduler = make();
    let mut gen_rng = StdRng::seed_from_u64(7);
    let mut events = Vec::with_capacity(rounds * 2);
    let mut seq = 0u64;
    for i in 0..rounds {
        let d = scheduler.suggest(&mut gen_rng);
        events.push(Event {
            seq,
            time: i as f64,
            kind: EventKind::of_decision(&d),
        });
        seq += 1;
        if let Some(job) = d.job() {
            let loss = (i % 997) as f64;
            scheduler.observe(Observation::for_job(&job, loss));
            events.push(Event {
                seq,
                time: i as f64,
                kind: EventKind::JobEnd {
                    trial: job.trial.0,
                    rung: job.rung,
                    resource: job.resource,
                    loss,
                },
            });
            seq += 1;
        }
    }
    let wal_path = dir.join("append.jsonl");
    let start = Instant::now();
    let mut writer = WalWriter::create(&wal_path, SyncPolicy::EveryN(64)).expect("wal create");
    for event in &events {
        writer.append_telemetry(event).expect("wal append");
    }
    writer.sync().expect("wal sync");
    drop(writer);
    let append_secs = start.elapsed().as_secs_f64();
    let append_per_sec = events.len() as f64 / append_secs.max(1e-9);

    // Replay speed: a fresh scheduler + same-seed RNG re-derives every
    // decision in the log, with match assertions on.
    let contents = read_wal(&wal_path).expect("wal read");
    let mut replay_sched = StoredScheduler::Asha(Asha::new(
        bench.space().clone(),
        AshaConfig::new(1.0, R, ETA),
    ));
    let mut replay_rng = StdRng::seed_from_u64(7);
    let start = Instant::now();
    let replayed =
        replay_scheduler(&mut replay_sched, &mut replay_rng, &contents.records, 0).expect("replay");
    let replay_secs = start.elapsed().as_secs_f64();
    let replay_per_sec = replayed as f64 / replay_secs.max(1e-9);

    // Snapshot write latency for the full mid-run scheduler state.
    let snap = Snapshot {
        seq: 0,
        events: replayed,
        scheduler: replay_sched.export_state(),
        sampler: None,
        rng: replay_rng.state(),
        sim: None,
    };
    let snap_dir = dir.join("snaps");
    std::fs::create_dir_all(&snap_dir).expect("snap dir");
    let iters = 5;
    let start = Instant::now();
    let mut snap_path = snap_dir.join("unwritten");
    for _ in 0..iters {
        snap_path = snap.write(&snap_dir).expect("snapshot write");
    }
    let snap_ms = start.elapsed().as_secs_f64() * 1000.0 / iters as f64;
    let snap_bytes = std::fs::metadata(&snap_path).map(|m| m.len()).unwrap_or(0);
    std::fs::remove_dir_all(&dir).ok();

    println!(
        "  persistence {workers:>3} workers to job {checkpoint}: log-at-end {off_secs:>7.3}s, wal-on {on_secs:>7.3}s ({wal_overhead:>5.2}x, budget 1.10x)"
    );
    println!(
        "  persistence wal append: {:>8} events in {append_secs:>7.3}s = {append_per_sec:>12.0} events/s",
        events.len()
    );
    println!(
        "  persistence replay:     {replayed:>8} events in {replay_secs:>7.3}s = {replay_per_sec:>12.0} events/s"
    );
    println!(
        "  persistence snapshot:   {snap_ms:>8.3} ms mean write ({snap_bytes} bytes, fsync + rename)"
    );
    JsonValue::obj([
        ("workers", JsonValue::Int(workers as u64)),
        ("horizon", JsonValue::Num(horizon)),
        ("jobs_completed", JsonValue::Int(on_jobs as u64)),
        ("checkpoint_jobs", JsonValue::Int(checkpoint as u64)),
        ("overhead_sync_policy", JsonValue::Str("never".to_owned())),
        ("log_at_end_secs", JsonValue::Num(off_secs)),
        ("wal_on_secs", JsonValue::Num(on_secs)),
        ("wal_overhead_ratio", JsonValue::Num(wal_overhead)),
        ("wal_overhead_budget", JsonValue::Num(1.10)),
        ("wal_events_appended", JsonValue::Int(events.len() as u64)),
        ("wal_append_events_per_sec", JsonValue::Num(append_per_sec)),
        ("replay_events", JsonValue::Int(replayed)),
        ("replay_events_per_sec", JsonValue::Num(replay_per_sec)),
        ("snapshot_write_ms", JsonValue::Num(snap_ms)),
        ("snapshot_bytes", JsonValue::Int(snap_bytes)),
    ])
}

fn sweep_methods(space: &SearchSpace) -> Vec<MethodSpec> {
    let s1 = space.clone();
    let s2 = space.clone();
    let s3 = space.clone();
    vec![
        MethodSpec::new("ASHA", move || {
            Asha::new(s1.clone(), AshaConfig::new(1.0, R, ETA))
        }),
        MethodSpec::new("SHA", move || {
            SyncSha::new(s2.clone(), ShaConfig::new(256, 1.0, R, ETA).growing())
        }),
        MethodSpec::new("AsyncHB", move || {
            AsyncHyperband::new(
                s3.clone(),
                HyperbandConfig::new(1.0, R, ETA).with_brackets(4),
            )
        }),
    ]
}

/// Sequential vs parallel runner on a multi-method sweep, with an output
/// equality check so a wrong-but-fast parallel path can never post a number.
fn sweep_speedup(bench: &dyn BenchmarkModel, cfg: &ExperimentConfig, threads: usize) -> JsonValue {
    let start = Instant::now();
    let sequential = run_experiment(bench, &sweep_methods(bench.space()), cfg);
    let seq_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let parallel = run_experiment_parallel(bench, &sweep_methods(bench.space()), cfg, threads);
    let par_secs = start.elapsed().as_secs_f64();

    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(
            s.aggregate.mean, p.aggregate.mean,
            "parallel runner diverged on {}",
            s.name
        );
        assert_eq!(
            s.mean_jobs, p.mean_jobs,
            "parallel runner diverged on {}",
            s.name
        );
    }
    let resolved = asha_bench::ParallelRunner::new(threads).threads();
    let speedup = seq_secs / par_secs.max(1e-9);
    println!(
        "  sweep {} methods x {} trials, {} workers: sequential {seq_secs:.3}s, parallel({resolved} threads) {par_secs:.3}s = {speedup:.2}x",
        sequential.len(),
        cfg.trials,
        cfg.workers
    );
    JsonValue::obj([
        ("methods", JsonValue::Int(sequential.len() as u64)),
        ("trials", JsonValue::Int(cfg.trials as u64)),
        ("workers", JsonValue::Int(cfg.workers as u64)),
        ("horizon", JsonValue::Num(cfg.horizon)),
        ("threads", JsonValue::Int(resolved as u64)),
        ("sequential_secs", JsonValue::Num(seq_secs)),
        ("parallel_secs", JsonValue::Num(par_secs)),
        ("speedup", JsonValue::Num(speedup)),
        ("outputs_identical", JsonValue::Bool(true)),
    ])
}

fn main() {
    let opts = parse_opts();
    let bench = presets::cifar10_cuda_convnet(presets::DEFAULT_SURFACE_SEED);
    println!(
        "perf_baseline ({}) on {}...",
        if opts.smoke { "smoke" } else { "full" },
        bench.name()
    );

    // Simulator event-loop throughput at the paper's two worker regimes.
    let horizon = if opts.smoke { 60.0 } else { 600.0 };
    let mut sim_rows = Vec::new();
    for &workers in &[25usize, 500] {
        for &mode in &[TraceMode::Full, TraceMode::IncumbentOnly] {
            sim_rows.push(sim_throughput(&bench, workers, horizon, mode));
        }
    }
    // The paper's extreme-scale regime (Section 4.4 tunes with thousands of
    // workers): incumbent-only tracing, since nobody keeps a full per-job
    // trace at this size. Long full-mode horizons hit the 5M job cap, which
    // is fine — events/s is computed over completed jobs either way.
    sim_rows.push(sim_throughput(
        &bench,
        5000,
        horizon,
        TraceMode::IncumbentOnly,
    ));

    // Scheduler round-trip throughput (the `suggest` promotion scan is the
    // algorithmic hot path; see asha-core::rung).
    let rounds = if opts.smoke { 20_000 } else { 200_000 };
    let space = bench.space().clone();
    let scheduler_rows = vec![
        scheduler_throughput(
            "ASHA",
            Box::new(Asha::new(space.clone(), AshaConfig::new(1.0, R, ETA))),
            rounds,
        ),
        scheduler_throughput(
            "SyncSHA",
            Box::new(SyncSha::new(
                space.clone(),
                ShaConfig::new(256, 1.0, R, ETA).growing(),
            )),
            rounds,
        ),
        scheduler_throughput(
            "AsyncHyperband",
            Box::new(AsyncHyperband::new(
                space.clone(),
                HyperbandConfig::new(1.0, R, ETA).with_brackets(4),
            )),
            rounds,
        ),
        scheduler_throughput(
            "D-ASHA",
            Box::new(DAsha::new(space.clone(), AshaConfig::new(1.0, R, ETA))),
            rounds,
        ),
        // Model-on row: TPE reads every observation it has recorded on each
        // non-random proposal, so suggests/s falls as the run grows — this
        // row prices that tax at a fixed (smaller) round count. The random
        // rows above are the regression-gated hot path; this one is a
        // trajectory of model cost, not a floor.
        scheduler_throughput(
            "ASHA+TPE",
            Box::new(bohb_asha(space.clone(), AshaConfig::new(1.0, R, ETA))),
            rounds / 20,
        ),
    ];

    // Telemetry on/off throughput delta at the small-cluster regime.
    let telemetry = telemetry_overhead(&bench, 25, horizon);

    // Durable-store tax at the same regime.
    let persistence = persistence(&bench, 25, horizon, rounds);

    // Parallel sweep speedup at 1 thread (the no-parallelism sanity row)
    // and at a multi-core count, so the report always shows both ends of
    // the runner's scaling. `--threads` adds a third, user-chosen row.
    let cfg = if opts.smoke {
        ExperimentConfig::new(25, 30.0, 2, 0.65)
    } else {
        ExperimentConfig::new(25, 150.0, 8, 0.65)
    };
    let mut thread_counts = vec![1usize, 4];
    if opts.threads > 0 && !thread_counts.contains(&opts.threads) {
        thread_counts.push(opts.threads);
    }
    let sweep_rows: Vec<JsonValue> = thread_counts
        .iter()
        .map(|&threads| sweep_speedup(&bench, &cfg, threads))
        .collect();

    let report = JsonValue::obj([
        ("schema", JsonValue::Str("asha-perf-baseline-v2".to_owned())),
        (
            "mode",
            JsonValue::Str(if opts.smoke { "smoke" } else { "full" }.to_owned()),
        ),
        ("benchmark", JsonValue::Str(bench.name().to_owned())),
        ("sim", JsonValue::Arr(sim_rows)),
        ("scheduler", JsonValue::Arr(scheduler_rows)),
        ("telemetry", telemetry),
        ("persistence", persistence),
        ("sweep", JsonValue::Arr(sweep_rows)),
    ]);
    match asha::metrics::write_json(&opts.out, &report) {
        Ok(()) => println!("wrote {}", opts.out),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

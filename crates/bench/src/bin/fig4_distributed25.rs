//! Figure 4: limited-scale distributed experiments — 25 workers for 150
//! minutes on both CIFAR-10 benchmarks; ASHA vs PBT vs synchronous SHA vs
//! BOHB, 5 trials each.
//!
//! The headline claims reproduced here: ASHA finds a good configuration in
//! roughly the time to train a single model; ~1.5× faster than synchronous
//! SHA/BOHB on benchmark 1; and clearly better on benchmark 2, whose
//! config-dependent training costs (mean ≈ 30 min, std ≈ 27 min) starve the
//! synchronous methods behind stragglers.

use asha::baselines::{bohb, Pbt, PbtConfig};
use asha::core::{Asha, AshaConfig, ShaConfig, SyncSha};
use asha::space::SearchSpace;
use asha::surrogate::{presets, BenchmarkModel, CurveBenchmark};
use asha_bench::{
    print_comparison, print_time_to_reach, run_experiment_parallel, threads_from_args,
    write_results, ExperimentConfig, MethodSpec,
};

const R: f64 = 256.0;
const ETA: f64 = 4.0;

fn methods(space: &SearchSpace) -> Vec<MethodSpec> {
    let has_arch = space.index_of("n_layers").is_ok();
    let frozen: Vec<String> = if has_arch {
        ["batch_size", "n_layers", "n_filters"]
            .iter()
            .map(|s| (*s).to_string())
            .collect()
    } else {
        Vec::new()
    };
    let s1 = space.clone();
    let s2 = space.clone();
    let s3 = space.clone();
    let s4 = space.clone();
    vec![
        MethodSpec::new("ASHA", move || {
            Asha::new(s1.clone(), AshaConfig::new(1.0, R, ETA))
        }),
        MethodSpec::new("PBT", {
            move || {
                let frozen_refs: Vec<&str> = frozen.iter().map(String::as_str).collect();
                Pbt::new(
                    s2.clone(),
                    PbtConfig::new(25, R, R / 30.0)
                        .with_frozen(&frozen_refs)
                        .spawning(),
                )
            }
        }),
        MethodSpec::new("SHA", move || {
            SyncSha::new(s3.clone(), ShaConfig::new(256, 1.0, R, ETA).growing())
        }),
        MethodSpec::new("BOHB", move || {
            bohb(s4.clone(), ShaConfig::new(256, 1.0, R, ETA).growing())
        }),
    ]
}

fn run(bench: &CurveBenchmark, default_loss: f64, threshold: f64, stem: &str) {
    let cfg = ExperimentConfig::new(25, 150.0, 5, default_loss);
    let results =
        run_experiment_parallel(bench, &methods(bench.space()), &cfg, threads_from_args());
    print_comparison(
        &format!(
            "Figure 4 — {} (25 workers, 150 min, mean of 5 trials, test error)",
            bench.name()
        ),
        &results,
        &[20.0, 40.0, 60.0, 90.0, 120.0, 150.0],
    );
    print_time_to_reach(&results, threshold);
    write_results(stem, &results);
}

fn main() {
    println!("Figure 4: 25-worker distributed experiments...");
    run(
        &presets::cifar10_cuda_convnet(presets::DEFAULT_SURFACE_SEED),
        0.65,
        0.21,
        "fig4_bench1",
    );
    run(
        &presets::cifar10_small_cnn(presets::DEFAULT_SURFACE_SEED),
        0.90,
        0.23,
        "fig4_bench2",
    );
    println!("\nExpected shape (paper): ASHA reaches a good config in ≈ time(R);");
    println!("ASHA ≈ 1.5x faster than SHA/BOHB on benchmark 1 and clearly ahead on benchmark 2.");
}

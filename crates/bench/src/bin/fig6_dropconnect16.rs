//! Figure 6: the modern DropConnect LSTM benchmark — 16 workers, ASHA vs
//! PBT, 5 trials, validation perplexity over ~1400 minutes.
//!
//! Paper settings: ASHA with η = 4, r = 1 epoch, R = 256 epochs, s = 0;
//! PBT with population 20 and explore/exploit every 8 epochs.

use asha::baselines::{Pbt, PbtConfig};
use asha::core::{Asha, AshaConfig};
use asha::surrogate::{presets, BenchmarkModel};
use asha_bench::{
    print_comparison, print_time_to_reach, run_experiment_parallel, threads_from_args,
    write_results, ExperimentConfig, MethodSpec,
};

const R: f64 = 256.0;
const ETA: f64 = 4.0;

fn main() {
    println!("Figure 6: 16-worker DropConnect LSTM benchmark...");
    let bench = presets::ptb_dropconnect_lstm(presets::DEFAULT_SURFACE_SEED);
    let s1 = bench.space().clone();
    let s2 = bench.space().clone();
    let methods = vec![
        MethodSpec::new("PBT", move || {
            Pbt::new(s1.clone(), PbtConfig::new(20, R, 8.0).spawning())
        }),
        MethodSpec::new("ASHA", move || {
            Asha::new(s2.clone(), AshaConfig::new(1.0, R, ETA))
        }),
    ];
    let cfg = ExperimentConfig::new(16, 1400.0, 5, 110.0);
    let results = run_experiment_parallel(&bench, &methods, &cfg, threads_from_args());
    print_comparison(
        "Figure 6 — LSTM with DropConnect on PTB (16 workers, minutes, validation perplexity)",
        &results,
        &[100.0, 200.0, 400.0, 600.0, 800.0, 1000.0, 1200.0, 1400.0],
    );
    print_time_to_reach(&results, 61.0);
    write_results("fig6_dropconnect", &results);
    println!("\nExpected shape (paper): PBT leads early; ASHA catches up and finds a better");
    println!("final configuration (non-overlapping min/max ranges at the end).");
}

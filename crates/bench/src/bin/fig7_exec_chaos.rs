//! Figure 7's robustness story on the *real* executor: ASHA vs synchronous
//! SHA as fault rates grow, with faults injected deterministically by
//! [`asha::exec::ChaosObjective`] instead of simulated drops.
//!
//! Each cell runs the multi-threaded [`ParallelTuner`] over a cheap
//! closed-form objective wrapped in chaos: jobs panic (poisoning the trial),
//! drop their results (retried from checkpoint), or report NaN losses
//! (sanitized to `INFINITY`) at the swept rate. The metric mirrors Appendix
//! A.1: configurations trained to the full resource R, plus the fault tally
//! the executor survived.

use asha::core::{Asha, AshaConfig, Scheduler, ShaConfig, SyncSha};
use asha::exec::{
    install_quiet_panic_hook, ChaosConfig, ChaosObjective, Evaluation, ExecConfig, FaultPolicy,
    FnObjective, ParallelTuner,
};
use asha::metrics::{write_csv, FaultStats};
use asha::space::{Config, ParamValue, Scale, SearchSpace};

const R: f64 = 256.0;
const ETA: f64 = 4.0;
const N: usize = 256;
const WORKERS: usize = 8;
const RUNS: usize = 3;

fn space() -> SearchSpace {
    SearchSpace::builder()
        .continuous("x", 0.0, 1.0, Scale::Linear)
        .build()
        .expect("valid space")
}

/// Closed-form objective: instant to evaluate, improves with resource, so
/// the sweep measures fault handling rather than training time.
fn objective() -> impl asha::exec::Objective<Checkpoint = f64> {
    FnObjective::new(|config: &Config, resource: f64, _ckpt: Option<f64>| {
        let x = match config.values()[0] {
            ParamValue::Float(v) => v,
            _ => unreachable!("space is continuous"),
        };
        let loss = (x - 0.3).abs() + 1.0 / (1.0 + resource);
        (Evaluation::of(loss), resource)
    })
}

struct Cell {
    configs_at_r: usize,
    best: f64,
    faults: FaultStats,
}

fn run_cell<S: Scheduler + Send>(make: impl Fn() -> S, rate: f64, seed_base: u64) -> Cell {
    let mut configs_at_r = 0usize;
    let mut best = f64::INFINITY;
    let mut faults = FaultStats::none();
    for run in 0..RUNS {
        let chaos = ChaosObjective::new(
            objective(),
            ChaosConfig::new(seed_base + run as u64)
                .with_panics(rate)
                .with_drops(rate)
                .with_nan_losses(rate / 2.0),
        );
        let exec =
            ExecConfig::new(WORKERS).with_fault_policy(FaultPolicy::default().with_max_retries(2));
        let result = ParallelTuner::new(exec).run(make(), &chaos, seed_base + run as u64);
        configs_at_r += result.trace.configs_trained_to(R, f64::INFINITY);
        if let Some((_, loss)) = result.best {
            best = best.min(loss);
        }
        faults = faults.merge(&result.faults);
    }
    Cell {
        configs_at_r,
        best,
        faults,
    }
}

fn main() {
    install_quiet_panic_hook();
    println!(
        "Executor chaos sweep: configs trained to R = {R} over {RUNS} runs/cell ({WORKERS} workers)"
    );
    let rates = [0.0, 0.02, 0.05, 0.1, 0.2];
    let mut rows = Vec::new();
    println!(
        "{:>10} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "rate", "ASHA@R", "ASHA best", "SHA@R", "SHA best", "faults"
    );
    for (i, &rate) in rates.iter().enumerate() {
        let sp = space();
        let asha = run_cell(
            || Asha::new(sp.clone(), AshaConfig::new(1.0, R, ETA).with_max_trials(N)),
            rate,
            1000 + i as u64,
        );
        let sp = space();
        let sha = run_cell(
            || SyncSha::new(sp.clone(), ShaConfig::new(N, 1.0, R, ETA)),
            rate,
            2000 + i as u64,
        );
        let total_faults = asha.faults.total() + sha.faults.total();
        println!(
            "{rate:>10.2} {:>10} {:>12.4} {:>10} {:>12.4} {total_faults:>10}",
            asha.configs_at_r, asha.best, sha.configs_at_r, sha.best
        );
        rows.push(vec![
            rate,
            asha.configs_at_r as f64,
            asha.best,
            asha.faults.jobs_poisoned as f64,
            sha.configs_at_r as f64,
            sha.best,
            sha.faults.jobs_poisoned as f64,
        ]);
    }
    if let Err(e) = write_csv(
        "results/fig7_exec_chaos.csv",
        &[
            "chaos_rate",
            "asha_configs_at_r",
            "asha_best",
            "asha_poisoned",
            "sha_configs_at_r",
            "sha_best",
            "sha_poisoned",
        ],
        &rows,
    ) {
        eprintln!("warning: {e}");
    }
    println!("\nExpected shape: both finish every sweep cell (faults never kill the pool);");
    println!("ASHA keeps pushing survivors to R as rates grow, while the synchronous");
    println!("barrier stalls brackets whose rungs collect poisoned trials.");
}

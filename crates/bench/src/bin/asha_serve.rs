//! `asha-serve` — the tuning-as-a-service daemon.
//!
//! Serves an [`asha::store::ExperimentSupervisor`] root to many concurrent
//! clients over a Unix socket and/or TCP, speaking the versioned
//! newline-delimited JSON protocol in [`asha::service::proto`]. Pair with
//! `asha-ctl`.
//!
//! Usage:
//!
//! ```text
//! asha-serve --root DIR [--unix PATH] [--tcp ADDR] [--trace FILE]
//!            [--queue-depth N] [--max-frame BYTES]
//!            [--metrics-addr ADDR] [--slow-log FILE] [--slow-ms MS]
//!            [--group-commit-ms MS] [--no-metrics]
//! ```
//!
//! At least one of `--unix` / `--tcp` is required. `--metrics-addr` adds
//! an HTTP listener answering `GET /metrics` in Prometheus text format;
//! `--slow-log` appends requests slower than `--slow-ms` (default 1000)
//! as JSONL. `--group-commit-ms` coalesces WAL fsyncs across experiments
//! through one shared commit pipeline (at most one fsync per WAL per
//! window). `--no-metrics` (or `ASHA_METRICS=off`) disables the metrics
//! plane entirely — for measuring its overhead, not for production. The
//! daemon runs until SIGTERM/SIGINT or a client `shutdown` request, then
//! drains gracefully: running experiments park behind durable snapshots,
//! the manifest is flushed, and client queues are drained before exit.

use std::sync::atomic::{AtomicBool, Ordering};

use asha::service::{Daemon, ServeOptions};

/// Set from the signal handler; polled by the main loop.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::SIGNALLED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // POSIX signal(2). The vendored ecosystem has no libc crate, and
        // this binary (unlike the library crates, which forbid unsafe) may
        // declare the one foreign function it needs.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_sig: i32) {
        // Async-signal-safe: a single atomic store.
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("asha-serve: error: {msg}");
    std::process::exit(1);
}

fn usage() -> ! {
    eprintln!(
        "usage: asha-serve --root DIR [--unix PATH] [--tcp ADDR] [--trace FILE]\n\
         \x20                 [--queue-depth N] [--max-frame BYTES]\n\
         \x20                 [--metrics-addr ADDR] [--slow-log FILE] [--slow-ms MS]\n\
         \x20                 [--group-commit-ms MS] [--no-metrics]"
    );
    std::process::exit(2);
}

fn parse_options() -> ServeOptions {
    let mut root = None;
    let mut unix = None;
    let mut tcp = None;
    let mut trace = None;
    let mut queue_depth = None;
    let mut max_frame = None;
    let mut metrics_addr = None;
    let mut slow_log = None;
    let mut slow_ms = None;
    let mut group_commit_ms = None;
    let mut no_metrics = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--root" => root = Some(value("--root")),
            "--unix" => unix = Some(value("--unix")),
            "--tcp" => tcp = Some(value("--tcp")),
            "--trace" => trace = Some(value("--trace")),
            "--queue-depth" => {
                queue_depth = Some(
                    value("--queue-depth")
                        .parse::<usize>()
                        .unwrap_or_else(|e| fail(format!("--queue-depth: {e}"))),
                )
            }
            "--max-frame" => {
                max_frame = Some(
                    value("--max-frame")
                        .parse::<usize>()
                        .unwrap_or_else(|e| fail(format!("--max-frame: {e}"))),
                )
            }
            "--metrics-addr" => metrics_addr = Some(value("--metrics-addr")),
            "--slow-log" => slow_log = Some(value("--slow-log")),
            "--slow-ms" => {
                slow_ms = Some(
                    value("--slow-ms")
                        .parse::<u64>()
                        .unwrap_or_else(|e| fail(format!("--slow-ms: {e}"))),
                )
            }
            "--group-commit-ms" => {
                group_commit_ms = Some(
                    value("--group-commit-ms")
                        .parse::<u64>()
                        .unwrap_or_else(|e| fail(format!("--group-commit-ms: {e}"))),
                )
            }
            "--no-metrics" => no_metrics = true,
            "--help" | "-h" => usage(),
            other => fail(format!("unknown argument {other:?}")),
        }
    }

    let root = root.unwrap_or_else(|| fail("--root is required"));
    let mut opts = ServeOptions::new(root);
    opts.unix = unix.map(Into::into);
    opts.tcp = tcp;
    opts.trace = trace.map(Into::into);
    if let Some(depth) = queue_depth {
        opts.queue_depth = depth;
    }
    if let Some(limit) = max_frame {
        opts.max_frame = limit;
    }
    opts.metrics_addr = metrics_addr;
    opts.slow_log = slow_log.map(Into::into);
    if let Some(ms) = slow_ms {
        opts.slow_threshold = std::time::Duration::from_millis(ms);
    }
    opts.group_commit = group_commit_ms.map(std::time::Duration::from_millis);
    // `ASHA_METRICS=off` matches the bench harness, which toggles the
    // plane without changing the command line.
    if no_metrics || std::env::var("ASHA_METRICS").is_ok_and(|v| v == "off") {
        opts.metrics = false;
    }
    if opts.unix.is_none() && opts.tcp.is_none() {
        fail("at least one of --unix / --tcp is required");
    }
    opts
}

fn main() {
    let opts = parse_options();
    #[cfg(unix)]
    sig::install();

    let daemon = Daemon::start(opts).unwrap_or_else(|e| fail(e));
    if let Some(addr) = daemon.tcp_addr() {
        println!("asha-serve: listening on tcp {addr}");
    }
    if let Some(addr) = daemon.metrics_addr() {
        println!("asha-serve: metrics on http://{addr}/metrics");
    }
    println!("asha-serve: ready (pid {})", std::process::id());

    loop {
        if SIGNALLED.load(Ordering::SeqCst) {
            eprintln!("asha-serve: signal received, shutting down");
            daemon.begin_shutdown();
            break;
        }
        if daemon.shutdown_requested() {
            eprintln!("asha-serve: shutdown requested by client");
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }

    match daemon.wait() {
        Ok(()) => println!("asha-serve: drained, exiting"),
        Err(e) => fail(format!("shutdown: {e}")),
    }
}

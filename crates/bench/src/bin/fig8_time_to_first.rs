//! Figure 8 (Appendix A.1): the time until the *first* configuration is
//! trained for the maximum resource R, under stragglers and dropped jobs —
//! ASHA vs synchronous SHA on the simulated workload of Figure 7.
//!
//! Runs that fail to produce a full-budget configuration within the 2000
//! time-unit horizon are reported at the horizon (matching the flat-topped
//! curves of the paper's plot).

use asha::core::{Asha, AshaConfig, Scheduler, ShaConfig, SyncSha};
use asha::metrics::write_csv;
use asha::sim::{ClusterSim, ResumePolicy, SimConfig};
use asha::space::{Scale, SearchSpace};
use asha::surrogate::{BenchmarkModel, CurveBenchmark};
use rand::rngs::StdRng;
use rand::SeedableRng;

const R: f64 = 256.0;
const ETA: f64 = 4.0;
const HORIZON: f64 = 2000.0;
const WORKERS: usize = 25;
const SIMS: usize = 25;

fn unit_cost_benchmark() -> CurveBenchmark {
    let space = SearchSpace::builder()
        .continuous("x", 0.0, 1.0, Scale::Linear)
        .build()
        .expect("valid space");
    CurveBenchmark::builder("unit-cost", space, R, 7)
        .cost(R, &[0.0])
        .noise(0.01, 0.01)
        .build()
}

fn mean_first_time<S: Scheduler>(make: impl Fn() -> S, std: f64, p: f64, seed: u64) -> f64 {
    let bench = unit_cost_benchmark();
    let mut total = 0.0;
    for sim_idx in 0..SIMS {
        let mut rng = StdRng::seed_from_u64(seed + sim_idx as u64);
        let sim = ClusterSim::new(
            SimConfig::new(WORKERS, HORIZON)
                .with_stragglers(std)
                .with_drops(p)
                .with_resume(ResumePolicy::FromScratch),
        );
        let result = sim.run(make(), &bench, &mut rng);
        total += result.trace.first_time_trained_to(R).unwrap_or(HORIZON);
    }
    total / SIMS as f64
}

fn main() {
    println!(
        "Figure 8: time until the first configuration trained for R ({WORKERS} workers, {SIMS} sims/cell)"
    );
    let stds = [0.0, 0.33, 0.67, 1.0, 1.33, 1.67];
    let drops = [0.0, 1e-3, 2e-3, 3e-3];
    let space = unit_cost_benchmark().space().clone();
    let mut rows = Vec::new();
    println!(
        "{:>10} {:>10} {:>12} {:>12}",
        "train std", "drop prob", "ASHA", "SHA"
    );
    for &std in &stds {
        for (i, &p) in drops.iter().enumerate() {
            let space_a = space.clone();
            let asha = mean_first_time(
                move || Asha::new(space_a.clone(), AshaConfig::new(1.0, R, ETA)),
                std,
                p,
                3000 + i as u64,
            );
            let space_s = space.clone();
            let sha = mean_first_time(
                move || SyncSha::new(space_s.clone(), ShaConfig::new(256, 1.0, R, ETA).growing()),
                std,
                p,
                4000 + i as u64,
            );
            println!("{std:>10.2} {p:>10.4} {asha:>12.1} {sha:>12.1}");
            rows.push(vec![std, p, asha, sha]);
        }
        println!();
    }
    if let Err(e) = write_csv(
        "results/fig8_time_to_first.csv",
        &[
            "train_std",
            "drop_prob",
            "asha_first_time",
            "sha_first_time",
        ],
        &rows,
    ) {
        eprintln!("warning: {e}");
    }
    println!("Expected shape (paper): ASHA reaches a fully-trained configuration much sooner,");
    println!("and degrades gracefully where SHA's time blows up toward the horizon.");
}

//! Figure 9 (Appendix A.2): the sequential comparison with Fabolas on four
//! tasks — SVM on `vehicle`, SVM on MNIST, the cuda-convnet CIFAR-10 model,
//! and the small-CNN SVHN task. Hyperband is evaluated under both incumbent
//! accountings: "by rung" (using intermediate losses, as ASHA does) and "by
//! bracket" (only at bracket completions, as Klein et al. evaluated it).

use asha::baselines::{Fabolas, FabolasConfig};
use asha::core::{Hyperband, HyperbandConfig, RandomSearch};
use asha::metrics::{aggregate, uniform_grid, write_csv, AggregateCurve, StepCurve};
use asha::sim::{ClusterSim, SimConfig};
use asha::surrogate::{presets, BenchmarkModel, CurveBenchmark};
use rand::rngs::StdRng;
use rand::SeedableRng;

const TRIALS: usize = 10;
const ETA: f64 = 4.0;

struct Series {
    name: &'static str,
    agg: AggregateCurve,
}

fn aggregate_curves(curves: Vec<StepCurve>, grid: &[f64], default: f64) -> AggregateCurve {
    aggregate(&curves, grid, default)
}

fn run_task(bench: &CurveBenchmark, horizon: f64, default_loss: f64, stem: &str) {
    let grid = uniform_grid(horizon, 160);
    let space = bench.space().clone();
    let max_r = bench.max_resource();

    // Hyperband: one set of runs, two accountings.
    let mut by_rung = Vec::new();
    let mut by_bracket = Vec::new();
    for t in 0..TRIALS {
        let mut rng = StdRng::seed_from_u64(100 + t as u64);
        let hb = Hyperband::new(
            space.clone(),
            HyperbandConfig::new(max_r / 64.0, max_r, ETA),
        );
        let result = ClusterSim::new(SimConfig::new(1, horizon)).run(hb, bench, &mut rng);
        by_rung.push(result.trace.incumbent_curve());
        by_bracket.push(result.trace.incumbent_curve_by_bracket());
    }

    let mut fabolas = Vec::new();
    for t in 0..TRIALS {
        let mut rng = StdRng::seed_from_u64(200 + t as u64);
        let f = Fabolas::new(space.clone(), FabolasConfig::new(max_r));
        let result = ClusterSim::new(SimConfig::new(1, horizon)).run(f, bench, &mut rng);
        fabolas.push(result.trace.incumbent_curve());
    }

    let mut random = Vec::new();
    for t in 0..TRIALS {
        let mut rng = StdRng::seed_from_u64(300 + t as u64);
        let r = RandomSearch::new(space.clone(), max_r);
        let result = ClusterSim::new(SimConfig::new(1, horizon)).run(r, bench, &mut rng);
        random.push(result.trace.incumbent_curve());
    }

    let series = [
        Series {
            name: "Hyperband (by rung)",
            agg: aggregate_curves(by_rung, &grid, default_loss),
        },
        Series {
            name: "Hyperband (by bracket)",
            agg: aggregate_curves(by_bracket, &grid, default_loss),
        },
        Series {
            name: "Fabolas",
            agg: aggregate_curves(fabolas, &grid, default_loss),
        },
        Series {
            name: "Random",
            agg: aggregate_curves(random, &grid, default_loss),
        },
    ];

    println!(
        "\n== Figure 9 — {} (1 worker, mean of {TRIALS} trials, test error) ==",
        bench.name()
    );
    print!("{:>10}", "time");
    for s in &series {
        print!("{:>24}", s.name);
    }
    println!();
    for frac in [0.1, 0.25, 0.5, 0.75, 1.0] {
        let t = horizon * frac;
        let idx = grid.iter().position(|&g| g >= t).unwrap_or(grid.len() - 1);
        print!("{t:>10.0}");
        for s in &series {
            print!("{:>24.4}", s.agg.mean[idx]);
        }
        println!();
    }
    // Variance comparison the paper highlights: Hyperband (by rung) should
    // show a tighter final spread than Fabolas.
    let spread = |agg: &AggregateCurve| agg.max.last().unwrap() - agg.min.last().unwrap();
    println!(
        "final spread (max-min): by-rung {:.4}, fabolas {:.4}",
        spread(&series[0].agg),
        spread(&series[2].agg)
    );

    let mut rows = Vec::new();
    for (i, &t) in grid.iter().enumerate() {
        rows.push(vec![
            t,
            series[0].agg.mean[i],
            series[1].agg.mean[i],
            series[2].agg.mean[i],
            series[3].agg.mean[i],
        ]);
    }
    if let Err(e) = write_csv(
        format!("results/{stem}.csv"),
        &["time", "hb_by_rung", "hb_by_bracket", "fabolas", "random"],
        &rows,
    ) {
        eprintln!("warning: {e}");
    }
}

fn main() {
    println!("Figure 9: sequential Fabolas comparison on four tasks...");
    let seed = presets::DEFAULT_SURFACE_SEED;
    run_task(&presets::svm_vehicle(seed), 800.0, 0.75, "fig9_svm_vehicle");
    run_task(&presets::svm_mnist(seed), 800.0, 0.90, "fig9_svm_mnist");
    run_task(
        &presets::cifar10_cuda_convnet(seed),
        2500.0,
        0.65,
        "fig9_cifar10_convnet",
    );
    run_task(&presets::svhn_small_cnn(seed), 2500.0, 0.85, "fig9_svhn");
    println!("\nExpected shape (paper): Hyperband (by rung) is competitive with or better than");
    println!("Fabolas, with lower variance; Hyperband (by bracket) lags until bracket 0 ends.");
}

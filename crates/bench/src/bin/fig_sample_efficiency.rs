//! Sample-efficiency figure: time-to-target-loss for model-based sampling
//! and delayed promotion on top of asynchronous early stopping.
//!
//! Compares uniform-sampling ASHA against the sampling-plane crosses —
//! ASHA+TPE (A-BOHB-style model-based proposals), D-ASHA (Hyper-Tune's
//! delayed promotion rule), and D-ASHA+TPE — with synchronous SHA and BOHB
//! as the blocking-promotion reference points. The interesting read-out is
//! the `time to reach` table: model-based proposals should reach tight
//! loss targets earlier than uniform sampling at equal parallelism, and
//! delayed promotion should not cost much wall-clock on a clean cluster.

use asha::baselines::{bohb, bohb_asha, dasha_tpe};
use asha::core::{Asha, AshaConfig, DAsha, ShaConfig, SyncSha};
use asha::space::SearchSpace;
use asha::surrogate::{presets, BenchmarkModel, CurveBenchmark};
use asha_bench::{
    print_comparison, print_time_to_reach, run_experiment_parallel, threads_from_args,
    write_results, ExperimentConfig, MethodSpec,
};

const R: f64 = 256.0;
const ETA: f64 = 4.0;
const WORKERS: usize = 9;
const TRIALS: usize = 10;

fn methods(space: &SearchSpace) -> Vec<MethodSpec> {
    let s1 = space.clone();
    let s2 = space.clone();
    let s3 = space.clone();
    let s4 = space.clone();
    let s5 = space.clone();
    let s6 = space.clone();
    vec![
        MethodSpec::new("ASHA", move || {
            Asha::new(s1.clone(), AshaConfig::new(1.0, R, ETA))
        }),
        MethodSpec::new("ASHA+TPE", move || {
            bohb_asha(s2.clone(), AshaConfig::new(1.0, R, ETA))
        }),
        MethodSpec::new("D-ASHA", move || {
            DAsha::new(s3.clone(), AshaConfig::new(1.0, R, ETA))
        }),
        MethodSpec::new("D-ASHA+TPE", move || {
            dasha_tpe(s4.clone(), AshaConfig::new(1.0, R, ETA))
        }),
        MethodSpec::new("SyncSHA", move || {
            SyncSha::new(s5.clone(), ShaConfig::new(256, 1.0, R, ETA).growing())
        }),
        MethodSpec::new("BOHB", move || {
            bohb(s6.clone(), ShaConfig::new(256, 1.0, R, ETA).growing())
        }),
    ]
}

fn run(bench: &CurveBenchmark, default_loss: f64, thresholds: &[f64], stem: &str) {
    let cfg = ExperimentConfig::new(WORKERS, 600.0, TRIALS, default_loss);
    let results =
        run_experiment_parallel(bench, &methods(bench.space()), &cfg, threads_from_args());
    print_comparison(
        &format!(
            "Sample efficiency — {} ({WORKERS} workers, mean of {TRIALS} trials, test error)",
            bench.name()
        ),
        &results,
        &[50.0, 100.0, 200.0, 300.0, 450.0, 600.0],
    );
    for &threshold in thresholds {
        print_time_to_reach(&results, threshold);
    }
    write_results(stem, &results);
}

fn main() {
    println!("Sample efficiency: model-based sampling and delayed promotion on ASHA...");
    run(
        &presets::cifar10_cuda_convnet(presets::DEFAULT_SURFACE_SEED),
        0.65,
        &[0.25, 0.21],
        "fig_sample_efficiency_bench1",
    );
    run(
        &presets::cifar10_small_cnn(presets::DEFAULT_SURFACE_SEED),
        0.90,
        &[0.26, 0.23],
        "fig_sample_efficiency_bench2",
    );
    println!("\nExpected shape: the TPE crosses reach tight targets at or before uniform");
    println!("ASHA; D-ASHA tracks ASHA closely (delayed promotion trades a little");
    println!("wall-clock for strictly top-1/eta promotions); SyncSHA/BOHB trail on");
    println!("time-to-target because promotions block on full rungs.");
}

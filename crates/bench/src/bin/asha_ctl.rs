//! `asha-ctl` — command-line client for the `asha-serve` daemon.
//!
//! Usage:
//!
//! ```text
//! asha-ctl (--unix PATH | --tcp ADDR)
//!          [--connect-timeout SECS] [--timeout SECS] COMMAND [ARGS]
//!
//! Commands:
//!   ping                              liveness probe
//!   create NAME --preset P [opts]     create an experiment (not started)
//!   start NAME [--sync S] [--snapshot-jobs N] [--wal-format F] [--delta-chain N]
//!   pause NAME | resume NAME | abort NAME
//!   status NAME | list | stats
//!   metrics                           dump the full metrics snapshot (JSON)
//!   top [--interval SECS] [--count N] live daemon metrics view (like top(1))
//!   tail NAME [--from SEQ]            print the live WAL stream
//!   watch NAME [--from SEQ] [--out FILE] [--workers N]
//!                                     follow to completion, then emit the
//!                                     run report (text + JSON)
//!   shutdown                          gracefully stop the daemon
//! ```
//!
//! `create` options: `--preset P --bench-seed N --seed N --workers N
//! --max-time T --straggler-std S --drop-prob Q --min-r R --max-r R
//! --eta E --scheduler (asha|dasha) --sampler (random|tpe|gp)
//! --sync (never|always|N) --snapshot-jobs N --wal-format (jsonl-v1|binary-v2)
//! --delta-chain N`. `--wal-format` picks the on-disk dialect for new store
//! files (binary-v2 default); `--delta-chain` caps delta snapshots between
//! full ones (0 = always full).
//!
//! `--connect-timeout` (default 10) bounds TCP connection establishment;
//! `--timeout` (default 30, `0` disables) bounds each request's wait for a
//! reply, so a dead or wedged daemon fails the command instead of hanging
//! the terminal forever. Streaming waits in `tail`/`watch` are separate
//! and remain generous (an idle experiment is not a dead daemon).
//!
//! `watch` doubles as *attach*: subscribing replays the experiment's WAL
//! from the requested sequence, so re-running `watch` after a daemon
//! restart (even one recovering from SIGKILL) rebuilds the identical run
//! report from the recovered log.

use std::collections::HashMap;
use std::time::Duration;

use asha::core::{Asha, AshaConfig, DAsha};
use asha::metrics::JsonValue;
use asha::obs::{parse_jsonl, Event, HistogramSnapshot, RunReport};
use asha::service::{Client, Push};
use asha::sim::SimConfig;
use asha::store::{
    make_sampler, BenchSpec, Durability, ExperimentMeta, RunOptions, SchedulerState, StoreFormat,
};
use asha::surrogate::BenchmarkModel as _;

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("asha-ctl: error: {msg}");
    std::process::exit(1);
}

fn usage() -> ! {
    eprintln!(
        "usage: asha-ctl (--unix PATH | --tcp ADDR)\n\
         \x20              [--connect-timeout SECS] [--timeout SECS] COMMAND [ARGS]\n\
         commands: ping, create, start, pause, resume, abort, status, list,\n\
         \x20         stats, metrics, top, tail, watch, shutdown\n\
         \x20         (see source header for flags)"
    );
    std::process::exit(2);
}

/// Flag parser over the remaining arguments: positionals in order plus
/// `--flag value` pairs.
struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut it = raw.iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = it
                    .next()
                    .unwrap_or_else(|| fail(format!("--{name} needs a value")));
                flags.insert(name.to_owned(), value.clone());
            } else {
                positional.push(arg.clone());
            }
        }
        Args { positional, flags }
    }

    fn positional(&self, idx: usize, what: &str) -> &str {
        self.positional
            .get(idx)
            .unwrap_or_else(|| fail(format!("missing {what}")))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            Some(raw) => raw
                .parse()
                .unwrap_or_else(|e| fail(format!("--{name}: {e}"))),
            None => default,
        }
    }
}

fn run_options(args: &Args) -> RunOptions {
    let sync = match args.get("sync") {
        None => Durability::default(),
        Some("never") | Some("flush") => Durability::Flush,
        Some("always") | Some("sync") => Durability::Sync,
        Some(n) => Durability::EveryN(
            n.parse()
                .unwrap_or_else(|e| fail(format!("--sync: expected never/always/N: {e}"))),
        ),
    };
    let format = match args.get("wal-format") {
        None => RunOptions::default().format,
        Some(name) => StoreFormat::from_name(name)
            .unwrap_or_else(|| fail(format!("--wal-format: unknown format {name:?}"))),
    };
    RunOptions {
        sync,
        snapshot_jobs: args.num("snapshot-jobs", RunOptions::default().snapshot_jobs),
        format,
        delta_chain: args.num("delta-chain", RunOptions::default().delta_chain),
    }
}

fn connect(
    unix: Option<&str>,
    tcp: Option<&str>,
    connect_timeout: Duration,
    call_timeout: Option<Duration>,
) -> Client {
    let mut client = match (unix, tcp) {
        (Some(path), _) => Client::connect_unix(path).unwrap_or_else(|e| fail(e)),
        (None, Some(addr)) => {
            Client::connect_tcp_timeout(addr, connect_timeout).unwrap_or_else(|e| fail(e))
        }
        (None, None) => fail("need --unix PATH or --tcp ADDR before the command"),
    };
    client.set_call_timeout(call_timeout);
    client
}

fn cmd_create(client: &mut Client, args: &Args) {
    let name = args.positional(0, "experiment name");
    let preset = args
        .get("preset")
        .unwrap_or_else(|| fail("--preset is required"));
    let spec = BenchSpec {
        preset: preset.to_owned(),
        seed: args.num("bench-seed", 0u64),
    };
    let bench = spec.build().unwrap_or_else(|e| fail(e));
    let space = bench.space().clone();
    let min_r = args.num("min-r", 1.0f64);
    let max_r = args.num("max-r", 27.0f64);
    let eta = args.num("eta", 3.0f64);
    let config = AshaConfig::new(min_r, max_r, eta);

    // The sampling plane: `--sampler tpe|gp` attaches a model-based
    // sampler. The kind travels in the meta; the daemon rebuilds the
    // sampler server-side and snapshots carry its model cursor.
    let sampler = match args.get("sampler") {
        None | Some("random") => None,
        Some(kind @ ("tpe" | "gp")) => Some(kind.to_owned()),
        Some(other) => fail(format!("--sampler: unknown kind {other:?} (random/tpe/gp)")),
    };
    let build_sampler = |kind: &Option<String>| {
        make_sampler(kind.as_deref().unwrap_or("random"), &space).unwrap_or_else(|e| fail(e))
    };
    let initial = match args.get("scheduler").unwrap_or("asha") {
        "asha" => SchedulerState::Asha(
            Asha::with_sampler(space.clone(), config, build_sampler(&sampler)).export_state(),
        ),
        "dasha" => SchedulerState::DAsha(
            DAsha::with_sampler(space.clone(), config, build_sampler(&sampler)).export_state(),
        ),
        other => fail(format!("--scheduler: unknown kind {other:?} (asha/dasha)")),
    };

    let sim = SimConfig::builder()
        .workers(args.num("workers", 4usize))
        .max_time(args.num("max-time", 100.0f64))
        .straggler_std(args.num("straggler-std", 0.0f64))
        .drop_prob(args.num("drop-prob", 0.0f64))
        .build()
        .unwrap_or_else(|e| fail(e));

    let meta = ExperimentMeta {
        name: name.to_owned(),
        space,
        initial,
        sampler,
        seed: args.num("seed", 0u64),
        sim,
        bench: spec,
    };
    client
        .create(&meta, run_options(args))
        .unwrap_or_else(|e| fail(e));
    println!("created {name}");
}

/// Follow a subscription; returns the accumulated telemetry when the
/// stream ends (`print_lines` echoes every frame for `tail`).
///
/// A `lag` push means the daemon dropped frames rather than stall the run;
/// this consumer needs a gap-free stream, so it resubscribes from the last
/// telemetry sequence it saw (the protocol's prescribed recovery). Pushes
/// from the abandoned subscription are discarded by id.
fn follow(client: &mut Client, name: &str, from_seq: u64, print_lines: bool) -> Vec<Event> {
    let mut sub = client.subscribe(name, from_seq).unwrap_or_else(|e| fail(e));
    let mut events: Vec<Event> = Vec::new();
    let mut last_note = 0usize;
    loop {
        match client.next_push(Some(Duration::from_secs(3600))) {
            Ok(Some(push)) => {
                if push.sub() != sub {
                    continue;
                }
                match push {
                    Push::Event { data, .. } => {
                        let line = data.render_compact();
                        if print_lines {
                            println!("{line}");
                        }
                        if data.get("seq").is_some() {
                            match parse_jsonl(&line) {
                                Ok(parsed) => events.extend(parsed),
                                Err(e) => eprintln!("asha-ctl: bad telemetry line: {e}"),
                            }
                            if !print_lines && events.len() >= last_note + 500 {
                                last_note = events.len();
                                let t = events.last().map(|e| e.time).unwrap_or(0.0);
                                eprintln!("asha-ctl: {} events, sim t {t:.1}", events.len());
                            }
                        } else if !print_lines {
                            let ev = data.get("ev").and_then(|e| e.as_str()).unwrap_or("?");
                            eprintln!("asha-ctl: store marker: {ev}");
                        }
                    }
                    Push::Lag { dropped, .. } => {
                        let next_seq = events.last().map(|e| e.seq + 1).unwrap_or(from_seq);
                        eprintln!(
                            "asha-ctl: lagged ({dropped} frames dropped); resubscribing from seq {next_seq}"
                        );
                        let _ = client.unsubscribe(sub);
                        sub = client.subscribe(name, next_seq).unwrap_or_else(|e| fail(e));
                    }
                    Push::Status { state, .. } => {
                        eprintln!(
                            "asha-ctl: status: {} -> {}",
                            state.name,
                            state.status.as_str()
                        );
                    }
                    Push::Rewind { .. } => {
                        // The WAL was rewritten shorter; restart clean from
                        // the original offset so a prior lag-resubscribe
                        // filter can't hide the rewritten prefix.
                        eprintln!("asha-ctl: log rewound (crash recovery); resetting");
                        events.clear();
                        last_note = 0;
                        let _ = client.unsubscribe(sub);
                        sub = client.subscribe(name, from_seq).unwrap_or_else(|e| fail(e));
                    }
                    Push::End { .. } => break,
                }
            }
            Ok(None) => fail("subscription timed out or connection closed"),
            Err(e) => fail(e),
        }
    }
    events
}

fn cmd_watch(client: &mut Client, args: &Args) {
    let name = args.positional(0, "experiment name");
    let from_seq = args.num("from", 0u64);
    let events = follow(client, name, from_seq, false);
    let workers = args.get("workers").map(|_| args.num("workers", 0usize));
    let report = RunReport::from_events(&events, workers);
    println!("{}", report.render_text());
    if let Some(path) = args.get("out") {
        std::fs::write(path, report.to_json().render())
            .unwrap_or_else(|e| fail(format!("writing {path}: {e}")));
        eprintln!("asha-ctl: report written to {path}");
    }
}

/// Walk a dotted path through nested JSON objects.
fn jpath<'a>(root: &'a JsonValue, path: &str) -> Option<&'a JsonValue> {
    path.split('.').try_fold(root, |v, key| v.get(key))
}

fn jint(root: &JsonValue, path: &str) -> u64 {
    jpath(root, path).and_then(JsonValue::as_u64).unwrap_or(0)
}

/// Decode the histogram at `path` and format `p50/p99` in human units.
fn jhist(root: &JsonValue, path: &str) -> String {
    match jpath(root, path).and_then(HistogramSnapshot::from_json) {
        Some(h) if h.count() > 0 => {
            format!(
                "{} / {}",
                fmt_secs(h.quantile(0.50)),
                fmt_secs(h.quantile(0.99))
            )
        }
        _ => "- / -".to_owned(),
    }
}

fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.0}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// One rendered frame of the `top` view.
fn render_top(snap: &JsonValue, rows: &[asha::service::WireStatus]) {
    let enabled = snap
        .get("enabled")
        .and_then(JsonValue::as_bool)
        .unwrap_or(false);
    println!(
        "asha-serve — up {:.0}s — metrics {}",
        jpath(snap, "uptime_s")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0),
        if enabled {
            "on"
        } else {
            "off (counters are zeros)"
        },
    );
    println!(
        "conns {} open / {} total   workers queue {}   subs {} open   http scrapes {}",
        jint(snap, "connections.open"),
        jint(snap, "connections.total"),
        jint(snap, "workers.queue_depth"),
        jint(snap, "subscriptions.open"),
        jint(snap, "http.requests"),
    );
    println!(
        "reactor: {} iters (p50/p99 {}), wake {}, {} B in / {} B out, {} decode errs, {} read pauses",
        jint(snap, "reactor.iterations"),
        jhist(snap, "reactor.iteration"),
        jhist(snap, "reactor.wake_dispatch"),
        jint(snap, "reactor.bytes_read"),
        jint(snap, "reactor.bytes_written"),
        jint(snap, "reactor.decode_errors"),
        jint(snap, "reactor.read_pauses"),
    );
    println!(
        "requests: {} total, {} errors, {} slow   events: {} sent, {} lagged",
        jint(snap, "requests.total"),
        jint(snap, "requests.errors"),
        jint(snap, "requests.slow"),
        jint(snap, "subscriptions.events_sent"),
        jint(snap, "subscriptions.events_lagged"),
    );
    if let Some(JsonValue::Obj(by_op)) = jpath(snap, "requests.by_op") {
        println!(
            "  {:<12} {:>8} {:>6}  {:<20} EXEC p50/p99",
            "OP", "COUNT", "ERRS", "QUEUE p50/p99"
        );
        for (op, cells) in by_op {
            println!(
                "  {:<12} {:>8} {:>6}  {:<20} {}",
                op,
                jint(cells, "count"),
                jint(cells, "errors"),
                jhist(cells, "queue_wait"),
                jhist(cells, "execute"),
            );
        }
    }
    if let Some(JsonValue::Obj(tailers)) = snap.get("tailers") {
        if !tailers.is_empty() {
            println!(
                "  {:<24} {:>5} {:>8} {:>7} {:>10}",
                "TAILER", "SUBS", "LAG", "EVICT", "FANOUT"
            );
            for (name, t) in tailers {
                println!(
                    "  {:<24} {:>5} {:>8} {:>7} {:>10}",
                    name,
                    jint(t, "subscribers"),
                    jint(t, "lag_records"),
                    jint(t, "window_evictions"),
                    jint(t, "fanout_frames"),
                );
            }
        }
    }
    println!(
        "store: wal append {}   fsync {}   snapshot write {}",
        jhist(snap, "store.wal_append"),
        jhist(snap, "store.wal_fsync"),
        jhist(snap, "store.snapshot_write"),
    );
    if !rows.is_empty() {
        println!("experiments:");
        for row in rows {
            println!("  {:<24} {}", row.name, row.status.as_str());
        }
    }
}

fn cmd_top(client: &mut Client, args: &Args) {
    let interval = args.num("interval", 2.0f64);
    if interval <= 0.0 {
        fail("--interval must be positive");
    }
    let count = args.num("count", 0u64); // 0 = run until interrupted
    let mut frames = 0u64;
    loop {
        let snap = client.metrics().unwrap_or_else(|e| fail(e));
        let rows = client.list().unwrap_or_else(|e| fail(e));
        if frames > 0 {
            // Clear between frames only, so a single `--count 1` shot (and
            // anything piping the output) gets plain text.
            print!("\x1b[2J\x1b[H");
        }
        render_top(&snap, &rows);
        frames += 1;
        if count != 0 && frames >= count {
            break;
        }
        std::thread::sleep(Duration::from_secs_f64(interval));
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // Connection flags come before the command; everything after belongs
    // to the subcommand.
    let mut unix = None;
    let mut tcp = None;
    let mut connect_timeout = Duration::from_secs(10);
    let mut call_timeout = Some(Duration::from_secs(30));
    let mut idx = 0;
    let take_value = |raw: &[String], idx: usize, name: &str| -> String {
        raw.get(idx + 1)
            .cloned()
            .unwrap_or_else(|| fail(format!("{name} needs a value")))
    };
    while idx < raw.len() {
        match raw[idx].as_str() {
            "--unix" => {
                unix = Some(take_value(&raw, idx, "--unix"));
                idx += 2;
            }
            "--tcp" => {
                tcp = Some(take_value(&raw, idx, "--tcp"));
                idx += 2;
            }
            "--connect-timeout" => {
                let secs: f64 = take_value(&raw, idx, "--connect-timeout")
                    .parse()
                    .unwrap_or_else(|e| fail(format!("--connect-timeout: {e}")));
                if secs <= 0.0 {
                    fail("--connect-timeout must be positive");
                }
                connect_timeout = Duration::from_secs_f64(secs);
                idx += 2;
            }
            "--timeout" => {
                let secs: f64 = take_value(&raw, idx, "--timeout")
                    .parse()
                    .unwrap_or_else(|e| fail(format!("--timeout: {e}")));
                // 0 disables the bound (block forever, the old behavior).
                call_timeout = (secs > 0.0).then(|| Duration::from_secs_f64(secs));
                idx += 2;
            }
            "--help" | "-h" => usage(),
            _ => break,
        }
    }
    let Some(command) = raw.get(idx) else { usage() };
    let args = Args::parse(&raw[idx + 1..]);
    let mut client = connect(
        unix.as_deref(),
        tcp.as_deref(),
        connect_timeout,
        call_timeout,
    );

    match command.as_str() {
        "ping" => {
            client.ping().unwrap_or_else(|e| fail(e));
            println!("pong");
        }
        "create" => cmd_create(&mut client, &args),
        "start" => {
            let name = args.positional(0, "experiment name");
            client
                .start(name, run_options(&args))
                .unwrap_or_else(|e| fail(e));
            println!("started {name}");
        }
        "pause" | "resume" | "abort" => {
            let name = args.positional(0, "experiment name");
            let result = match command.as_str() {
                "pause" => client.pause(name),
                "resume" => client.resume(name),
                _ => client.abort(name),
            };
            result.unwrap_or_else(|e| fail(e));
            println!("{command} {name}: ok");
        }
        "status" => {
            let name = args.positional(0, "experiment name");
            let status = client.status(name).unwrap_or_else(|e| fail(e));
            println!("{} {}", status.name, status.status.as_str());
        }
        "list" => {
            for row in client.list().unwrap_or_else(|e| fail(e)) {
                println!("{:<24} {}", row.name, row.status.as_str());
            }
        }
        "stats" => {
            let s = client.stats().unwrap_or_else(|e| fail(e));
            println!("connections_total   {}", s.connections_total);
            println!("connections_open    {}", s.connections_open);
            println!("requests            {}", s.requests);
            println!("subscriptions_open  {}", s.subscriptions_open);
            println!("events_sent         {}", s.events_sent);
            println!("events_lagged       {}", s.events_lagged);
        }
        "metrics" => {
            let snap = client.metrics().unwrap_or_else(|e| fail(e));
            print!("{}", snap.render());
        }
        "top" => cmd_top(&mut client, &args),
        "tail" => {
            let name = args.positional(0, "experiment name");
            follow(&mut client, name, args.num("from", 0u64), true);
        }
        "watch" => cmd_watch(&mut client, &args),
        "shutdown" => {
            client.shutdown().unwrap_or_else(|e| fail(e));
            println!("shutdown requested");
        }
        other => fail(format!("unknown command {other:?}")),
    }
}

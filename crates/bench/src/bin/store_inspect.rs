//! Inspect a durable experiment store on disk.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p asha-bench --bin store_inspect -- DIR
//! ```
//!
//! `DIR` may be a single experiment directory (contains `meta.json`) or a
//! supervisor root (contains `manifest.json`); for a root, every listed
//! experiment is inspected. For each experiment the tool prints the
//! metadata summary, the snapshot chain (sequence, covered events, file
//! size), and the WAL's shape: record counts, telemetry sequence range,
//! store markers, and whether a torn tail was discarded.

use std::path::Path;

use asha::store::{
    list_snapshots, read_manifest, read_meta, read_wal, Snapshot, StoreEvent, WalRecord,
    MANIFEST_FILE, META_FILE, WAL_FILE,
};

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn inspect_experiment(dir: &Path) {
    println!("experiment store: {}", dir.display());

    match read_meta(dir) {
        Ok(meta) => {
            println!("  name:      {}", meta.name);
            println!("  scheduler: {}", meta.initial.kind());
            println!(
                "  benchmark: {} (surface seed {})",
                meta.bench.preset, meta.bench.seed
            );
            println!("  run seed:  {}", meta.seed);
            println!(
                "  sim:       {} workers, horizon {}, stragglers {}, drop prob {}",
                meta.sim.workers, meta.sim.max_time, meta.sim.straggler_std, meta.sim.drop_prob
            );
        }
        Err(e) => println!("  meta: unreadable ({e})"),
    }

    match list_snapshots(dir) {
        Ok(snaps) if snaps.is_empty() => println!("  snapshots: none"),
        Ok(snaps) => {
            println!("  snapshots: {}", snaps.len());
            for (seq, path) in &snaps {
                let size = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                let events = std::fs::read_to_string(path)
                    .ok()
                    .and_then(|text| asha::metrics::JsonValue::parse(&text).ok())
                    .and_then(|v| Snapshot::from_json(&v).ok())
                    .map(|s| s.events);
                match events {
                    Some(events) => {
                        println!("    snap {seq:>6}: covers {events:>7} events, {size:>9} bytes")
                    }
                    None => println!("    snap {seq:>6}: UNREADABLE, {size:>9} bytes"),
                }
            }
        }
        Err(e) => println!("  snapshots: unreadable ({e})"),
    }

    let wal_path = dir.join(WAL_FILE);
    match read_wal(&wal_path) {
        Ok(contents) => {
            let telemetry: Vec<_> = contents.telemetry().collect();
            let stores = contents.records.len() - telemetry.len();
            println!(
                "  wal:       {} records ({} telemetry + {stores} store markers)",
                contents.records.len(),
                telemetry.len()
            );
            match (telemetry.first(), telemetry.last()) {
                (Some(first), Some(last)) => println!(
                    "    telemetry seq {}..={} over t [{:.3}, {:.3}]",
                    first.seq, last.seq, first.time, last.time
                ),
                _ => println!("    no telemetry yet"),
            }
            for record in &contents.records {
                if let WalRecord::Store { time, event } = record {
                    match event {
                        StoreEvent::Snapshot { snap, events } => println!(
                            "    t {time:>10.3}  snapshot marker: snap {snap} @ {events} events"
                        ),
                        other => println!("    t {time:>10.3}  {}", other.name()),
                    }
                }
            }
            if contents.torn_tail {
                println!("    torn tail: one partial final line discarded (crash mid-append)");
            }
        }
        Err(e) => println!("  wal: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = match args.as_slice() {
        [dir] if dir != "--help" && dir != "-h" => Path::new(dir),
        _ => {
            println!("usage: store_inspect <experiment-dir | supervisor-root>");
            std::process::exit(if args.is_empty() { 2 } else { 0 });
        }
    };

    let manifest_path = dir.join(MANIFEST_FILE);
    if manifest_path.exists() {
        let entries = read_manifest(&manifest_path).unwrap_or_else(|e| fail(e));
        println!(
            "supervisor root: {} ({} experiments)",
            dir.display(),
            entries.len()
        );
        for entry in &entries {
            println!("  {:<24} {}", entry.name, entry.status.as_str());
        }
        for entry in &entries {
            println!();
            inspect_experiment(&dir.join(&entry.name));
        }
        return;
    }

    if !dir.join(META_FILE).exists() {
        fail(format!(
            "{} has neither {MANIFEST_FILE} nor {META_FILE}",
            dir.display()
        ));
    }
    inspect_experiment(dir);
}

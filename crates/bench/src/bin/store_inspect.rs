//! Inspect a durable experiment store on disk.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p asha-bench --bin store_inspect -- [FLAGS] DIR
//!     --format NAME   decode the WAL with the named codec (jsonl-v1 |
//!                     binary-v2) instead of sniffing each file's magic —
//!                     forensics for a store whose header bytes are damaged
//!     --dump          print every WAL record as its JSONL line (binary
//!                     records are decoded and re-rendered as JSON)
//! ```
//!
//! `DIR` may be a single experiment directory (contains `meta.json`) or a
//! supervisor root (contains `manifest.json`); for a root, every listed
//! experiment is inspected. For each experiment the tool prints the
//! metadata summary, the checkpoint chain (full snapshots and their delta
//! chains: sequence, covered events, dialect, file size), and the WAL's
//! shape: detected dialect, record counts, telemetry sequence range, store
//! markers, and whether a torn tail was discarded. Dialects are detected
//! per file, so mixed-format stores (e.g. a `jsonl-v1` store resumed under
//! the binary codec) inspect cleanly.

use std::path::Path;

use asha::store::{
    read_manifest, read_meta, read_wal, DecodeStep, DeltaDoc, Snapshot, StoreFormat, WalContents,
    WalRecord, MANIFEST_FILE, META_FILE, WAL_FILE,
};

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

struct Opts {
    format: Option<StoreFormat>,
    dump: bool,
}

/// Decode a WAL with one specific codec, ignoring the file's own magic.
/// This is the `--format` escape hatch: when a header is damaged (or a
/// file was produced by a tool that forgot the magic), sniffing picks the
/// wrong dialect and the operator knows better.
fn read_wal_forced(path: &Path, format: StoreFormat) -> Result<WalContents, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let codec = format.wal_codec();
    let mut offset = if bytes.starts_with(codec.magic()) {
        codec.magic().len()
    } else {
        0
    };
    let mut contents = WalContents {
        records: Vec::new(),
        torn_tail: false,
        format,
    };
    while offset < bytes.len() {
        match codec.decode_step(&bytes[offset..]) {
            DecodeStep::Record { consumed, record } => {
                offset += consumed;
                contents.records.push(record);
            }
            DecodeStep::Blank { consumed } => offset += consumed,
            // Forced mode is forensics: treat anything undecodable as the
            // end of the usable prefix rather than failing the whole read.
            DecodeStep::Incomplete | DecodeStep::Invalid { .. } | DecodeStep::Lost(_) => {
                contents.torn_tail = true;
                break;
            }
        }
    }
    Ok(contents)
}

/// Read and decode one checkpoint document (full snapshot or delta),
/// reporting the dialect it was written in alongside the parsed value.
fn read_checkpoint_doc(path: &Path) -> Result<(StoreFormat, asha::metrics::JsonValue), String> {
    let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
    let format = StoreFormat::detect_document(&bytes);
    let doc = format.snapshot_codec().decode_document(&bytes)?;
    Ok((format, doc))
}

fn inspect_experiment(dir: &Path, opts: &Opts) {
    println!("experiment store: {}", dir.display());

    match read_meta(dir) {
        Ok(meta) => {
            println!("  name:      {}", meta.name);
            println!("  scheduler: {}", meta.initial.kind());
            println!(
                "  benchmark: {} (surface seed {})",
                meta.bench.preset, meta.bench.seed
            );
            println!("  run seed:  {}", meta.seed);
            println!(
                "  sim:       {} workers, horizon {}, stragglers {}, drop prob {}",
                meta.sim.workers, meta.sim.max_time, meta.sim.straggler_std, meta.sim.drop_prob
            );
        }
        Err(e) => println!("  meta: unreadable ({e})"),
    }

    inspect_checkpoints(dir);
    inspect_wal(dir, opts);
}

/// The checkpoint chain: every full snapshot in sequence order, each
/// followed by its delta chain (if any), with per-file dialect and size.
fn inspect_checkpoints(dir: &Path) {
    match asha::store::list_snapshots(dir) {
        Ok(snaps) if snaps.is_empty() => println!("  snapshots: none"),
        Ok(snaps) => {
            println!("  snapshots: {}", snaps.len());
            for (seq, path) in &snaps {
                let size = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                match read_checkpoint_doc(path).and_then(|(f, doc)| {
                    Ok((f, Snapshot::from_json(&doc).map_err(|e| e.to_string())?))
                }) {
                    Ok((format, snap)) => println!(
                        "    snap {seq:>6}: covers {:>7} events, {size:>9} bytes ({})",
                        snap.events,
                        format.name()
                    ),
                    Err(e) => println!("    snap {seq:>6}: UNREADABLE, {size:>9} bytes ({e})"),
                }
                // The delta chain hanging off this full snapshot, in chain
                // order; `load` validates each file's claimed position.
                for k in 1.. {
                    let Some(path) = [StoreFormat::BinaryV2, StoreFormat::JsonlV1]
                        .into_iter()
                        .map(|f| dir.join(asha::store::delta_file_name(*seq, k, f)))
                        .find(|p| p.exists())
                    else {
                        break;
                    };
                    let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                    match (DeltaDoc::load(dir, *seq, k), read_checkpoint_doc(&path)) {
                        (Ok(delta), Ok((format, _))) => println!(
                            "      delta {seq:>4}+{k}: covers {:>7} events, {size:>9} bytes ({})",
                            delta.events,
                            format.name()
                        ),
                        (Err(e), _) => {
                            println!("      delta {seq:>4}+{k}: UNREADABLE, {size:>9} bytes ({e})")
                        }
                        (_, Err(e)) => {
                            println!("      delta {seq:>4}+{k}: UNREADABLE, {size:>9} bytes ({e})")
                        }
                    }
                }
            }
        }
        Err(e) => println!("  snapshots: unreadable ({e})"),
    }
}

fn inspect_wal(dir: &Path, opts: &Opts) {
    let wal_path = dir.join(WAL_FILE);
    let dialect = std::fs::read(&wal_path)
        .map(|bytes| StoreFormat::detect_wal(&bytes))
        .unwrap_or_default();
    let contents = match opts.format {
        Some(format) => read_wal_forced(&wal_path, format).map_err(asha::store::Error::codec),
        None => read_wal(&wal_path),
    };
    match contents {
        Ok(contents) => {
            let telemetry: Vec<_> = contents.telemetry().collect();
            let stores = contents.records.len() - telemetry.len();
            println!(
                "  wal:       {} records ({} telemetry + {stores} store markers), {} dialect{}",
                contents.records.len(),
                telemetry.len(),
                opts.format.unwrap_or(dialect).name(),
                if opts.format.is_some() {
                    " (forced)"
                } else {
                    ""
                }
            );
            match (telemetry.first(), telemetry.last()) {
                (Some(first), Some(last)) => println!(
                    "    telemetry seq {}..={} over t [{:.3}, {:.3}]",
                    first.seq, last.seq, first.time, last.time
                ),
                _ => println!("    no telemetry yet"),
            }
            for record in &contents.records {
                if let WalRecord::Meta { time, event } = record {
                    println!("    t {time:>10.3}  {}", event.name());
                }
                if let WalRecord::SnapshotMarker { time, marker } = record {
                    match marker.delta() {
                        0 => println!(
                            "    t {time:>10.3}  snapshot marker: snap {} @ {} events",
                            marker.snap(),
                            marker.events()
                        ),
                        k => println!(
                            "    t {time:>10.3}  delta marker: snap {}+{k} @ {} events",
                            marker.snap(),
                            marker.events()
                        ),
                    }
                }
            }
            if contents.torn_tail {
                println!("    torn tail: one partial final record discarded (crash mid-append)");
            }
            if opts.dump {
                println!("  records:");
                for record in &contents.records {
                    println!("    {}", record.render_jsonl());
                }
            }
        }
        Err(e) => println!("  wal: {e}"),
    }
}

fn usage(code: i32) -> ! {
    println!("usage: store_inspect [--format jsonl-v1|binary-v2] [--dump] <experiment-dir | supervisor-root>");
    std::process::exit(code);
}

fn main() {
    let mut opts = Opts {
        format: None,
        dump: false,
    };
    let mut dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => usage(0),
            "--dump" => opts.dump = true,
            "--format" => {
                let name = args
                    .next()
                    .unwrap_or_else(|| fail("--format needs a value"));
                opts.format = Some(
                    StoreFormat::from_name(&name)
                        .unwrap_or_else(|| fail(format!("unknown format {name:?}"))),
                );
            }
            other if dir.is_none() && !other.starts_with('-') => dir = Some(other.to_owned()),
            other => fail(format!("unexpected argument {other:?}")),
        }
    }
    let Some(dir) = dir else { usage(2) };
    let dir = Path::new(&dir);

    let manifest_path = dir.join(MANIFEST_FILE);
    if manifest_path.exists() {
        let entries = read_manifest(&manifest_path).unwrap_or_else(|e| fail(e));
        println!(
            "supervisor root: {} ({} experiments)",
            dir.display(),
            entries.len()
        );
        for entry in &entries {
            println!("  {:<24} {}", entry.name, entry.status.as_str());
        }
        for entry in &entries {
            println!();
            inspect_experiment(&dir.join(&entry.name), &opts);
        }
        return;
    }

    if !dir.join(META_FILE).exists() {
        fail(format!(
            "{} has neither {MANIFEST_FILE} nor {META_FILE}",
            dir.display()
        ));
    }
    inspect_experiment(dir, &opts);
}

//! Figure 1 (right): the SHA promotion scheme for n = 9, r = 1, R = 9,
//! η = 3, for brackets s = 0, 1, 2 — plus the Section 3.1/3.2 wall-clock
//! facts and the paper-experiment-scale table (n = 256, η = 4).

use asha::core::budget;

fn print_bracket(n: usize, r: f64, max_r: f64, eta: f64, s: usize) {
    let rows = budget::promotion_table(n, r, max_r, eta, s);
    for row in &rows {
        println!(
            "{s:>8} {:>6} {:>6} {:>10} {:>14}",
            row.rung, row.num_configs, row.resource, row.budget
        );
    }
    println!(
        "{:>8} {:>6} {:>6} {:>10} {:>14.0}  (bracket total)",
        "",
        "",
        "",
        "",
        budget::bracket_budget(n, r, max_r, eta, s)
    );
}

fn main() {
    println!("Figure 1 (right): promotion scheme for n=9, r=1, R=9, eta=3");
    println!(
        "{:>8} {:>6} {:>6} {:>10} {:>14}",
        "bracket", "rung", "n_i", "r_i", "budget"
    );
    for s in 0..=2 {
        print_bracket(9, 1.0, 9.0, 3.0, s);
    }

    println!("\nSection 3.1/3.2 wall-clock facts (units of time(R)):");
    println!(
        "  synchronous SHA time to a fully-trained config (bracket 0): {}",
        budget::sha_time_to_completion(1.0, 9.0, 3.0, 0)
    );
    println!(
        "  ASHA time with {} machines: {:.4} (= 13/9)",
        budget::asha_workers_for_full_throughput(1.0, 9.0, 3.0, 0),
        budget::asha_time_to_completion(1.0, 9.0, 3.0, 0)
    );
    for (r, max_r, eta, label) in [
        (1.0, 256.0, 4.0, "paper experiments (R/r=256, eta=4)"),
        (1.0, 1024.0, 2.0, "eta=2 stress"),
    ] {
        println!(
            "  ASHA bound check [{label}]: {:.4} <= 2",
            budget::asha_time_to_completion(r, max_r, eta, 0)
        );
    }

    println!("\nSections 4.1-4.2 scale: promotion scheme for n=256, r=1, R=256, eta=4");
    println!(
        "{:>8} {:>6} {:>6} {:>10} {:>14}",
        "bracket", "rung", "n_i", "r_i", "budget"
    );
    print_bracket(256, 1.0, 256.0, 4.0, 0);
}

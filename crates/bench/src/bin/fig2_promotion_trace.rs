//! Figure 2: chronological job traces of synchronous SHA vs ASHA on
//! bracket 0 of the toy setting (r = 1, R = 9, η = 3), run on a single
//! worker with deterministic losses (configuration `i` has loss `i`; lower
//! is better, so configurations 0, 1, 2 are the promotion-worthy ones).

use asha::core::{Asha, AshaConfig, Decision, Observation, Scheduler, ShaConfig, SyncSha};
use asha::space::{Scale, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn toy_space() -> SearchSpace {
    SearchSpace::builder()
        .continuous("x", 0.0, 1.0, Scale::Linear)
        .build()
        .expect("valid space")
}

/// Run a scheduler serially, completing each job immediately with loss =
/// trial id, and return the chronological (trial, rung, budget) list.
fn serial_trace<S: Scheduler>(mut scheduler: S, max_jobs: usize) -> Vec<(u64, usize, f64)> {
    let mut rng = StdRng::seed_from_u64(0);
    let mut out = Vec::new();
    while out.len() < max_jobs {
        match scheduler.suggest(&mut rng) {
            Decision::Run(job) => {
                out.push((job.trial.0, job.rung, job.resource));
                scheduler.observe(Observation::for_job(&job, job.trial.0 as f64));
            }
            Decision::Finished => break,
            Decision::Wait => unreachable!("single worker never waits"),
        }
    }
    out
}

fn print_trace(title: &str, trace: &[(u64, usize, f64)]) {
    println!("\n{title}");
    println!("{:>5} {:>8} {:>6} {:>8}", "job", "config", "rung", "budget");
    for (i, (trial, rung, budget)) in trace.iter().enumerate() {
        println!("{:>5} {:>8} {:>6} {:>8}", i + 1, trial, rung, budget);
    }
}

fn main() {
    println!("Figure 2: promotion schemes of SHA vs ASHA (bracket 0, r=1, R=9, eta=3)");

    let sha = SyncSha::new(toy_space(), ShaConfig::new(9, 1.0, 9.0, 3.0));
    let sha_trace = serial_trace(sha, 13);
    print_trace("Successive Halving (Synchronous):", &sha_trace);

    let asha = Asha::new(toy_space(), AshaConfig::new(1.0, 9.0, 3.0));
    let asha_trace = serial_trace(asha, 13);
    print_trace("Successive Halving (Asynchronous):", &asha_trace);

    // The structural claims of the figure, checked programmatically.
    let sha_first_promo = sha_trace.iter().position(|&(_, rung, _)| rung == 1);
    let asha_first_promo = asha_trace.iter().position(|&(_, rung, _)| rung == 1);
    println!(
        "\nSHA first promotion at job {} (after the whole rung of 9); \
         ASHA at job {} (as soon as eta configs have completed).",
        sha_first_promo.map_or(0, |i| i + 1),
        asha_first_promo.map_or(0, |i| i + 1)
    );
    assert_eq!(sha_first_promo, Some(9));
    assert_eq!(asha_first_promo, Some(3));
    println!("ASHA keeps each rung at ~1/eta of the rung below while growing the bottom rung.");
}

//! Figure 7 (Appendix A.1): the number of configurations trained to the
//! maximum resource R within 2000 time units, as drop probability and
//! straggler variance grow — ASHA vs synchronous SHA, simulated workloads.
//!
//! Paper settings: η = 4, r = 1, R = 256, n = 256; "the expected training
//! time for each job is the same as the allocated resource" (so the resume
//! policy is from-scratch and the surrogate cost is 1 time unit per resource
//! unit); stragglers multiply expected time by `1 + |z|`,
//! `z ~ N(0, std)`; jobs drop with probability `p` per time unit.

use asha::core::{Asha, AshaConfig, Scheduler, ShaConfig, SyncSha};
use asha::metrics::write_csv;
use asha::sim::{ClusterSim, ResumePolicy, SimConfig};
use asha::space::{Scale, SearchSpace};
use asha::surrogate::BenchmarkModel;
use asha::surrogate::CurveBenchmark;
use rand::rngs::StdRng;
use rand::SeedableRng;

const R: f64 = 256.0;
const ETA: f64 = 4.0;
const HORIZON: f64 = 2000.0;
const WORKERS: usize = 25;
const SIMS: usize = 25;

/// A featureless benchmark whose cost is exactly 1 time unit per resource
/// unit — the Appendix A.1 workload (losses are irrelevant to the metric).
fn unit_cost_benchmark() -> CurveBenchmark {
    let space = SearchSpace::builder()
        .continuous("x", 0.0, 1.0, Scale::Linear)
        .build()
        .expect("valid space");
    CurveBenchmark::builder("unit-cost", space, R, 7)
        .cost(R, &[0.0])
        .noise(0.01, 0.01)
        .build()
}

fn count_completed<S: Scheduler>(make: impl Fn() -> S, std: f64, p: f64, seed: u64) -> f64 {
    let bench = unit_cost_benchmark();
    let mut total = 0usize;
    for sim_idx in 0..SIMS {
        let mut rng = StdRng::seed_from_u64(seed + sim_idx as u64);
        let sim = ClusterSim::new(
            SimConfig::new(WORKERS, HORIZON)
                .with_stragglers(std)
                .with_drops(p)
                .with_resume(ResumePolicy::FromScratch),
        );
        let result = sim.run(make(), &bench, &mut rng);
        total += result.trace.configs_trained_to(R, HORIZON);
    }
    total as f64 / SIMS as f64
}

fn main() {
    println!(
        "Figure 7: configs trained to R within {HORIZON} time units ({WORKERS} workers, {SIMS} sims/cell)"
    );
    let stds = [0.10, 0.24, 0.56, 1.33];
    let drops = [0.0, 2e-3, 4e-3, 6e-3, 8e-3, 1e-2];
    let space = unit_cost_benchmark().space().clone();
    let mut rows = Vec::new();
    println!(
        "{:>10} {:>10} {:>12} {:>12}",
        "train std", "drop prob", "ASHA", "SHA"
    );
    for &std in &stds {
        for (i, &p) in drops.iter().enumerate() {
            let space_a = space.clone();
            let asha = count_completed(
                move || Asha::new(space_a.clone(), AshaConfig::new(1.0, R, ETA)),
                std,
                p,
                1000 + i as u64,
            );
            let space_s = space.clone();
            let sha = count_completed(
                move || SyncSha::new(space_s.clone(), ShaConfig::new(256, 1.0, R, ETA).growing()),
                std,
                p,
                2000 + i as u64,
            );
            println!("{std:>10.2} {p:>10.4} {asha:>12.1} {sha:>12.1}");
            rows.push(vec![std, p, asha, sha]);
        }
        println!();
    }
    if let Err(e) = write_csv(
        "results/fig7_stragglers.csv",
        &[
            "train_std",
            "drop_prob",
            "asha_configs_at_r",
            "sha_configs_at_r",
        ],
        &rows,
    ) {
        eprintln!("warning: {e}");
    }
    println!("Expected shape (paper): ASHA trains many more configurations to R, and its");
    println!("advantage grows with straggler variance and drop probability.");
}

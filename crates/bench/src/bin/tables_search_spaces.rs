//! Tables 1–3 (and the remaining benchmark spaces): the hyperparameter
//! search spaces of the paper, as encoded in `asha::space::presets`.

use asha::space::presets;

fn main() {
    println!("Table 1: hyperparameters for the small CNN architecture tuning task");
    println!("{}", presets::small_cnn_space());
    println!("Table 2: hyperparameters for the PTB LSTM task (Section 4.3)");
    println!("{}", presets::ptb_lstm_space());
    println!("Table 3: hyperparameters for the 16-GPU near-SOTA LSTM task (Section 4.3.1)");
    println!("{}", presets::dropconnect_lstm_space());
    println!("Benchmark 1 (Sections 4.1-4.2): cuda-convnet CIFAR-10 search space (Li et al. 2017)");
    println!("{}", presets::cuda_convnet_space());
    println!("Appendix A.2: kernel-SVM search space (Klein et al. 2017)");
    println!("{}", presets::svm_space());
}

//! Command-line front end: tune any surrogate benchmark with any searcher
//! on a simulated cluster.
//!
//! ```text
//! cargo run --release -p asha-bench --bin tune_sim -- \
//!     --bench ptb-lstm --searcher asha --workers 100 --horizon 4 --seed 3
//! ```
//!
//! Flags (all optional except `--bench`):
//!   --bench       cuda-convnet | small-cnn | svhn | ptb-lstm | dropconnect |
//!                 svm-vehicle | svm-mnist
//!   --searcher    asha | sha | hyperband | async-hyperband | bohb | pbt |
//!                 vizier | fabolas | random           (default asha)
//!   --workers     worker count                        (default 25)
//!   --horizon     simulated-time budget               (default 10 x time(R))
//!   --stragglers  straggler std (1+|z|)               (default 0)
//!   --drops       per-time-unit drop probability      (default 0)
//!   --seed        RNG seed                            (default 0)

use asha::surrogate::{presets, BenchmarkModel, CurveBenchmark};
use asha::tune::{Searcher, SimTune};

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn benchmark_by_name(name: &str) -> Option<CurveBenchmark> {
    let seed = presets::DEFAULT_SURFACE_SEED;
    Some(match name {
        "cuda-convnet" => presets::cifar10_cuda_convnet(seed),
        "small-cnn" => presets::cifar10_small_cnn(seed),
        "svhn" => presets::svhn_small_cnn(seed),
        "ptb-lstm" => presets::ptb_lstm(seed),
        "dropconnect" => presets::ptb_dropconnect_lstm(seed),
        "svm-vehicle" => presets::svm_vehicle(seed),
        "svm-mnist" => presets::svm_mnist(seed),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(bench_name) = parse_flag(&args, "--bench") else {
        eprintln!("usage: tune_sim --bench <name> [--searcher asha] [--workers 25] ...");
        eprintln!(
            "benchmarks: cuda-convnet small-cnn svhn ptb-lstm dropconnect svm-vehicle svm-mnist"
        );
        std::process::exit(2);
    };
    let Some(bench) = benchmark_by_name(&bench_name) else {
        eprintln!("unknown benchmark `{bench_name}`");
        std::process::exit(2);
    };
    let searcher_name = parse_flag(&args, "--searcher").unwrap_or_else(|| "asha".into());
    let Some(searcher) = Searcher::from_name(&searcher_name, bench.max_resource()) else {
        eprintln!("unknown searcher `{searcher_name}`");
        std::process::exit(2);
    };
    let workers: usize = parse_flag(&args, "--workers")
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    let horizon: f64 = parse_flag(&args, "--horizon")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| bench.time_full(&bench.space().default_config()) * 10.0);
    let stragglers: f64 = parse_flag(&args, "--stragglers")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0);
    let drops: f64 = parse_flag(&args, "--drops")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0);
    let seed: u64 = parse_flag(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    println!(
        "tuning `{}` with {searcher_name} on {workers} simulated workers for {horizon:.1} time units",
        bench.name()
    );
    let outcome = SimTune::new(&bench)
        .searcher(searcher)
        .workers(workers)
        .horizon(horizon)
        .stragglers(stragglers)
        .drops(drops)
        .seed(seed)
        .run();

    println!(
        "\ncompleted {} jobs over {} configurations ({} dropped), sim time {:.1}",
        outcome.jobs_completed,
        outcome.configs_evaluated,
        outcome.faults.jobs_dropped,
        outcome.end_time
    );
    match &outcome.best {
        Some(best) => {
            println!(
                "best validation loss {:.4} at resource {:.0}:",
                best.val_loss, best.resource
            );
            for pair in best.summary.split(' ') {
                println!("    {pair}");
            }
        }
        None => println!("no job completed within the horizon"),
    }
    println!("\nincumbent trajectory (last 5 improvements):");
    let curve = outcome.trace.incumbent_curve();
    for &(t, v) in curve
        .points()
        .iter()
        .rev()
        .take(5)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        println!("    t = {t:9.2}   test loss = {v:.4}");
    }
}

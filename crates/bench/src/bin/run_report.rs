//! Replay a telemetry event log (JSONL) into a human-readable run summary
//! and, optionally, a machine-readable `report.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p asha-bench --bin run_report -- events.jsonl
//!     [--workers N]     pool size for utilization percentages
//!     [--json PATH]     also write the JSON report document
//!     [--demo]          generate events.jsonl first from a seeded 25-worker
//!                       chaos simulation (stragglers + drops), then report on
//!                       it — a self-contained worked example
//!     [--seed N]        RNG seed for --demo (default 0)
//!     [--scheduler K]   scheduler for --demo: asha (default) or dasha
//!     [--sampler K]     config sampler for --demo: random (default), tpe, gp
//!     [--store DIR]     run the --demo through the durable experiment store:
//!                       every event goes to DIR/wal.jsonl and snapshots are
//!                       taken periodically, so the run is crash-recoverable
//!     [--crash-after-jobs N]
//!                       with --store: die abruptly (SIGABRT, no cleanup)
//!                       once N jobs have completed — for exercising recovery
//!     [--resume DIR]    recover a crashed/aborted store run from DIR, finish
//!                       it, and report on the completed log
//!     [--snapshot-jobs N]
//!                       snapshot cadence for --store/--resume (default 200)
//!     [--wal-format NAME]
//!                       on-disk dialect for new store files: jsonl-v1 or
//!                       binary-v2 (default). Resume keeps an existing WAL's
//!                       own dialect regardless.
//!     [--delta-chain N] max delta snapshots between full snapshots for
//!                       --store/--resume (0 = always full; default 8)
//! ```
//!
//! The report is derived entirely from the log, so it reproduces exactly the
//! metrics the live run's recorder saw: per-rung promotion table, decision
//! and fault counts, promotion-wait / job-latency / queue-delay quantiles,
//! and a worker-utilization timeline. A `--store` run that crashed and was
//! `--resume`d produces the same telemetry stream — and therefore the same
//! report — as one that never crashed.

use std::path::Path;

use asha::core::{Asha, AshaConfig, DAsha, Scheduler};
use asha::obs::{parse_jsonl, Event, RunRecorder, RunReport};
use asha::sim::{ClusterSim, SimConfig};
use asha::space::SearchSpace;
use asha::store::{
    make_sampler, read_meta, read_wal, BenchSpec, DurableRun, ExperimentMeta, RunOptions,
    SchedulerState,
};
use asha::surrogate::{presets, BenchmarkModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Worker count used by `--demo` (the paper's small-cluster regime).
const DEMO_WORKERS: usize = 25;

struct Opts {
    log: Option<String>,
    workers: Option<usize>,
    json: Option<String>,
    demo: bool,
    seed: u64,
    scheduler: String,
    sampler: Option<String>,
    store: Option<String>,
    crash_after_jobs: Option<usize>,
    resume: Option<String>,
    snapshot_jobs: Option<usize>,
    wal_format: Option<String>,
    delta_chain: Option<usize>,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        log: None,
        workers: None,
        json: None,
        demo: false,
        seed: 0,
        scheduler: "asha".to_owned(),
        sampler: None,
        store: None,
        crash_after_jobs: None,
        resume: None,
        snapshot_jobs: None,
        wal_format: None,
        delta_chain: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => opts.workers = args.next().and_then(|v| v.parse().ok()),
            "--json" => opts.json = args.next(),
            "--demo" => opts.demo = true,
            "--seed" => opts.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(0),
            "--scheduler" => {
                opts.scheduler = args
                    .next()
                    .unwrap_or_else(|| fail("--scheduler needs a value"))
            }
            "--sampler" => match args.next().as_deref() {
                None => fail("--sampler needs a value"),
                Some("random") => opts.sampler = None,
                Some(kind) => opts.sampler = Some(kind.to_owned()),
            },
            "--store" => opts.store = args.next(),
            "--crash-after-jobs" => {
                opts.crash_after_jobs = args.next().and_then(|v| v.parse().ok())
            }
            "--resume" => opts.resume = args.next(),
            "--snapshot-jobs" => opts.snapshot_jobs = args.next().and_then(|v| v.parse().ok()),
            "--wal-format" => opts.wal_format = args.next(),
            "--delta-chain" => opts.delta_chain = args.next().and_then(|v| v.parse().ok()),
            "--help" | "-h" => {
                println!(
                    "usage: run_report <events.jsonl> [--workers N] [--json PATH] [--demo] \
                     [--seed N] [--store DIR] [--crash-after-jobs N] [--resume DIR] \
                     [--snapshot-jobs N] [--wal-format NAME] [--delta-chain N]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with("--") && opts.log.is_none() => {
                opts.log = Some(other.to_owned());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// Build the demo scheduler (with its model-based sampler attached, if any)
/// for the chosen `--scheduler`/`--sampler` kinds. Kept concrete so the
/// exported state carries the right embedded name ("ASHA+tpe", "D-ASHA", …).
fn demo_initial(scheduler: &str, sampler: &Option<String>, space: &SearchSpace) -> SchedulerState {
    let config = AshaConfig::new(1.0, 256.0, 4.0);
    let build =
        || make_sampler(sampler.as_deref().unwrap_or("random"), space).unwrap_or_else(|e| fail(e));
    match scheduler {
        "asha" => {
            SchedulerState::Asha(Asha::with_sampler(space.clone(), config, build()).export_state())
        }
        "dasha" => SchedulerState::DAsha(
            DAsha::with_sampler(space.clone(), config, build()).export_state(),
        ),
        other => fail(format!("--scheduler: unknown kind {other:?} (asha/dasha)")),
    }
}

/// The `--demo` experiment: the same seeded 25-worker chaos simulation the
/// plain demo runs, described as durable-store metadata.
fn demo_meta(seed: u64, scheduler: &str, sampler: &Option<String>) -> ExperimentMeta {
    let spec = BenchSpec {
        preset: "cifar10_cuda_convnet".to_owned(),
        seed: presets::DEFAULT_SURFACE_SEED,
    };
    let bench = spec.build().expect("demo preset exists");
    let space = bench.space().clone();
    ExperimentMeta {
        name: "run-report-demo".to_owned(),
        initial: demo_initial(scheduler, sampler, &space),
        space,
        sampler: sampler.clone(),
        seed,
        sim: SimConfig::new(DEMO_WORKERS, 60.0)
            .with_stragglers(0.5)
            .with_drops(0.01),
        bench: spec,
    }
}

/// Run a seeded 25-worker chaos simulation (stragglers + drops) with
/// recording on and write its event log to `path`.
fn write_demo_log(path: &str, seed: u64, scheduler: &str, sampler: &Option<String>) {
    let bench = presets::cifar10_cuda_convnet(presets::DEFAULT_SURFACE_SEED);
    let space = bench.space().clone();
    let config = AshaConfig::new(1.0, 256.0, 4.0);
    let build =
        || make_sampler(sampler.as_deref().unwrap_or("random"), &space).unwrap_or_else(|e| fail(e));
    let sched: Box<dyn Scheduler> = match scheduler {
        "asha" => Box::new(Asha::with_sampler(space.clone(), config, build())),
        "dasha" => Box::new(DAsha::with_sampler(space.clone(), config, build())),
        other => fail(format!("--scheduler: unknown kind {other:?} (asha/dasha)")),
    };
    let sim = ClusterSim::new(
        SimConfig::new(DEMO_WORKERS, 60.0)
            .with_stragglers(0.5)
            .with_drops(0.01),
    );
    let mut recorder = RunRecorder::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let result = sim.run_recorded(sched, &bench, &mut rng, &mut recorder);
    if let Err(e) = recorder.write_jsonl_durable(path) {
        fail(format!("failed to write {path}: {e}"));
    }
    println!(
        "demo: simulated {} jobs on {DEMO_WORKERS} workers (seed {seed}), wrote {} events to {path}\n",
        result.jobs_completed,
        recorder.len(),
    );
}

/// Run the demo through the durable store, optionally dying abruptly after
/// `crash_after_jobs` completed jobs.
fn run_demo_store(dir: &Path, opts: &Opts, run_opts: RunOptions) {
    let meta = demo_meta(opts.seed, &opts.scheduler, &opts.sampler);
    let seed = opts.seed;
    let bench = meta.bench.build().unwrap_or_else(|e| fail(e));
    let mut run = DurableRun::create(dir, &meta, &bench, run_opts).unwrap_or_else(|e| fail(e));
    if let Some(jobs) = opts.crash_after_jobs {
        let alive = run.run_until_jobs(jobs).unwrap_or_else(|e| fail(e));
        if alive {
            println!(
                "store demo: {} jobs completed in {}, crashing now (no cleanup)",
                run.jobs_completed(),
                dir.display()
            );
            // Die like SIGKILL would: no destructors, no flushes. Recovery
            // must work from exactly what is already on disk.
            std::process::abort();
        }
        // The run finished before reaching the crash point; fall through.
    }
    while run.step().unwrap_or_else(|e| fail(e)) {}
    let result = run.into_result();
    println!(
        "store demo: simulated {} jobs on {DEMO_WORKERS} workers (seed {seed}), store in {}\n",
        result.jobs_completed,
        dir.display()
    );
}

/// Recover a store run from `dir` and drive it to completion.
fn resume_store(dir: &Path, opts: RunOptions) {
    let meta = read_meta(dir).unwrap_or_else(|e| fail(e));
    let bench = meta.bench.build().unwrap_or_else(|e| fail(e));
    let mut run = DurableRun::resume(dir, &meta, &bench, opts).unwrap_or_else(|e| fail(e));
    let recovered_jobs = run.jobs_completed();
    while run.step().unwrap_or_else(|e| fail(e)) {}
    let result = run.into_result();
    println!(
        "resumed {:?} from {} at {recovered_jobs} jobs; finished with {} jobs\n",
        meta.name,
        dir.display(),
        result.jobs_completed
    );
}

/// The telemetry stream of a store directory's WAL (store markers skipped).
fn wal_events(dir: &Path) -> Vec<Event> {
    let contents = read_wal(&dir.join(asha::store::WAL_FILE)).unwrap_or_else(|e| fail(e));
    contents.telemetry().copied().collect()
}

fn main() {
    let mut opts = parse_opts();

    // Store-backed paths: the report comes from the WAL, not a loose log.
    let mut run_opts = RunOptions::default();
    if let Some(jobs) = opts.snapshot_jobs {
        run_opts.snapshot_jobs = jobs.max(1);
    }
    if let Some(name) = &opts.wal_format {
        run_opts.format = asha::store::StoreFormat::from_name(name)
            .unwrap_or_else(|| fail(format!("unknown --wal-format {name:?}")));
    }
    if let Some(chain) = opts.delta_chain {
        run_opts.delta_chain = chain;
    }
    let store_dir = if let Some(dir) = &opts.resume {
        resume_store(Path::new(dir), run_opts);
        Some(dir.clone())
    } else if let (true, Some(dir)) = (opts.demo, opts.store.clone()) {
        run_demo_store(Path::new(&dir), &opts, run_opts);
        Some(dir)
    } else {
        None
    };
    if let Some(dir) = store_dir {
        let dir = Path::new(&dir);
        let events = wal_events(dir);
        let meta = read_meta(dir).unwrap_or_else(|e| fail(e));
        let workers = opts.workers.unwrap_or(meta.sim.workers);
        let report = RunReport::from_events(&events, Some(workers));
        print!("{}", report.render_text());
        if let Some(json_path) = opts.json {
            match asha::metrics::write_json(&json_path, &report.to_json()) {
                Ok(()) => println!("\nwrote {json_path}"),
                Err(e) => fail(e),
            }
        }
        return;
    }

    if opts.demo {
        let path = opts
            .log
            .clone()
            .unwrap_or_else(|| "events.jsonl".to_owned());
        write_demo_log(&path, opts.seed, &opts.scheduler, &opts.sampler);
        opts.log = Some(path);
        opts.workers = opts.workers.or(Some(DEMO_WORKERS));
    }
    let Some(log_path) = opts.log else {
        eprintln!(
            "usage: run_report <events.jsonl> [--workers N] [--json PATH] [--demo] \
             [--store DIR] [--crash-after-jobs N] [--resume DIR] \
             [--wal-format NAME] [--delta-chain N]"
        );
        std::process::exit(2);
    };

    let text = match std::fs::read_to_string(&log_path) {
        Ok(text) => text,
        Err(e) => fail(format!("cannot read {log_path}: {e}")),
    };
    let events = match parse_jsonl(&text) {
        Ok(events) => events,
        Err(e) => fail(format!("{log_path}: {e}")),
    };

    let report = RunReport::from_events(&events, opts.workers);
    print!("{}", report.render_text());

    if let Some(json_path) = opts.json {
        match asha::metrics::write_json(&json_path, &report.to_json()) {
            Ok(()) => println!("\nwrote {json_path}"),
            Err(e) => fail(e),
        }
    }
}

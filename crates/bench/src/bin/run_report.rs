//! Replay a telemetry event log (JSONL) into a human-readable run summary
//! and, optionally, a machine-readable `report.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p asha-bench --bin run_report -- events.jsonl
//!     [--workers N]     pool size for utilization percentages
//!     [--json PATH]     also write the JSON report document
//!     [--demo]          generate events.jsonl first from a seeded 25-worker
//!                       chaos simulation (stragglers + drops), then report on
//!                       it — a self-contained worked example
//!     [--seed N]        RNG seed for --demo (default 0)
//! ```
//!
//! The report is derived entirely from the log, so it reproduces exactly the
//! metrics the live run's recorder saw: per-rung promotion table, decision
//! and fault counts, promotion-wait / job-latency / queue-delay quantiles,
//! and a worker-utilization timeline.

use asha_core::{Asha, AshaConfig};
use asha_obs::{parse_jsonl, RunRecorder, RunReport};
use asha_sim::{ClusterSim, SimConfig};
use asha_surrogate::{presets, BenchmarkModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Worker count used by `--demo` (the paper's small-cluster regime).
const DEMO_WORKERS: usize = 25;

struct Opts {
    log: Option<String>,
    workers: Option<usize>,
    json: Option<String>,
    demo: bool,
    seed: u64,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        log: None,
        workers: None,
        json: None,
        demo: false,
        seed: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => opts.workers = args.next().and_then(|v| v.parse().ok()),
            "--json" => opts.json = args.next(),
            "--demo" => opts.demo = true,
            "--seed" => opts.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(0),
            "--help" | "-h" => {
                println!(
                    "usage: run_report <events.jsonl> [--workers N] [--json PATH] [--demo] [--seed N]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with("--") && opts.log.is_none() => {
                opts.log = Some(other.to_owned());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Run a seeded 25-worker chaos simulation (stragglers + drops) with
/// recording on and write its event log to `path`.
fn write_demo_log(path: &str, seed: u64) {
    let bench = presets::cifar10_cuda_convnet(presets::DEFAULT_SURFACE_SEED);
    let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
    let sim = ClusterSim::new(
        SimConfig::new(DEMO_WORKERS, 60.0)
            .with_stragglers(0.5)
            .with_drops(0.01),
    );
    let mut recorder = RunRecorder::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let result = sim.run_recorded(asha, &bench, &mut rng, &mut recorder);
    if let Err(e) = recorder.write_jsonl(path) {
        eprintln!("error: failed to write {path}: {e}");
        std::process::exit(1);
    }
    println!(
        "demo: simulated {} jobs on {DEMO_WORKERS} workers (seed {seed}), wrote {} events to {path}\n",
        result.jobs_completed,
        recorder.len(),
    );
}

fn main() {
    let mut opts = parse_opts();
    if opts.demo {
        let path = opts
            .log
            .clone()
            .unwrap_or_else(|| "events.jsonl".to_owned());
        write_demo_log(&path, opts.seed);
        opts.log = Some(path);
        opts.workers = opts.workers.or(Some(DEMO_WORKERS));
    }
    let Some(log_path) = opts.log else {
        eprintln!("usage: run_report <events.jsonl> [--workers N] [--json PATH] [--demo]");
        std::process::exit(2);
    };

    let text = match std::fs::read_to_string(&log_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {log_path}: {e}");
            std::process::exit(1);
        }
    };
    let events = match parse_jsonl(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("error: {log_path}: {e}");
            std::process::exit(1);
        }
    };

    let report = RunReport::from_events(&events, opts.workers);
    print!("{}", report.render_text());

    if let Some(json_path) = opts.json {
        match asha_metrics::write_json(&json_path, &report.to_json()) {
            Ok(()) => println!("\nwrote {json_path}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}

//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! 1. **Promotion scan order** — Algorithm 2's top-down scan vs a bottom-up
//!    alternative (which keeps lower rungs flowing but delays full-budget
//!    results).
//! 2. **Resume policy** — checkpointed promotions (Section 3.2's iterative
//!    setting) vs retraining from scratch at every rung.
//! 3. **Early-stopping rate `s`** — the paper argues aggressive early
//!    stopping (`s = 0`) works best (Section 2's discussion of Li et al.
//!    2018); this sweeps `s = 0..=3` on benchmark 2.
//! 4. **Reduction factor `eta`** — 2 vs 4 vs 8 on the same budget.

use asha::core::{Asha, AshaConfig, ScanOrder};
use asha::sim::{ResumePolicy, SimConfig};
use asha::surrogate::{presets, BenchmarkModel};
use asha_bench::{
    print_comparison, run_experiment_parallel, threads_from_args, ExperimentConfig, MethodSpec,
};

const R: f64 = 256.0;

fn main() {
    let bench = presets::cifar10_small_cnn(presets::DEFAULT_SURFACE_SEED);
    let space = bench.space().clone();

    // 1. Scan order.
    let s1 = space.clone();
    let s2 = space.clone();
    let methods = vec![
        MethodSpec::new("top-down (paper)", move || {
            Asha::new(s1.clone(), AshaConfig::new(1.0, R, 4.0))
        }),
        MethodSpec::new("bottom-up", move || {
            Asha::new(
                s2.clone(),
                AshaConfig::new(1.0, R, 4.0).with_scan_order(ScanOrder::BottomUp),
            )
        }),
    ];
    let cfg = ExperimentConfig::new(25, 150.0, 5, 0.9);
    let results = run_experiment_parallel(&bench, &methods, &cfg, threads_from_args());
    print_comparison(
        "Ablation 1 — promotion scan order (benchmark 2, 25 workers)",
        &results,
        &[25.0, 50.0, 100.0, 150.0],
    );

    // 2. Resume policy.
    let s3 = space.clone();
    let methods = vec![MethodSpec::new("ASHA", move || {
        Asha::new(s3.clone(), AshaConfig::new(1.0, R, 4.0))
    })];
    let mut ckpt_cfg = ExperimentConfig::new(25, 150.0, 5, 0.9);
    ckpt_cfg.sim_tweak = |c: SimConfig| c.with_resume(ResumePolicy::Checkpoint);
    let mut scratch_cfg = ExperimentConfig::new(25, 150.0, 5, 0.9);
    scratch_cfg.sim_tweak = |c: SimConfig| c.with_resume(ResumePolicy::FromScratch);
    let ckpt = run_experiment_parallel(&bench, &methods, &ckpt_cfg, threads_from_args());
    let scratch = run_experiment_parallel(&bench, &methods, &scratch_cfg, threads_from_args());
    println!("\n== Ablation 2 — resume policy (benchmark 2, 25 workers) ==");
    println!("{:>22} {:>14} {:>14}", "", "checkpoint", "from-scratch");
    println!(
        "{:>22} {:>14.4} {:>14.4}",
        "final mean test error",
        ckpt[0].aggregate.final_mean(),
        scratch[0].aggregate.final_mean()
    );
    println!(
        "{:>22} {:>14.0} {:>14.0}",
        "configs/trial", ckpt[0].mean_configs, scratch[0].mean_configs
    );

    // 3. Early-stopping rate s.
    let methods: Vec<MethodSpec> = (0..=3)
        .map(|s| {
            let sp = space.clone();
            MethodSpec::new(&format!("s = {s}"), move || {
                Asha::new(sp.clone(), AshaConfig::new(1.0, R, 4.0).with_stop_rate(s))
            })
        })
        .collect();
    let results = run_experiment_parallel(&bench, &methods, &cfg, threads_from_args());
    print_comparison(
        "Ablation 3 — early-stopping rate (benchmark 2, 25 workers)",
        &results,
        &[25.0, 50.0, 100.0, 150.0],
    );

    // 4. Reduction factor eta.
    let methods: Vec<MethodSpec> = [2.0, 4.0, 8.0]
        .iter()
        .map(|&eta| {
            let sp = space.clone();
            MethodSpec::new(&format!("eta = {eta}"), move || {
                Asha::new(sp.clone(), AshaConfig::new(1.0, R, eta))
            })
        })
        .collect();
    let results = run_experiment_parallel(&bench, &methods, &cfg, threads_from_args());
    print_comparison(
        "Ablation 4 — reduction factor (benchmark 2, 25 workers)",
        &results,
        &[25.0, 50.0, 100.0, 150.0],
    );

    // 5. Incumbent accounting (Section 3.3): intermediate losses vs
    //    final-rung-only outputs.
    {
        use asha::core::Scheduler as _;
        use asha::sim::ClusterSim;
        let asha = asha::core::Asha::new(space.clone(), AshaConfig::new(1.0, R, 4.0));
        let _ = asha.name();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        use rand::SeedableRng as _;
        let result = ClusterSim::new(SimConfig::new(25, 150.0)).run(asha, &bench, &mut rng);
        let by_any = result.trace.incumbent_curve();
        let final_only = result.trace.incumbent_curve_final_only(R);
        println!("\n== Ablation 5 — incumbent accounting (Section 3.3) ==");
        println!(
            "{:>8} {:>22} {:>22}",
            "time", "intermediate losses", "final-rung only"
        );
        for t in [15.0, 30.0, 60.0, 100.0, 150.0] {
            println!(
                "{t:>8.0} {:>22.4} {:>22.4}",
                by_any.eval_or(t, f64::NAN),
                final_only.eval_or(t, f64::NAN)
            );
        }
    }

    println!("\nExpected: top-down ≈ bottom-up early but top-down reaches full-budget configs");
    println!("sooner; checkpointing beats from-scratch; aggressive early stopping (s = 0) and");
    println!("eta = 4 are solid defaults, as the paper argues.");
}

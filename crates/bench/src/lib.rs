//! Shared harness for the paper-reproduction experiment binaries.
//!
//! Every figure binary (`fig1_promotion_table` … `fig9_fabolas`,
//! `tables_search_spaces`) follows the same recipe: pick a surrogate
//! benchmark, define the competing schedulers, run repeated simulated trials,
//! aggregate incumbent curves, print a compact table, and drop CSVs under
//! `results/`. This crate hosts that recipe so the binaries stay small.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use asha_core::Scheduler;
use asha_metrics::{aggregate, uniform_grid, AggregateCurve, StepCurve};
use asha_sim::{ClusterSim, SimConfig};
use asha_surrogate::BenchmarkModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A named scheduler factory: builds a fresh scheduler per trial.
///
/// The factory is `Send + Sync` so the [`ParallelRunner`] can invoke it from
/// any worker thread; factories only capture plain data (search spaces,
/// scalar settings), so this costs callers nothing.
pub struct MethodSpec {
    /// Display name used in tables and CSV files.
    pub name: String,
    /// Factory invoked once per trial.
    pub factory: Box<dyn Fn() -> Box<dyn Scheduler> + Send + Sync>,
}

impl MethodSpec {
    /// Convenience constructor.
    pub fn new<F, S>(name: &str, factory: F) -> Self
    where
        F: Fn() -> S + Send + Sync + 'static,
        S: Scheduler + 'static,
    {
        MethodSpec {
            name: name.to_owned(),
            factory: Box::new(move || Box::new(factory())),
        }
    }
}

/// One experiment's execution parameters.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Worker count of the simulated cluster.
    pub workers: usize,
    /// Simulated-time horizon.
    pub horizon: f64,
    /// Number of repeated trials per method.
    pub trials: usize,
    /// Points on the shared aggregation grid.
    pub grid_points: usize,
    /// Loss plotted before any result exists (the top of the paper's axes).
    pub default_loss: f64,
    /// Base RNG seed; trial `t` of any method uses `base_seed + t`.
    pub base_seed: u64,
    /// Extra simulator knobs applied to every run.
    pub sim_tweak: fn(SimConfig) -> SimConfig,
}

impl ExperimentConfig {
    /// A clean cluster (no stragglers or drops) with 200 grid points.
    pub fn new(workers: usize, horizon: f64, trials: usize, default_loss: f64) -> Self {
        ExperimentConfig {
            workers,
            horizon,
            trials,
            grid_points: 200,
            default_loss,
            base_seed: 42,
            sim_tweak: |c| c,
        }
    }
}

/// Result of running one method across trials.
pub struct MethodResult {
    /// Method display name.
    pub name: String,
    /// Per-trial incumbent (test-loss) curves.
    pub curves: Vec<StepCurve>,
    /// Aggregated envelope on the shared grid.
    pub aggregate: AggregateCurve,
    /// Mean jobs completed per trial.
    pub mean_jobs: f64,
    /// Mean distinct configurations evaluated per trial.
    pub mean_configs: f64,
}

/// Output of one (method, trial) cell — the unit of work both runners share.
struct CellOutcome {
    curve: StepCurve,
    jobs: usize,
    configs: usize,
}

/// Run trial `t` of one method: the exact recipe both the sequential and the
/// parallel runner execute, so their outputs are identical by construction.
fn run_cell(
    bench: &dyn BenchmarkModel,
    method: &MethodSpec,
    cfg: &ExperimentConfig,
    t: usize,
) -> CellOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.base_seed + t as u64);
    let scheduler = (method.factory)();
    let sim = ClusterSim::new((cfg.sim_tweak)(SimConfig::new(cfg.workers, cfg.horizon)));
    let result = sim.run(scheduler, bench, &mut rng);
    CellOutcome {
        curve: result.trace.incumbent_curve(),
        jobs: result.jobs_completed,
        configs: result.distinct_trials,
    }
}

/// Fold one method's per-trial outcomes (in trial order) into a
/// [`MethodResult`].
fn assemble_method(
    name: &str,
    outcomes: Vec<CellOutcome>,
    cfg: &ExperimentConfig,
    grid: &[f64],
) -> MethodResult {
    let mut curves = Vec::with_capacity(outcomes.len());
    let mut jobs = 0usize;
    let mut configs = 0usize;
    for outcome in outcomes {
        jobs += outcome.jobs;
        configs += outcome.configs;
        curves.push(outcome.curve);
    }
    let agg = aggregate(&curves, grid, cfg.default_loss);
    MethodResult {
        name: name.to_owned(),
        curves,
        aggregate: agg,
        mean_jobs: jobs as f64 / cfg.trials as f64,
        mean_configs: configs as f64 / cfg.trials as f64,
    }
}

/// Run every method for `cfg.trials` trials on `bench` and aggregate,
/// sequentially on the calling thread.
pub fn run_experiment(
    bench: &dyn BenchmarkModel,
    methods: &[MethodSpec],
    cfg: &ExperimentConfig,
) -> Vec<MethodResult> {
    let grid = uniform_grid(cfg.horizon, cfg.grid_points);
    methods
        .iter()
        .map(|m| {
            let outcomes = (0..cfg.trials)
                .map(|t| run_cell(bench, m, cfg, t))
                .collect();
            assemble_method(&m.name, outcomes, cfg, &grid)
        })
        .collect()
}

/// A deterministic multicore experiment runner.
///
/// Every (method, trial) cell of an experiment is independent: trial `t` of
/// any method always seeds its own `StdRng` with `base_seed + t`, and the
/// simulator is deterministic given that stream. The runner therefore fans
/// the cells across `threads` scoped worker threads with a shared atomic
/// cursor, stores each outcome in its cell's slot (indexed by cell, never by
/// arrival), and assembles per-method results in trial order afterwards —
/// producing **bitwise-identical** output to [`run_experiment`] for any
/// thread count and any completion order.
pub struct ParallelRunner {
    threads: usize,
}

impl ParallelRunner {
    /// A runner over `threads` worker threads; `0` means one per available
    /// hardware thread.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        };
        ParallelRunner { threads }
    }

    /// The resolved worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every method for `cfg.trials` trials on `bench` and aggregate.
    /// Same contract and output as [`run_experiment`]; only wall-clock
    /// differs.
    pub fn run(
        &self,
        bench: &dyn BenchmarkModel,
        methods: &[MethodSpec],
        cfg: &ExperimentConfig,
    ) -> Vec<MethodResult> {
        let grid = uniform_grid(cfg.horizon, cfg.grid_points);
        let cells = methods.len() * cfg.trials;
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CellOutcome>>> = (0..cells).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(cells.max(1)) {
                scope.spawn(|| loop {
                    let cell = next.fetch_add(1, Ordering::Relaxed);
                    if cell >= cells {
                        break;
                    }
                    let (m, t) = (cell / cfg.trials, cell % cfg.trials);
                    let outcome = run_cell(bench, &methods[m], cfg, t);
                    *slots[cell].lock().expect("cell slot poisoned") = Some(outcome);
                });
            }
        });
        let mut slots = slots.into_iter();
        methods
            .iter()
            .map(|m| {
                let outcomes = (0..cfg.trials)
                    .map(|_| {
                        slots
                            .next()
                            .expect("one slot per cell")
                            .into_inner()
                            .expect("cell slot poisoned")
                            .expect("every cell was computed")
                    })
                    .collect();
                assemble_method(&m.name, outcomes, cfg, &grid)
            })
            .collect()
    }
}

/// Run the experiment on `threads` worker threads (`0` = all hardware
/// threads); see [`ParallelRunner`] for the determinism contract.
pub fn run_experiment_parallel(
    bench: &dyn BenchmarkModel,
    methods: &[MethodSpec],
    cfg: &ExperimentConfig,
    threads: usize,
) -> Vec<MethodResult> {
    ParallelRunner::new(threads).run(bench, methods, cfg)
}

/// Thread-count knob shared by the experiment binaries: `--threads N` (or
/// `--threads=N`) on the command line, else the `ASHA_THREADS` environment
/// variable, else `0` (one thread per core — [`ParallelRunner::new`]
/// resolves it).
pub fn threads_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        } else if let Some(rest) = arg.strip_prefix("--threads=") {
            if let Ok(n) = rest.parse() {
                return n;
            }
        }
    }
    std::env::var("ASHA_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Print a fixed-width comparison table: one row per sampled time, one
/// column per method (mean incumbent loss).
pub fn print_comparison(title: &str, results: &[MethodResult], sample_times: &[f64]) {
    println!("\n== {title} ==");
    print!("{:>12}", "time");
    for r in results {
        print!("{:>18}", r.name);
    }
    println!();
    for &t in sample_times {
        print!("{t:>12.1}");
        for r in results {
            let idx = nearest_grid_index(&r.aggregate.grid, t);
            print!("{:>18.4}", r.aggregate.mean[idx]);
        }
        println!();
    }
    print!("{:>12}", "final");
    for r in results {
        print!("{:>18.4}", r.aggregate.final_mean());
    }
    println!();
    print!("{:>12}", "jobs/trial");
    for r in results {
        print!("{:>18.0}", r.mean_jobs);
    }
    println!();
    print!("{:>12}", "configs");
    for r in results {
        print!("{:>18.0}", r.mean_configs);
    }
    println!();
}

/// Print "time to reach threshold" per method — the paper's headline
/// comparisons ("ASHA finds a configuration below X in Y minutes").
pub fn print_time_to_reach(results: &[MethodResult], threshold: f64) {
    println!("\n-- time to reach mean loss <= {threshold} --");
    for r in results {
        match r.aggregate.time_to_reach(threshold) {
            Some(t) => println!("{:>20}: {t:.1}", r.name),
            None => println!("{:>20}: not reached", r.name),
        }
    }
}

/// Write every method's aggregate to `results/<file_stem>_<method>.csv`.
pub fn write_results(file_stem: &str, results: &[MethodResult]) {
    write_results_to("results", file_stem, results);
}

/// Write every method's aggregate to `<dir>/<file_stem>_<method>.csv` —
/// same format as [`write_results`] with an explicit output directory.
pub fn write_results_to(
    dir: impl AsRef<std::path::Path>,
    file_stem: &str,
    results: &[MethodResult],
) {
    for r in results {
        let rows: Vec<Vec<f64>> = r
            .aggregate
            .grid
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                vec![
                    t,
                    r.aggregate.mean[i],
                    r.aggregate.q25[i],
                    r.aggregate.q75[i],
                    r.aggregate.min[i],
                    r.aggregate.max[i],
                ]
            })
            .collect();
        let slug: String = r
            .name
            .chars()
            .map(|c| {
                if c.is_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        let path = dir.as_ref().join(format!("{file_stem}_{slug}.csv"));
        if let Err(e) =
            asha_metrics::write_csv(&path, &["time", "mean", "q25", "q75", "min", "max"], &rows)
        {
            eprintln!("warning: {e}");
        }
    }
}

fn nearest_grid_index(grid: &[f64], t: f64) -> usize {
    grid.iter()
        .enumerate()
        .min_by(|a, b| {
            (a.1 - t)
                .abs()
                .partial_cmp(&(b.1 - t).abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_core::{Asha, AshaConfig, RandomSearch};
    use asha_surrogate::presets;
    use asha_surrogate::BenchmarkModel;

    #[test]
    fn harness_runs_and_orders_methods_sensibly() {
        let bench = presets::cifar10_cuda_convnet(2020);
        let space = bench.space().clone();
        let space2 = space.clone();
        let methods = vec![
            MethodSpec::new("ASHA", move || {
                Asha::new(space.clone(), AshaConfig::new(1.0, 256.0, 4.0))
            }),
            MethodSpec::new("Random", move || RandomSearch::new(space2.clone(), 256.0)),
        ];
        let cfg = ExperimentConfig::new(9, 120.0, 2, 0.9);
        let results = run_experiment(&bench, &methods, &cfg);
        assert_eq!(results.len(), 2);
        // ASHA must evaluate far more configurations than random search in
        // the same budget, and end at least as good on average.
        assert!(results[0].mean_configs > results[1].mean_configs * 2.0);
        assert!(results[0].aggregate.final_mean() <= results[1].aggregate.final_mean() + 0.02);
    }

    #[test]
    fn nearest_grid_index_picks_closest() {
        let grid = [0.0, 1.0, 2.0];
        assert_eq!(nearest_grid_index(&grid, 0.4), 0);
        assert_eq!(nearest_grid_index(&grid, 0.6), 1);
        assert_eq!(nearest_grid_index(&grid, 99.0), 2);
    }
}

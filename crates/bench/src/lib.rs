//! Shared harness for the paper-reproduction experiment binaries.
//!
//! Every figure binary (`fig1_promotion_table` … `fig9_fabolas`,
//! `tables_search_spaces`) follows the same recipe: pick a surrogate
//! benchmark, define the competing schedulers, run repeated simulated trials,
//! aggregate incumbent curves, print a compact table, and drop CSVs under
//! `results/`. This crate hosts that recipe so the binaries stay small.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use asha_core::Scheduler;
use asha_metrics::{aggregate, uniform_grid, AggregateCurve, StepCurve};
use asha_sim::{ClusterSim, SimConfig};
use asha_surrogate::BenchmarkModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A named scheduler factory: builds a fresh scheduler per trial.
pub struct MethodSpec {
    /// Display name used in tables and CSV files.
    pub name: String,
    /// Factory invoked once per trial.
    pub factory: Box<dyn Fn() -> Box<dyn Scheduler>>,
}

impl MethodSpec {
    /// Convenience constructor.
    pub fn new<F, S>(name: &str, factory: F) -> Self
    where
        F: Fn() -> S + 'static,
        S: Scheduler + 'static,
    {
        MethodSpec {
            name: name.to_owned(),
            factory: Box::new(move || Box::new(factory())),
        }
    }
}

/// One experiment's execution parameters.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Worker count of the simulated cluster.
    pub workers: usize,
    /// Simulated-time horizon.
    pub horizon: f64,
    /// Number of repeated trials per method.
    pub trials: usize,
    /// Points on the shared aggregation grid.
    pub grid_points: usize,
    /// Loss plotted before any result exists (the top of the paper's axes).
    pub default_loss: f64,
    /// Base RNG seed; trial `t` of any method uses `base_seed + t`.
    pub base_seed: u64,
    /// Extra simulator knobs applied to every run.
    pub sim_tweak: fn(SimConfig) -> SimConfig,
}

impl ExperimentConfig {
    /// A clean cluster (no stragglers or drops) with 200 grid points.
    pub fn new(workers: usize, horizon: f64, trials: usize, default_loss: f64) -> Self {
        ExperimentConfig {
            workers,
            horizon,
            trials,
            grid_points: 200,
            default_loss,
            base_seed: 42,
            sim_tweak: |c| c,
        }
    }
}

/// Result of running one method across trials.
pub struct MethodResult {
    /// Method display name.
    pub name: String,
    /// Per-trial incumbent (test-loss) curves.
    pub curves: Vec<StepCurve>,
    /// Aggregated envelope on the shared grid.
    pub aggregate: AggregateCurve,
    /// Mean jobs completed per trial.
    pub mean_jobs: f64,
    /// Mean distinct configurations evaluated per trial.
    pub mean_configs: f64,
}

/// Run every method for `cfg.trials` trials on `bench` and aggregate.
pub fn run_experiment(
    bench: &dyn BenchmarkModel,
    methods: &[MethodSpec],
    cfg: &ExperimentConfig,
) -> Vec<MethodResult> {
    let grid = uniform_grid(cfg.horizon, cfg.grid_points);
    methods
        .iter()
        .map(|m| {
            let mut curves = Vec::with_capacity(cfg.trials);
            let mut jobs = 0usize;
            let mut configs = 0usize;
            for t in 0..cfg.trials {
                let mut rng = StdRng::seed_from_u64(cfg.base_seed + t as u64);
                let scheduler = (m.factory)();
                let sim =
                    ClusterSim::new((cfg.sim_tweak)(SimConfig::new(cfg.workers, cfg.horizon)));
                let result = sim.run(scheduler, bench, &mut rng);
                jobs += result.jobs_completed;
                configs += result.trace.distinct_trials();
                curves.push(result.trace.incumbent_curve());
            }
            let agg = aggregate(&curves, &grid, cfg.default_loss);
            MethodResult {
                name: m.name.clone(),
                curves,
                aggregate: agg,
                mean_jobs: jobs as f64 / cfg.trials as f64,
                mean_configs: configs as f64 / cfg.trials as f64,
            }
        })
        .collect()
}

/// Print a fixed-width comparison table: one row per sampled time, one
/// column per method (mean incumbent loss).
pub fn print_comparison(title: &str, results: &[MethodResult], sample_times: &[f64]) {
    println!("\n== {title} ==");
    print!("{:>12}", "time");
    for r in results {
        print!("{:>18}", r.name);
    }
    println!();
    for &t in sample_times {
        print!("{t:>12.1}");
        for r in results {
            let idx = nearest_grid_index(&r.aggregate.grid, t);
            print!("{:>18.4}", r.aggregate.mean[idx]);
        }
        println!();
    }
    print!("{:>12}", "final");
    for r in results {
        print!("{:>18.4}", r.aggregate.final_mean());
    }
    println!();
    print!("{:>12}", "jobs/trial");
    for r in results {
        print!("{:>18.0}", r.mean_jobs);
    }
    println!();
    print!("{:>12}", "configs");
    for r in results {
        print!("{:>18.0}", r.mean_configs);
    }
    println!();
}

/// Print "time to reach threshold" per method — the paper's headline
/// comparisons ("ASHA finds a configuration below X in Y minutes").
pub fn print_time_to_reach(results: &[MethodResult], threshold: f64) {
    println!("\n-- time to reach mean loss <= {threshold} --");
    for r in results {
        match r.aggregate.time_to_reach(threshold) {
            Some(t) => println!("{:>20}: {t:.1}", r.name),
            None => println!("{:>20}: not reached", r.name),
        }
    }
}

/// Write every method's aggregate to `results/<file_stem>_<method>.csv`.
pub fn write_results(file_stem: &str, results: &[MethodResult]) {
    for r in results {
        let rows: Vec<Vec<f64>> = r
            .aggregate
            .grid
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                vec![
                    t,
                    r.aggregate.mean[i],
                    r.aggregate.q25[i],
                    r.aggregate.q75[i],
                    r.aggregate.min[i],
                    r.aggregate.max[i],
                ]
            })
            .collect();
        let slug: String = r
            .name
            .chars()
            .map(|c| {
                if c.is_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        let path = format!("results/{file_stem}_{slug}.csv");
        if let Err(e) =
            asha_metrics::write_csv(&path, &["time", "mean", "q25", "q75", "min", "max"], &rows)
        {
            eprintln!("warning: {e}");
        }
    }
}

fn nearest_grid_index(grid: &[f64], t: f64) -> usize {
    grid.iter()
        .enumerate()
        .min_by(|a, b| {
            (a.1 - t)
                .abs()
                .partial_cmp(&(b.1 - t).abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_core::{Asha, AshaConfig, RandomSearch};
    use asha_surrogate::presets;
    use asha_surrogate::BenchmarkModel;

    #[test]
    fn harness_runs_and_orders_methods_sensibly() {
        let bench = presets::cifar10_cuda_convnet(2020);
        let space = bench.space().clone();
        let space2 = space.clone();
        let methods = vec![
            MethodSpec::new("ASHA", move || {
                Asha::new(space.clone(), AshaConfig::new(1.0, 256.0, 4.0))
            }),
            MethodSpec::new("Random", move || RandomSearch::new(space2.clone(), 256.0)),
        ];
        let cfg = ExperimentConfig::new(9, 120.0, 2, 0.9);
        let results = run_experiment(&bench, &methods, &cfg);
        assert_eq!(results.len(), 2);
        // ASHA must evaluate far more configurations than random search in
        // the same budget, and end at least as good on average.
        assert!(results[0].mean_configs > results[1].mean_configs * 2.0);
        assert!(results[0].aggregate.final_mean() <= results[1].aggregate.final_mean() + 0.02);
    }

    #[test]
    fn nearest_grid_index_picks_closest() {
        let grid = [0.0, 1.0, 2.0];
        assert_eq!(nearest_grid_index(&grid, 0.4), 0);
        assert_eq!(nearest_grid_index(&grid, 0.6), 1);
        assert_eq!(nearest_grid_index(&grid, 99.0), 2);
    }
}

//! Microbenchmarks of the two hot paths the perf_baseline binary tracks at
//! the macro level: the rung promotion scan (`Rung::promotable` /
//! `RungLadder::find_promotable`) at paper-scale record counts, and the
//! cluster simulator event loop at the paper's 25- and 500-worker regimes.

use asha_core::{Asha, AshaConfig, Observation, Rung, RungLadder, Scheduler, TrialId};
use asha_sim::{ClusterSim, SimConfig, TraceMode};
use asha_space::{Scale, SearchSpace};
use asha_surrogate::{presets, BenchmarkModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn space() -> SearchSpace {
    SearchSpace::builder()
        .continuous("lr", 1e-5, 1.0, Scale::Log)
        .continuous("wd", 1e-6, 1e-2, Scale::Log)
        .discrete("layers", 2, 8)
        .build()
        .expect("valid space")
}

/// A rung holding `n` records with every promotable trial already promoted,
/// which is the steady state a long ASHA run scans over and over.
fn saturated_rung(n: usize) -> Rung {
    let mut rung = Rung::new();
    for i in 0..n {
        rung.record(TrialId(i as u64), ((i * 7919) % 1009) as f64);
    }
    while let Some((t, _)) = rung.promotable(4.0) {
        rung.mark_promoted(t);
    }
    rung
}

fn bench_rung_promotable(c: &mut Criterion) {
    let mut group = c.benchmark_group("rung_promotable");
    for &size in &[10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let rung = saturated_rung(size);
            b.iter(|| std::hint::black_box(rung.promotable(4.0)));
        });
    }
    group.finish();
}

fn bench_ladder_find_promotable(c: &mut Criterion) {
    let mut group = c.benchmark_group("ladder_find_promotable");
    for &size in &[10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            // Fill the full ladder through ASHA itself so the record
            // distribution across rungs matches a real run.
            let mut asha = Asha::new(space(), AshaConfig::new(1.0, 256.0, 4.0));
            let mut rng = StdRng::seed_from_u64(0);
            for i in 0..size {
                let job = asha.suggest(&mut rng).job().expect("asha always runs");
                asha.observe(Observation::for_job(&job, ((i * 7919) % 1009) as f64));
            }
            let ladder: &RungLadder = asha.ladder();
            b.iter(|| std::hint::black_box(ladder.find_promotable()));
        });
    }
    group.finish();
}

fn bench_cluster_sim_events(c: &mut Criterion) {
    let bench = presets::cifar10_cuda_convnet(2020);
    let mut group = c.benchmark_group("cluster_sim_events");
    group.sample_size(10);
    for &workers in &[25usize, 500] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
                    let sim = ClusterSim::new(
                        SimConfig::new(workers, 60.0).with_trace_mode(TraceMode::IncumbentOnly),
                    );
                    let mut rng = StdRng::seed_from_u64(7);
                    std::hint::black_box(sim.run(asha, &bench, &mut rng))
                });
            },
        );
    }
    group.finish();
}

/// Telemetry cost on the simulator event loop: the same 25-worker run with
/// the no-op recorder (the guards must fold away — this case should match
/// `cluster_sim_events/25` within noise) and with the collecting recorder
/// (the full price of structured telemetry).
fn bench_sim_telemetry(c: &mut Criterion) {
    let bench = presets::cifar10_cuda_convnet(2020);
    let mut group = c.benchmark_group("cluster_sim_telemetry");
    group.sample_size(10);
    let sim = ClusterSim::new(SimConfig::new(25, 60.0).with_trace_mode(TraceMode::IncumbentOnly));
    group.bench_function(BenchmarkId::from_parameter("off"), |b| {
        b.iter(|| {
            let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
            let mut rng = StdRng::seed_from_u64(7);
            std::hint::black_box(sim.run_recorded(
                asha,
                &bench,
                &mut rng,
                &mut asha_obs::NoopRecorder,
            ))
        });
    });
    group.bench_function(BenchmarkId::from_parameter("on"), |b| {
        b.iter(|| {
            let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
            let mut rng = StdRng::seed_from_u64(7);
            let mut recorder = asha_obs::RunRecorder::new();
            let result = sim.run_recorded(asha, &bench, &mut rng, &mut recorder);
            std::hint::black_box((result, recorder))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rung_promotable,
    bench_ladder_find_promotable,
    bench_cluster_sim_events,
    bench_sim_telemetry
);
criterion_main!(benches);

//! Microbenchmarks of the substrates behind the experiments: surrogate
//! training-curve evaluation, Gaussian-process fit/predict (the Vizier and
//! Fabolas baselines), TPE proposals (BOHB), and end-to-end simulator
//! throughput.

use asha_baselines::{TpeConfig, TpeSampler};
use asha_core::{Asha, AshaConfig, ConfigSampler};
use asha_math::{Gp, GpConfig};
use asha_sim::{ClusterSim, SimConfig};
use asha_surrogate::{presets, BenchmarkModel};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_surrogate_advance(c: &mut Criterion) {
    let bench = presets::cifar10_small_cnn(presets::DEFAULT_SURFACE_SEED);
    let mut rng = StdRng::seed_from_u64(0);
    let config = bench.space().sample(&mut rng);
    c.bench_function("surrogate_init_advance_eval", |b| {
        b.iter(|| {
            let mut state = bench.init_state(&config, &mut rng);
            bench.advance(&config, &mut state, 256.0, &mut rng);
            std::hint::black_box(bench.validation_loss(&config, &state, &mut rng))
        });
    });
}

fn bench_gp(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let xs: Vec<Vec<f64>> = (0..150)
        .map(|_| (0..9).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<f64>()).collect();
    c.bench_function("gp_fit_150x9", |b| {
        b.iter(|| Gp::fit(&xs, &ys, GpConfig::default()).expect("spd kernel"));
    });
    let gp = Gp::fit(&xs, &ys, GpConfig::default()).expect("spd kernel");
    let query: Vec<f64> = (0..9).map(|_| 0.5).collect();
    c.bench_function("gp_predict_150x9", |b| {
        b.iter(|| std::hint::black_box(gp.predict(&query)));
    });
}

fn bench_tpe_propose(c: &mut Criterion) {
    let space = presets::cifar10_small_cnn(presets::DEFAULT_SURFACE_SEED)
        .space()
        .clone();
    let mut tpe = TpeSampler::new(
        space.clone(),
        TpeConfig {
            random_fraction: 0.0,
            ..TpeConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(2);
    for i in 0..200 {
        let config = space.sample(&mut rng);
        tpe.record(&config, 0, 1.0, (i % 97) as f64);
    }
    c.bench_function("tpe_propose_200obs", |b| {
        b.iter(|| std::hint::black_box(tpe.propose(&space, &mut rng)));
    });
}

fn bench_sim_throughput(c: &mut Criterion) {
    let bench = presets::cifar10_cuda_convnet(presets::DEFAULT_SURFACE_SEED);
    c.bench_function("sim_25workers_150min_asha", |b| {
        b.iter(|| {
            let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
            let mut rng = StdRng::seed_from_u64(3);
            let result = ClusterSim::new(SimConfig::new(25, 150.0)).run(asha, &bench, &mut rng);
            std::hint::black_box(result.jobs_completed)
        });
    });
}

criterion_group!(
    benches,
    bench_surrogate_advance,
    bench_gp,
    bench_tpe_propose,
    bench_sim_throughput
);
criterion_main!(benches);

//! Microbenchmarks of the scheduling hot path: one `suggest` + `observe`
//! round trip per worker request. The paper's 500-worker experiment issues
//! hundreds of thousands of jobs, so the promotion scan must stay effectively
//! constant-time as rungs grow (see `asha_core::rung` for the design).

use asha_core::{
    Asha, AshaConfig, AsyncHyperband, HyperbandConfig, Observation, Scheduler, ShaConfig, SyncSha,
};
use asha_space::{Scale, SearchSpace};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn space() -> SearchSpace {
    SearchSpace::builder()
        .continuous("lr", 1e-5, 1.0, Scale::Log)
        .continuous("wd", 1e-6, 1e-2, Scale::Log)
        .discrete("layers", 2, 8)
        .ordinal("batch", &[64.0, 128.0, 256.0, 512.0])
        .build()
        .expect("valid space")
}

/// Pre-fill an ASHA instance with `n` completed bottom-rung trials.
fn prefilled_asha(n: usize) -> Asha {
    let mut asha = Asha::new(space(), AshaConfig::new(1.0, 256.0, 4.0));
    let mut rng = StdRng::seed_from_u64(0);
    for i in 0..n {
        let job = asha.suggest(&mut rng).job().expect("asha always runs");
        asha.observe(Observation::for_job(&job, (i % 1009) as f64));
    }
    asha
}

fn bench_asha_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("asha_suggest_observe");
    for &size in &[100usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut asha = prefilled_asha(size);
            let mut rng = StdRng::seed_from_u64(1);
            let mut i = 0u64;
            b.iter(|| {
                let job = asha.suggest(&mut rng).job().expect("asha always runs");
                asha.observe(Observation::for_job(&job, (i % 997) as f64));
                i += 1;
            });
        });
    }
    group.finish();
}

fn bench_sync_sha_round_trip(c: &mut Criterion) {
    c.bench_function("sync_sha_suggest_observe", |b| {
        let mut sha = SyncSha::new(space(), ShaConfig::new(256, 1.0, 256.0, 4.0).growing());
        let mut rng = StdRng::seed_from_u64(2);
        let mut i = 0u64;
        b.iter(|| {
            let job = sha
                .suggest(&mut rng)
                .job()
                .expect("growing sha always runs");
            sha.observe(Observation::for_job(&job, (i % 997) as f64));
            i += 1;
        });
    });
}

fn bench_async_hyperband_round_trip(c: &mut Criterion) {
    c.bench_function("async_hyperband_suggest_observe", |b| {
        let mut hb = AsyncHyperband::new(space(), HyperbandConfig::new(1.0, 256.0, 4.0));
        let mut rng = StdRng::seed_from_u64(3);
        let mut i = 0u64;
        b.iter(|| {
            let job = hb.suggest(&mut rng).job().expect("asha never waits");
            hb.observe(Observation::for_job(&job, (i % 997) as f64));
            i += 1;
        });
    });
}

fn bench_promotion_scan_cost(c: &mut Criterion) {
    // Isolate the `get_job` promotion scan at a large, stable rung size.
    let asha = prefilled_asha(50_000);
    c.bench_function("promotion_scan_50k", |b| {
        b.iter(|| std::hint::black_box(asha.ladder().find_promotable()));
    });
}

criterion_group!(
    benches,
    bench_asha_round_trip,
    bench_sync_sha_round_trip,
    bench_async_hyperband_round_trip,
    bench_promotion_scan_cost
);
criterion_main!(benches);

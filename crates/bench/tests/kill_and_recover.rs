//! True process-death recovery: run the `run_report` demo through the
//! durable store, kill the process abruptly mid-run (SIGABRT via
//! `std::process::abort`, no cleanup), recover in a fresh process, and
//! require the final report to be byte-identical to an uninterrupted run.
//! This is the same flow the CI kill-and-recover job exercises.

use std::path::Path;
use std::process::Command;

fn run_report() -> Command {
    Command::new(env!("CARGO_BIN_EXE_run_report"))
}

#[test]
fn killed_store_run_recovers_to_identical_report() {
    let root = std::env::temp_dir().join(format!("asha-bench-kill-recover-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).unwrap();
    let ref_dir = root.join("ref");
    let crash_dir = root.join("crash");
    let ref_json = root.join("ref.json");
    let rec_json = root.join("recovered.json");
    let to = |p: &Path| p.to_str().unwrap().to_owned();

    // Uninterrupted reference run.
    let status = run_report()
        .args([
            "--demo",
            "--seed",
            "5",
            "--store",
            &to(&ref_dir),
            "--snapshot-jobs",
            "75",
            "--json",
            &to(&ref_json),
        ])
        .status()
        .unwrap();
    assert!(status.success(), "reference run failed");

    // Same run, killed abruptly after 200 jobs: abort() skips destructors,
    // so nothing buffered is flushed — like a SIGKILL.
    let status = run_report()
        .args([
            "--demo",
            "--seed",
            "5",
            "--store",
            &to(&crash_dir),
            "--snapshot-jobs",
            "75",
            "--crash-after-jobs",
            "200",
        ])
        .status()
        .unwrap();
    assert!(!status.success(), "crashed run must not exit cleanly");

    // Recover in a new process and finish.
    let status = run_report()
        .args([
            "--resume",
            &to(&crash_dir),
            "--snapshot-jobs",
            "75",
            "--json",
            &to(&rec_json),
        ])
        .status()
        .unwrap();
    assert!(status.success(), "recovery run failed");

    let reference = std::fs::read(&ref_json).unwrap();
    let recovered = std::fs::read(&rec_json).unwrap();
    assert!(
        reference == recovered,
        "recovered report.json differs from uninterrupted run"
    );
    std::fs::remove_dir_all(&root).ok();
}

//! The parallel runner's determinism contract: for any thread count, output
//! is bitwise-identical to the sequential runner — same curves, same
//! aggregates, same CSV bytes — because results are collected by cell index,
//! never by completion order.

use asha_bench::{
    run_experiment, run_experiment_parallel, write_results_to, ExperimentConfig, MethodSpec,
    ParallelRunner,
};
use asha_core::{Asha, AshaConfig, AsyncHyperband, HyperbandConfig, RandomSearch};
use asha_surrogate::{presets, BenchmarkModel, CurveBenchmark};

const R: f64 = 256.0;

fn methods(bench: &CurveBenchmark) -> Vec<MethodSpec> {
    let s1 = bench.space().clone();
    let s2 = bench.space().clone();
    let s3 = bench.space().clone();
    vec![
        MethodSpec::new("ASHA", move || {
            Asha::new(s1.clone(), AshaConfig::new(1.0, R, 4.0))
        }),
        MethodSpec::new("AsyncHB", move || {
            AsyncHyperband::new(
                s2.clone(),
                HyperbandConfig::new(1.0, R, 4.0).with_brackets(4),
            )
        }),
        MethodSpec::new("Random", move || RandomSearch::new(s3.clone(), R)),
    ]
}

fn cfg() -> ExperimentConfig {
    ExperimentConfig::new(9, 60.0, 5, 0.65)
}

#[test]
fn parallel_matches_sequential_bitwise_for_any_thread_count() {
    let bench = presets::cifar10_cuda_convnet(2020);
    let cfg = cfg();
    let sequential = run_experiment(&bench, &methods(&bench), &cfg);
    for threads in [1usize, 2, 8] {
        let parallel = run_experiment_parallel(&bench, &methods(&bench), &cfg, threads);
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.name, p.name);
            // f64 vectors compared with ==: bitwise, not approximate.
            assert_eq!(s.aggregate.grid, p.aggregate.grid, "{threads} threads");
            assert_eq!(s.aggregate.mean, p.aggregate.mean, "{threads} threads");
            assert_eq!(s.aggregate.q25, p.aggregate.q25, "{threads} threads");
            assert_eq!(s.aggregate.q75, p.aggregate.q75, "{threads} threads");
            assert_eq!(s.aggregate.min, p.aggregate.min, "{threads} threads");
            assert_eq!(s.aggregate.max, p.aggregate.max, "{threads} threads");
            assert_eq!(s.mean_jobs, p.mean_jobs, "{threads} threads");
            assert_eq!(s.mean_configs, p.mean_configs, "{threads} threads");
            assert_eq!(s.curves.len(), p.curves.len());
            for (sc, pc) in s.curves.iter().zip(&p.curves) {
                assert_eq!(sc.points(), pc.points(), "{threads} threads");
            }
        }
    }
}

#[test]
fn parallel_and_sequential_csvs_are_byte_identical() {
    let bench = presets::cifar10_cuda_convnet(2020);
    let cfg = cfg();
    let sequential = run_experiment(&bench, &methods(&bench), &cfg);
    let parallel = run_experiment_parallel(&bench, &methods(&bench), &cfg, 4);

    let root = std::env::temp_dir().join(format!("asha-par-eq-{}", std::process::id()));
    let seq_dir = root.join("seq");
    let par_dir = root.join("par");
    write_results_to(&seq_dir, "eq", &sequential);
    write_results_to(&par_dir, "eq", &parallel);

    let mut names: Vec<_> = std::fs::read_dir(&seq_dir)
        .expect("seq dir written")
        .map(|e| e.expect("dir entry").file_name())
        .collect();
    names.sort();
    assert_eq!(names.len(), 3, "one CSV per method");
    for name in &names {
        let a = std::fs::read(seq_dir.join(name)).expect("sequential csv");
        let b = std::fs::read(par_dir.join(name)).expect("parallel csv");
        assert_eq!(a, b, "CSV bytes differ for {name:?}");
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn runner_resolves_zero_threads_to_hardware() {
    assert!(ParallelRunner::new(0).threads() >= 1);
    assert_eq!(ParallelRunner::new(3).threads(), 3);
}

#[test]
fn more_threads_than_cells_is_fine() {
    let bench = presets::cifar10_cuda_convnet(2020);
    let mut cfg = cfg();
    cfg.trials = 1;
    let sequential = run_experiment(&bench, &methods(&bench), &cfg);
    let parallel = run_experiment_parallel(&bench, &methods(&bench), &cfg, 32);
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.aggregate.mean, p.aggregate.mean);
    }
}

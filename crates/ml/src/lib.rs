//! A tiny from-scratch machine-learning substrate for real tuning demos.
//!
//! The ASHA paper tunes real neural networks; most of this repository's
//! experiments substitute surrogate benchmarks, but the examples and the
//! thread-pool executor also demonstrate tuning *actual* iterative training.
//! This crate supplies the minimum for that to be honest work:
//!
//! * [`Dataset`] — synthetic classification data (Gaussian blobs, two
//!   spirals) with train/validation/test splits,
//! * [`Mlp`] — a dense multi-layer perceptron with ReLU/Tanh activations and
//!   softmax cross-entropy, trained by
//! * [`Trainer`] — minibatch SGD with momentum, ℓ2 weight decay, and stepwise
//!   learning-rate decay. The trainer *is* the checkpoint: training more
//!   epochs resumes exactly, which is what ASHA's rung promotions need.
//!
//! # Examples
//!
//! ```
//! use asha_ml::{Dataset, Mlp, Trainer, TrainConfig};
//!
//! let data = Dataset::gaussian_blobs(3, 2, 300, 0.5, 42).split(0.6, 0.2);
//! let mlp = Mlp::new(2, &[16], 3, asha_ml::Activation::Relu, 0.1, 7);
//! let mut trainer = Trainer::new(mlp, TrainConfig::default());
//! trainer.train_epochs(&data.train, 5);
//! let (loss, acc) = trainer.evaluate(&data.validation);
//! assert!(loss.is_finite() && (0.0..=1.0).contains(&acc));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod data;
mod kernel;
mod nn;
mod trainer;

pub use data::{Dataset, Split};
pub use kernel::{KernelRidge, KernelRidgeConfig};
pub use nn::{Activation, Mlp};
pub use trainer::{TrainConfig, Trainer};

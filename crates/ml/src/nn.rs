#![allow(clippy::needless_range_loop, clippy::too_many_arguments)] // index loops mirror the math; the optimizer step takes its full parameter set

//! A dense multi-layer perceptron with manual backpropagation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hidden-layer activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed in terms of the *activated* output `a`.
    fn grad_from_output(self, a: f64) -> f64 {
        match self {
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - a * a,
        }
    }
}

/// One dense layer: `out = act(W x + b)`.
#[derive(Debug, Clone, PartialEq)]
struct Layer {
    /// Row-major `out x in` weights.
    w: Vec<f64>,
    b: Vec<f64>,
    inputs: usize,
    outputs: usize,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, init_std: f64, rng: &mut StdRng) -> Self {
        let w = (0..inputs * outputs)
            .map(|_| init_std * box_muller(rng))
            .collect();
        Layer {
            w,
            b: vec![0.0; outputs],
            inputs,
            outputs,
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut out = self.b.clone();
        for (o, out_val) in out.iter_mut().enumerate() {
            let row = &self.w[o * self.inputs..(o + 1) * self.inputs];
            *out_val += row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>();
        }
        out
    }
}

fn box_muller(rng: &mut StdRng) -> f64 {
    let mut u1: f64 = rng.gen();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.gen();
    }
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A multi-layer perceptron classifier with softmax cross-entropy loss.
///
/// The network *is* its checkpoint: cloning it snapshots training state
/// (minus optimizer momentum, which lives in the [`crate::Trainer`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Layer>,
    activation: Activation,
}

impl Mlp {
    /// Build an MLP `inputs -> hidden[0] -> ... -> classes` with Gaussian
    /// weight initialization of the given standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `inputs == 0`, `classes < 2`, or any hidden width is 0.
    pub fn new(
        inputs: usize,
        hidden: &[usize],
        classes: usize,
        activation: Activation,
        init_std: f64,
        seed: u64,
    ) -> Self {
        assert!(inputs > 0, "need at least one input feature");
        assert!(classes >= 2, "need at least two classes");
        assert!(
            hidden.iter().all(|&h| h > 0),
            "hidden widths must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(hidden.len() + 1);
        let mut prev = inputs;
        for &h in hidden {
            layers.push(Layer::new(prev, h, init_std, &mut rng));
            prev = h;
        }
        layers.push(Layer::new(prev, classes, init_std, &mut rng));
        Mlp { layers, activation }
    }

    /// Number of parameters (weights + biases).
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Class logits for one example.
    pub fn logits(&self, x: &[f64]) -> Vec<f64> {
        let mut act = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut z = layer.forward(&act);
            if i + 1 < self.layers.len() {
                for v in &mut z {
                    *v = self.activation.apply(*v);
                }
            }
            act = z;
        }
        act
    }

    /// Predicted class for one example.
    pub fn predict(&self, x: &[f64]) -> usize {
        let logits = self.logits(x);
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Cross-entropy loss of one example (natural log).
    pub fn loss_one(&self, x: &[f64], y: usize) -> f64 {
        let logits = self.logits(x);
        let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let log_z = max + logits.iter().map(|&l| (l - max).exp()).sum::<f64>().ln();
        log_z - logits[y]
    }

    /// Forward + backward for one example; returns (loss, per-layer weight
    /// gradients, per-layer bias gradients).
    pub(crate) fn backprop(&self, x: &[f64], y: usize) -> (f64, Vec<Vec<f64>>, Vec<Vec<f64>>) {
        // Forward, caching activations (input of each layer).
        let mut acts: Vec<Vec<f64>> = vec![x.to_vec()];
        for (i, layer) in self.layers.iter().enumerate() {
            let mut z = layer.forward(acts.last().expect("non-empty"));
            if i + 1 < self.layers.len() {
                for v in &mut z {
                    *v = self.activation.apply(*v);
                }
            }
            acts.push(z);
        }
        // Softmax cross-entropy gradient at the logits.
        let logits = acts.last().expect("non-empty").clone();
        let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
        let z: f64 = exps.iter().sum();
        let loss = z.ln() + max - logits[y];
        let mut delta: Vec<f64> = exps.iter().map(|&e| e / z).collect();
        delta[y] -= 1.0;

        let mut grads_w: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut grads_b: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        for li in (0..self.layers.len()).rev() {
            let layer = &self.layers[li];
            let input = &acts[li];
            for o in 0..layer.outputs {
                grads_b[li][o] = delta[o];
                for i in 0..layer.inputs {
                    grads_w[li][o * layer.inputs + i] = delta[o] * input[i];
                }
            }
            if li > 0 {
                // Propagate delta through W and the previous activation.
                let mut prev_delta = vec![0.0; layer.inputs];
                for o in 0..layer.outputs {
                    for (i, prev_delta_i) in prev_delta.iter_mut().enumerate() {
                        *prev_delta_i += delta[o] * layer.w[o * layer.inputs + i];
                    }
                }
                for (i, d) in prev_delta.iter_mut().enumerate() {
                    *d *= self.activation.grad_from_output(acts[li][i]);
                }
                delta = prev_delta;
            }
        }
        (loss, grads_w, grads_b)
    }

    pub(crate) fn apply_update(
        &mut self,
        grads_w: &[Vec<f64>],
        grads_b: &[Vec<f64>],
        vel_w: &mut [Vec<f64>],
        vel_b: &mut [Vec<f64>],
        lr: f64,
        momentum: f64,
        weight_decay: f64,
    ) {
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for (w, (g, v)) in layer
                .w
                .iter_mut()
                .zip(grads_w[li].iter().zip(vel_w[li].iter_mut()))
            {
                *v = momentum * *v - lr * (g + weight_decay * *w);
                *w += *v;
            }
            for (b, (g, v)) in layer
                .b
                .iter_mut()
                .zip(grads_b[li].iter().zip(vel_b[li].iter_mut()))
            {
                *v = momentum * *v - lr * g;
                *b += *v;
            }
        }
    }

    pub(crate) fn zero_like(&self) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        (
            self.layers.iter().map(|l| vec![0.0; l.w.len()]).collect(),
            self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_param_count() {
        let mlp = Mlp::new(4, &[8, 8], 3, Activation::Relu, 0.1, 0);
        // (4*8+8) + (8*8+8) + (8*3+3) = 40 + 72 + 27.
        assert_eq!(mlp.num_params(), 139);
        assert_eq!(mlp.logits(&[0.0; 4]).len(), 3);
    }

    #[test]
    fn loss_is_log_classes_at_init_with_tiny_weights() {
        let mlp = Mlp::new(2, &[4], 3, Activation::Tanh, 1e-6, 1);
        let loss = mlp.loss_one(&[0.5, -0.5], 0);
        assert!((loss - 3f64.ln()).abs() < 1e-3, "loss {loss}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut mlp = Mlp::new(2, &[3], 2, Activation::Tanh, 0.5, 2);
        let x = [0.3, -0.7];
        let y = 1;
        let (_, grads_w, _) = mlp.backprop(&x, y);
        // Check a handful of weights in each layer numerically.
        let eps = 1e-6;
        for li in 0..2 {
            for wi in 0..mlp.layers[li].w.len().min(4) {
                let orig = mlp.layers[li].w[wi];
                mlp.layers[li].w[wi] = orig + eps;
                let up = mlp.loss_one(&x, y);
                mlp.layers[li].w[wi] = orig - eps;
                let down = mlp.loss_one(&x, y);
                mlp.layers[li].w[wi] = orig;
                let numeric = (up - down) / (2.0 * eps);
                let analytic = grads_w[li][wi];
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "layer {li} w{wi}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = Mlp::new(2, &[4], 2, Activation::Relu, 0.1, 7);
        let b = Mlp::new(2, &[4], 2, Activation::Relu, 0.1, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn one_class_rejected() {
        let _ = Mlp::new(2, &[4], 1, Activation::Relu, 0.1, 0);
    }
}

//! An RBF kernel ridge classifier trained on data *subsets* — the real
//! analogue of the paper's SVM benchmark, where the resource is the number
//! of training points (Appendix A.2: "for the SVM task, the allocated
//! resource is number of training datapoints").
//!
//! One-vs-all kernel ridge regression: for each class, solve
//! `(K + λ n I) α = y` on the first `n` training points via Cholesky, and
//! classify by the largest discriminant. Training cost grows superlinearly
//! in `n`, exactly the structure Fabolas-style methods exploit.

use asha_math::Matrix;

use crate::data::Dataset;

/// Hyperparameters of the kernel classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelRidgeConfig {
    /// Ridge regularization `λ` (the inverse of an SVM's `C`).
    pub lambda: f64,
    /// RBF kernel width: `k(x, y) = exp(-gamma * |x - y|^2)`.
    pub gamma: f64,
}

impl Default for KernelRidgeConfig {
    fn default() -> Self {
        KernelRidgeConfig {
            lambda: 1e-3,
            gamma: 1.0,
        }
    }
}

/// A fitted one-vs-all RBF kernel ridge classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRidge {
    config: KernelRidgeConfig,
    support: Vec<Vec<f64>>,
    /// One dual-coefficient vector per class.
    alphas: Vec<Vec<f64>>,
}

impl KernelRidge {
    /// Fit on the first `subset` points of `data` (the trial's resource).
    ///
    /// # Errors
    ///
    /// Returns the underlying factorization error when the regularized
    /// kernel matrix is numerically singular (pathological `lambda`/`gamma`).
    ///
    /// # Panics
    ///
    /// Panics if `subset == 0` or `data` is empty.
    pub fn fit(
        data: &Dataset,
        subset: usize,
        config: KernelRidgeConfig,
    ) -> Result<Self, asha_math::CholeskyError> {
        assert!(subset > 0, "need at least one training point");
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let n = subset.min(data.len());
        let xs: Vec<Vec<f64>> = data.xs[..n].to_vec();
        let k = Matrix::from_fn(n, n, |i, j| rbf(&xs[i], &xs[j], config.gamma));
        let mut reg = k;
        for i in 0..n {
            reg[(i, i)] += config.lambda * n as f64 + 1e-10;
        }
        let chol = reg.cholesky()?;
        let alphas = (0..data.num_classes)
            .map(|class| {
                let y: Vec<f64> = data.ys[..n]
                    .iter()
                    .map(|&label| if label == class { 1.0 } else { -1.0 })
                    .collect();
                chol.solve(&y)
            })
            .collect();
        Ok(KernelRidge {
            config,
            support: xs,
            alphas,
        })
    }

    /// Number of support points (the subset size it was fit on).
    pub fn support_size(&self) -> usize {
        self.support.len()
    }

    /// Per-class discriminant values for one example.
    pub fn decision(&self, x: &[f64]) -> Vec<f64> {
        let k: Vec<f64> = self
            .support
            .iter()
            .map(|s| rbf(s, x, self.config.gamma))
            .collect();
        self.alphas
            .iter()
            .map(|alpha| alpha.iter().zip(&k).map(|(a, ki)| a * ki).sum())
            .collect()
    }

    /// Predicted class for one example.
    pub fn predict(&self, x: &[f64]) -> usize {
        self.decision(x)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Classification error rate on a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn error_rate(&self, data: &Dataset) -> f64 {
        assert!(!data.is_empty(), "cannot evaluate on an empty dataset");
        let wrong = data
            .xs
            .iter()
            .zip(&data.ys)
            .filter(|(x, &y)| self.predict(x) != y)
            .count();
        wrong as f64 / data.len() as f64
    }
}

fn rbf(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-gamma * d2).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        Dataset::gaussian_blobs(3, 2, 80, 0.35, 17)
    }

    #[test]
    fn separable_blobs_are_learned() {
        let data = blobs();
        let split = data.split(0.7, 0.0);
        let model = KernelRidge::fit(
            &split.train,
            split.train.len(),
            KernelRidgeConfig::default(),
        )
        .expect("well-conditioned fit");
        let err = model.error_rate(&split.test);
        // Random blob centers can overlap slightly; chance level is 2/3.
        assert!(err < 0.15, "error rate {err}");
        assert_eq!(model.support_size(), split.train.len());
    }

    #[test]
    fn more_data_monotonically_helps_on_average() {
        // The property the SVM benchmark's resource axis relies on.
        let data = blobs();
        let split = data.split(0.7, 0.0);
        let cfg = KernelRidgeConfig::default();
        let err_small = KernelRidge::fit(&split.train, 10, cfg)
            .expect("fit")
            .error_rate(&split.test);
        let err_large = KernelRidge::fit(&split.train, split.train.len(), cfg)
            .expect("fit")
            .error_rate(&split.test);
        assert!(
            err_large <= err_small + 0.02,
            "more data hurt: {err_small} -> {err_large}"
        );
    }

    #[test]
    fn hyperparameters_matter() {
        // Absurd gamma (every point an island) should underperform a sane one.
        let data = Dataset::two_spirals(120, 0.05, 9);
        let split = data.split(0.7, 0.0);
        let good = KernelRidge::fit(
            &split.train,
            split.train.len(),
            KernelRidgeConfig {
                lambda: 1e-4,
                gamma: 2.0,
            },
        )
        .expect("fit")
        .error_rate(&split.test);
        let bad = KernelRidge::fit(
            &split.train,
            split.train.len(),
            KernelRidgeConfig {
                lambda: 10.0,
                gamma: 1e-6,
            },
        )
        .expect("fit")
        .error_rate(&split.test);
        assert!(good + 0.1 < bad, "good {good} vs bad {bad}");
    }

    #[test]
    fn subset_is_clamped_to_dataset_size() {
        let data = blobs();
        let model = KernelRidge::fit(&data, 10_000, KernelRidgeConfig::default()).expect("fit");
        assert_eq!(model.support_size(), data.len());
    }

    #[test]
    fn decision_has_one_score_per_class() {
        let data = blobs();
        let model = KernelRidge::fit(&data, 30, KernelRidgeConfig::default()).expect("fit");
        assert_eq!(model.decision(&data.xs[0]).len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one training point")]
    fn zero_subset_rejected() {
        let _ = KernelRidge::fit(&blobs(), 0, KernelRidgeConfig::default());
    }
}

//! Synthetic classification datasets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled classification dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature vectors, one per example.
    pub xs: Vec<Vec<f64>>,
    /// Class labels in `0..num_classes`.
    pub ys: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

/// Train/validation/test partition of a [`Dataset`].
#[derive(Debug, Clone, PartialEq)]
pub struct Split {
    /// Training set.
    pub train: Dataset,
    /// Validation set (drives tuning decisions).
    pub validation: Dataset,
    /// Test set (reported, never optimized against).
    pub test: Dataset,
}

fn box_muller(rng: &mut StdRng) -> f64 {
    let mut u1: f64 = rng.gen();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.gen();
    }
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl Dataset {
    /// `k` Gaussian clusters in `dims` dimensions, `per_class` points each,
    /// with the given within-cluster standard deviation. Deterministic for a
    /// seed.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `dims == 0`, or `per_class == 0`.
    pub fn gaussian_blobs(k: usize, dims: usize, per_class: usize, noise: f64, seed: u64) -> Self {
        assert!(
            k > 0 && dims > 0 && per_class > 0,
            "degenerate dataset shape"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..dims).map(|_| rng.gen_range(-2.0..2.0)).collect())
            .collect();
        let mut xs = Vec::with_capacity(k * per_class);
        let mut ys = Vec::with_capacity(k * per_class);
        for (label, center) in centers.iter().enumerate() {
            for _ in 0..per_class {
                xs.push(
                    center
                        .iter()
                        .map(|&c| c + noise * box_muller(&mut rng))
                        .collect(),
                );
                ys.push(label);
            }
        }
        Dataset {
            xs,
            ys,
            num_classes: k,
        }
    }

    /// The classic two-spirals binary task: `per_class` points per arm with
    /// angular noise. A real nonlinear benchmark for small MLPs.
    ///
    /// # Panics
    ///
    /// Panics if `per_class == 0`.
    pub fn two_spirals(per_class: usize, noise: f64, seed: u64) -> Self {
        assert!(per_class > 0, "degenerate dataset shape");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(2 * per_class);
        let mut ys = Vec::with_capacity(2 * per_class);
        for label in 0..2usize {
            for i in 0..per_class {
                let t = 0.25 + 3.5 * i as f64 / per_class as f64; // radius/angle
                let angle = t * std::f64::consts::PI + label as f64 * std::f64::consts::PI;
                let r = t;
                xs.push(vec![
                    r * angle.cos() + noise * box_muller(&mut rng),
                    r * angle.sin() + noise * box_muller(&mut rng),
                ]);
                ys.push(label);
            }
        }
        Dataset {
            xs,
            ys,
            num_classes: 2,
        }
    }

    /// The classic two-moons binary task: two interleaved half circles with
    /// Gaussian noise.
    ///
    /// # Panics
    ///
    /// Panics if `per_class == 0`.
    pub fn two_moons(per_class: usize, noise: f64, seed: u64) -> Self {
        assert!(per_class > 0, "degenerate dataset shape");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(2 * per_class);
        let mut ys = Vec::with_capacity(2 * per_class);
        for label in 0..2usize {
            for i in 0..per_class {
                let t = std::f64::consts::PI * i as f64 / per_class as f64;
                let (cx, cy, sign) = if label == 0 {
                    (0.0, 0.0, 1.0)
                } else {
                    (1.0, 0.4, -1.0)
                };
                xs.push(vec![
                    cx + t.cos() * sign + noise * box_muller(&mut rng),
                    cy + t.sin() * sign + noise * box_muller(&mut rng),
                ]);
                ys.push(label);
            }
        }
        Dataset {
            xs,
            ys,
            num_classes: 2,
        }
    }

    /// Standardize features to zero mean and unit variance (in place),
    /// returning the per-dimension `(mean, std)` used — apply the same
    /// transform to validation/test splits.
    pub fn standardize(&mut self) -> Vec<(f64, f64)> {
        let dims = self.dims();
        let n = self.len() as f64;
        let mut stats = Vec::with_capacity(dims);
        for d in 0..dims {
            let mean = self.xs.iter().map(|x| x[d]).sum::<f64>() / n;
            let var = self.xs.iter().map(|x| (x[d] - mean).powi(2)).sum::<f64>() / n;
            let std = var.sqrt().max(1e-12);
            for x in &mut self.xs {
                x[d] = (x[d] - mean) / std;
            }
            stats.push((mean, std));
        }
        stats
    }

    /// Apply a standardization computed on another split.
    ///
    /// # Panics
    ///
    /// Panics if `stats.len()` does not match the feature dimension.
    pub fn apply_standardization(&mut self, stats: &[(f64, f64)]) {
        assert_eq!(stats.len(), self.dims(), "dimension mismatch");
        for x in &mut self.xs {
            for (v, &(mean, std)) in x.iter_mut().zip(stats) {
                *v = (*v - mean) / std;
            }
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Feature dimensionality.
    pub fn dims(&self) -> usize {
        self.xs.first().map_or(0, Vec::len)
    }

    /// Shuffle-split into train/validation/test with the given fractions
    /// (the remainder is the test set). Deterministic: uses a seed derived
    /// from the dataset size.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < train_frac`, `0 <= val_frac`, and
    /// `train_frac + val_frac < 1`.
    pub fn split(&self, train_frac: f64, val_frac: f64) -> Split {
        assert!(
            train_frac > 0.0 && val_frac >= 0.0 && train_frac + val_frac < 1.0,
            "fractions must leave room for a test set"
        );
        let n = self.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(n as u64 ^ 0x0DA7_A5E7);
        // Fisher–Yates.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let n_train = (n as f64 * train_frac).round() as usize;
        let n_val = (n as f64 * val_frac).round() as usize;
        let take = |idx: &[usize]| Dataset {
            xs: idx.iter().map(|&i| self.xs[i].clone()).collect(),
            ys: idx.iter().map(|&i| self.ys[i]).collect(),
            num_classes: self.num_classes,
        };
        Split {
            train: take(&order[..n_train]),
            validation: take(&order[n_train..n_train + n_val]),
            test: take(&order[n_train + n_val..]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_have_expected_shape() {
        let d = Dataset::gaussian_blobs(3, 4, 50, 0.3, 1);
        assert_eq!(d.len(), 150);
        assert_eq!(d.dims(), 4);
        assert_eq!(d.num_classes, 3);
        assert!(d.ys.iter().all(|&y| y < 3));
        assert!(!d.is_empty());
    }

    #[test]
    fn blobs_are_deterministic_per_seed() {
        let a = Dataset::gaussian_blobs(2, 2, 10, 0.1, 9);
        let b = Dataset::gaussian_blobs(2, 2, 10, 0.1, 9);
        let c = Dataset::gaussian_blobs(2, 2, 10, 0.1, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn spirals_are_balanced_and_2d() {
        let d = Dataset::two_spirals(100, 0.05, 3);
        assert_eq!(d.len(), 200);
        assert_eq!(d.dims(), 2);
        assert_eq!(d.ys.iter().filter(|&&y| y == 0).count(), 100);
    }

    #[test]
    fn split_partitions_everything() {
        let d = Dataset::gaussian_blobs(2, 2, 100, 0.2, 5);
        let s = d.split(0.6, 0.2);
        assert_eq!(s.train.len(), 120);
        assert_eq!(s.validation.len(), 40);
        assert_eq!(s.test.len(), 40);
        assert_eq!(s.train.num_classes, 2);
    }

    #[test]
    fn moons_are_balanced_and_distinct() {
        let d = Dataset::two_moons(80, 0.05, 7);
        assert_eq!(d.len(), 160);
        assert_eq!(d.num_classes, 2);
        assert_eq!(d.ys.iter().filter(|&&y| y == 0).count(), 80);
        // The two classes occupy different regions on average.
        let mean_y = |label: usize| {
            let pts: Vec<f64> =
                d.xs.iter()
                    .zip(&d.ys)
                    .filter(|(_, &y)| y == label)
                    .map(|(x, _)| x[1])
                    .collect();
            pts.iter().sum::<f64>() / pts.len() as f64
        };
        assert!((mean_y(0) - mean_y(1)).abs() > 0.2);
    }

    #[test]
    fn standardization_centers_and_scales() {
        let mut d = Dataset::gaussian_blobs(2, 3, 100, 0.7, 13);
        let stats = d.standardize();
        assert_eq!(stats.len(), 3);
        for dim in 0..3 {
            let mean = d.xs.iter().map(|x| x[dim]).sum::<f64>() / d.len() as f64;
            let var = d.xs.iter().map(|x| (x[dim] - mean).powi(2)).sum::<f64>() / d.len() as f64;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
        // Applying the same stats to a copy reproduces the transform.
        let mut other = Dataset::gaussian_blobs(2, 3, 100, 0.7, 13);
        other.apply_standardization(&stats);
        assert_eq!(d, other);
    }

    #[test]
    #[should_panic(expected = "room for a test set")]
    fn bad_split_fractions_rejected() {
        let d = Dataset::gaussian_blobs(2, 2, 10, 0.2, 5);
        let _ = d.split(0.8, 0.2);
    }
}

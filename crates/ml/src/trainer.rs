//! Minibatch SGD training with momentum, weight decay, and stepwise
//! learning-rate decay.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::Dataset;
use crate::nn::Mlp;

/// Optimizer and schedule hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Initial learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// ℓ2 weight decay.
    pub weight_decay: f64,
    /// Minibatch size.
    pub batch_size: usize,
    /// Multiply the learning rate by this factor every `decay_every` epochs
    /// (1.0 disables decay).
    pub lr_decay: f64,
    /// Epoch interval of the learning-rate decay.
    pub decay_every: usize,
    /// Seed for minibatch shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 0.1,
            momentum: 0.9,
            weight_decay: 1e-4,
            batch_size: 32,
            lr_decay: 1.0,
            decay_every: 10,
            seed: 0,
        }
    }
}

/// A checkpointable trainer: model weights, momentum buffers, and the epoch
/// counter all live here, so cloning a `Trainer` is a full checkpoint and
/// `train_epochs` resumes exactly — the property ASHA's promotions rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct Trainer {
    model: Mlp,
    config: TrainConfig,
    vel_w: Vec<Vec<f64>>,
    vel_b: Vec<Vec<f64>>,
    epochs_done: usize,
}

impl Trainer {
    /// Wrap a model with an optimizer.
    ///
    /// # Panics
    ///
    /// Panics if the batch size is zero or the learning rate is not
    /// positive.
    pub fn new(model: Mlp, config: TrainConfig) -> Self {
        assert!(config.batch_size > 0, "batch size must be positive");
        assert!(config.learning_rate > 0.0, "learning rate must be positive");
        let (vel_w, vel_b) = model.zero_like();
        Trainer {
            model,
            config,
            vel_w,
            vel_b,
            epochs_done: 0,
        }
    }

    /// The current model.
    pub fn model(&self) -> &Mlp {
        &self.model
    }

    /// Epochs trained so far (the trial's cumulative resource).
    pub fn epochs_done(&self) -> usize {
        self.epochs_done
    }

    /// Current learning rate after decay.
    pub fn current_lr(&self) -> f64 {
        if self.config.lr_decay == 1.0 || self.config.decay_every == 0 {
            self.config.learning_rate
        } else {
            let steps = self.epochs_done / self.config.decay_every;
            self.config.learning_rate * self.config.lr_decay.powi(steps as i32)
        }
    }

    /// Train for `epochs` more epochs on `data` (one pass each, shuffled).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn train_epochs(&mut self, data: &Dataset, epochs: usize) {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let n = data.len();
        for _ in 0..epochs {
            let lr = self.current_lr();
            let mut order: Vec<usize> = (0..n).collect();
            let mut rng = StdRng::seed_from_u64(
                self.config.seed ^ (self.epochs_done as u64).wrapping_mul(0x9E37),
            );
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for batch in order.chunks(self.config.batch_size) {
                let (mut acc_w, mut acc_b) = self.model.zero_like();
                for &idx in batch {
                    let (_, gw, gb) = self.model.backprop(&data.xs[idx], data.ys[idx]);
                    for (a, g) in acc_w.iter_mut().zip(&gw) {
                        for (ai, gi) in a.iter_mut().zip(g) {
                            *ai += gi / batch.len() as f64;
                        }
                    }
                    for (a, g) in acc_b.iter_mut().zip(&gb) {
                        for (ai, gi) in a.iter_mut().zip(g) {
                            *ai += gi / batch.len() as f64;
                        }
                    }
                }
                self.model.apply_update(
                    &acc_w,
                    &acc_b,
                    &mut self.vel_w,
                    &mut self.vel_b,
                    lr,
                    self.config.momentum,
                    self.config.weight_decay,
                );
            }
            self.epochs_done += 1;
        }
    }

    /// Mean cross-entropy loss and accuracy on a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn evaluate(&self, data: &Dataset) -> (f64, f64) {
        assert!(!data.is_empty(), "cannot evaluate on an empty dataset");
        let mut loss = 0.0;
        let mut correct = 0usize;
        for (x, &y) in data.xs.iter().zip(&data.ys) {
            loss += self.model.loss_one(x, y);
            if self.model.predict(x) == y {
                correct += 1;
            }
        }
        (loss / data.len() as f64, correct as f64 / data.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::Activation;

    fn blobs() -> crate::data::Split {
        Dataset::gaussian_blobs(3, 2, 200, 0.4, 11).split(0.6, 0.2)
    }

    #[test]
    fn training_reduces_loss_and_beats_chance() {
        let data = blobs();
        let mlp = Mlp::new(2, &[16], 3, Activation::Relu, 0.2, 3);
        let mut t = Trainer::new(mlp, TrainConfig::default());
        let (loss0, _) = t.evaluate(&data.validation);
        t.train_epochs(&data.train, 20);
        let (loss1, acc1) = t.evaluate(&data.validation);
        assert!(loss1 < loss0, "loss went {loss0} -> {loss1}");
        assert!(acc1 > 0.8, "accuracy {acc1} should beat chance (0.33)");
    }

    #[test]
    fn checkpoint_resume_is_exact() {
        let data = blobs();
        let mlp = Mlp::new(2, &[8], 3, Activation::Tanh, 0.2, 4);
        let mut a = Trainer::new(mlp.clone(), TrainConfig::default());
        a.train_epochs(&data.train, 6);
        let mut b = Trainer::new(mlp, TrainConfig::default());
        b.train_epochs(&data.train, 3);
        let snapshot = b.clone(); // checkpoint
        let mut b = snapshot;
        b.train_epochs(&data.train, 3);
        assert_eq!(a.model(), b.model(), "3+3 epochs must equal 6 epochs");
        assert_eq!(a.epochs_done(), 6);
    }

    #[test]
    fn lr_decay_schedule() {
        let mlp = Mlp::new(2, &[4], 2, Activation::Relu, 0.1, 0);
        let mut t = Trainer::new(
            mlp,
            TrainConfig {
                learning_rate: 1.0,
                lr_decay: 0.1,
                decay_every: 2,
                ..TrainConfig::default()
            },
        );
        assert_eq!(t.current_lr(), 1.0);
        let data = Dataset::gaussian_blobs(2, 2, 20, 0.3, 0);
        t.train_epochs(&data, 2);
        assert!((t.current_lr() - 0.1).abs() < 1e-12);
        t.train_epochs(&data, 2);
        assert!((t.current_lr() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn spirals_need_capacity() {
        // A wider net should beat a tiny one on two-spirals, demonstrating a
        // real hyperparameter effect for the tuning examples.
        let data = Dataset::two_spirals(150, 0.05, 5).split(0.6, 0.2);
        let mut small = Trainer::new(
            Mlp::new(2, &[2], 2, Activation::Tanh, 0.5, 6),
            TrainConfig::default(),
        );
        let mut large = Trainer::new(
            Mlp::new(2, &[32, 32], 2, Activation::Tanh, 0.5, 6),
            TrainConfig::default(),
        );
        small.train_epochs(&data.train, 40);
        large.train_epochs(&data.train, 40);
        let (_, acc_small) = small.evaluate(&data.validation);
        let (_, acc_large) = large.evaluate(&data.validation);
        assert!(
            acc_large > acc_small + 0.05,
            "large {acc_large} vs small {acc_small}"
        );
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        let mlp = Mlp::new(2, &[4], 2, Activation::Relu, 0.1, 0);
        let _ = Trainer::new(
            mlp,
            TrainConfig {
                batch_size: 0,
                ..TrainConfig::default()
            },
        );
    }
}

//! Baseline hyperparameter tuners the ASHA paper compares against.
//!
//! Every baseline implements [`asha_core::Scheduler`], so the discrete-event
//! simulator and the thread-pool executor drive them exactly like ASHA:
//!
//! * [`TpeSampler`] — a rung-conditioned Tree-structured Parzen Estimator
//!   ([`asha_core::ConfigSampler`]); plugging it into synchronous SHA yields
//!   **BOHB** ([`bohb`]), into ASHA yields **ASHA+TPE** ([`bohb_asha`], the
//!   A-BOHB direction), and into D-ASHA yields **D-ASHA+TPE**
//!   ([`dasha_tpe`], the Hyper-Tune combination).
//! * [`GpSampler`] — rung-conditioned GP-EI as a pluggable sampler (the
//!   async counterpart of [`Vizier`]'s model).
//! * [`Pbt`] — Population Based Training with truncation selection and
//!   perturb/resample exploration, following Appendix A.3 (including frozen
//!   architecture hyperparameters and the bounded-lag fairness rule).
//! * [`Vizier`] — a stand-in for Google Vizier's default algorithm: batched
//!   GP-EI Bayesian optimization with a constant-liar heuristic and *no*
//!   early stopping (the paper compares against "Vizier without the
//!   performance curve early-stopping rule").
//! * [`Fabolas`] — a stand-in for Fabolas: cost-aware Bayesian optimization
//!   over the joint (configuration, dataset-fraction) space, with periodic
//!   full-budget incumbent evaluations mirroring Klein et al.'s offline
//!   validation protocol.
//!
//! # Examples
//!
//! ```
//! use asha_baselines::bohb;
//! use asha_core::{Scheduler, ShaConfig};
//! use asha_space::{Scale, SearchSpace};
//! use rand::SeedableRng;
//!
//! let space = SearchSpace::builder()
//!     .continuous("lr", 1e-4, 1.0, Scale::Log)
//!     .build()?;
//! let mut tuner = bohb(space, ShaConfig::new(9, 1.0, 9.0, 3.0));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! assert!(matches!(tuner.suggest(&mut rng), asha_core::Decision::Run(_)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bohb;
mod cursor;
mod fabolas;
mod gp;
mod pbt;
mod tpe;
mod vizier;

pub use bohb::{bohb, bohb_asha, dasha_tpe};
pub use fabolas::{Fabolas, FabolasConfig};
pub use gp::{GpSampler, GpSamplerConfig};
pub use pbt::{Pbt, PbtConfig};
pub use tpe::{TpeConfig, TpeSampler};
pub use vizier::{Vizier, VizierConfig};

//! BOHB (Falkner et al., 2018) as the paper frames it: synchronous SHA for
//! early stopping with TPE in place of random sampling — plus the
//! asynchronous crosses wiring TPE into ASHA and D-ASHA.

use asha_core::{Asha, AshaConfig, DAsha, ShaConfig, SyncSha};
use asha_space::SearchSpace;

use crate::tpe::{TpeConfig, TpeSampler};

/// Build BOHB: synchronous SHA whose new configurations come from a TPE
/// model. Per Section 4.1, "BOHB uses SHA to perform early-stopping and
/// differs only in how configurations are sampled; while SHA uses random
/// sampling, BOHB uses Bayesian optimization to adaptively sample new
/// configurations." The paper runs BOHB "using the same early-stopping rate
/// as SHA and ASHA instead of looping through brackets".
///
/// # Panics
///
/// Panics under the same conditions as [`SyncSha::new`].
///
/// # Examples
///
/// ```
/// use asha_baselines::bohb;
/// use asha_core::{Scheduler, ShaConfig};
/// use asha_space::{Scale, SearchSpace};
///
/// let space = SearchSpace::builder()
///     .continuous("lr", 1e-3, 1.0, Scale::Log)
///     .build()?;
/// let tuner = bohb(space, ShaConfig::new(9, 1.0, 9.0, 3.0));
/// assert_eq!(tuner.name(), "BOHB");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn bohb(space: SearchSpace, config: ShaConfig) -> SyncSha {
    let sampler = TpeSampler::new(space.clone(), TpeConfig::default());
    let mut sha = SyncSha::with_sampler(space, config, Box::new(sampler));
    sha.set_name("BOHB");
    sha
}

/// The asynchronous cross: ASHA promotions with TPE sampling. Not a paper
/// baseline, but a natural ablation ("can BOHB's model help ASHA?") used by
/// the ablation benches.
///
/// # Panics
///
/// Panics under the same conditions as [`Asha::new`].
pub fn bohb_asha(space: SearchSpace, config: AshaConfig) -> Asha {
    let sampler = TpeSampler::new(space.clone(), TpeConfig::default());
    let mut asha = Asha::with_sampler(space, config, Box::new(sampler));
    asha.set_name("ASHA+TPE");
    asha
}

/// D-ASHA with TPE sampling: Hyper-Tune's delayed promotion rule combined
/// with model-based proposals — the configuration their paper reports the
/// largest sample-efficiency wins with.
///
/// # Panics
///
/// Panics under the same conditions as [`DAsha::new`].
pub fn dasha_tpe(space: SearchSpace, config: AshaConfig) -> DAsha {
    let sampler = TpeSampler::new(space.clone(), TpeConfig::default());
    DAsha::with_sampler(space, config, Box::new(sampler))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_core::{Decision, Observation, Scheduler};
    use asha_space::Scale;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .continuous("x", 0.0, 1.0, Scale::Linear)
            .build()
            .unwrap()
    }

    #[test]
    fn bohb_runs_a_bracket_like_sha() {
        let mut tuner = bohb(space(), ShaConfig::new(9, 1.0, 9.0, 3.0));
        let mut rng = StdRng::seed_from_u64(0);
        let mut jobs = 0;
        loop {
            match tuner.suggest(&mut rng) {
                Decision::Run(job) => {
                    jobs += 1;
                    tuner.observe(Observation::for_job(&job, job.trial.0 as f64));
                }
                Decision::Finished => break,
                Decision::Wait => panic!("serial BOHB never waits"),
            }
        }
        assert_eq!(jobs, 13, "same bracket shape as SHA");
    }

    #[test]
    fn bohb_sampling_adapts_after_enough_data() {
        // Feed a long-running growing BOHB and verify proposals concentrate:
        // losses favor x near 0.25.
        let s = space();
        let mut tuner = bohb(s.clone(), ShaConfig::new(9, 1.0, 9.0, 3.0).growing());
        let mut rng = StdRng::seed_from_u64(1);
        let mut late_xs = Vec::new();
        for i in 0..400 {
            match tuner.suggest(&mut rng) {
                Decision::Run(job) => {
                    let x = job.config.float("x", &s).unwrap();
                    if i > 300 && job.rung == 0 {
                        late_xs.push(x);
                    }
                    tuner.observe(Observation::for_job(&job, (x - 0.25).abs()));
                }
                _ => break,
            }
        }
        assert!(!late_xs.is_empty());
        let mean_dist =
            late_xs.iter().map(|x| (x - 0.25).abs()).sum::<f64>() / late_xs.len() as f64;
        // Uniform would give ≈ 0.28; TPE (with its 1/3 random fraction)
        // should do clearly better.
        assert!(mean_dist < 0.22, "mean distance {mean_dist}");
    }

    #[test]
    fn asha_tpe_cross_names_itself() {
        let tuner = bohb_asha(space(), asha_core::AshaConfig::new(1.0, 9.0, 3.0));
        assert_eq!(tuner.name(), "ASHA+TPE");
    }

    #[test]
    fn dasha_tpe_cross_names_itself() {
        let tuner = dasha_tpe(space(), asha_core::AshaConfig::new(1.0, 9.0, 3.0));
        assert_eq!(tuner.name(), "D-ASHA+tpe");
    }
}

//! A rung-conditioned Gaussian-process EI sampler — GP-EI as a pluggable
//! [`ConfigSampler`], the async counterpart of the [`crate::Vizier`]
//! scheduler's model.
//!
//! Observations are grouped by rung, exactly like [`crate::TpeSampler`]; a
//! proposal fits a GP to the *highest* rung with enough observations (the
//! A-BOHB conditioning: higher-fidelity losses dominate as soon as enough of
//! them exist) and maximizes expected improvement over random candidates.
//! Losses from different rungs are never mixed into one model — a rung-0
//! loss and a rung-3 loss of the same configuration are different
//! quantities.
//!
//! The model is refit from the observation buffer on every proposal, which
//! keeps the sampler a pure function of `(by_rung, rng)` — that purity is
//! what makes the serialized cursor (the buffer alone) sufficient for
//! byte-identical crash recovery. The fit cost is bounded by
//! [`GpSamplerConfig::max_model_points`].

use std::collections::BTreeMap;

use asha_core::ConfigSampler;
use asha_math::{expected_improvement, Gp, GpConfig};
use asha_space::{Config, SearchSpace};
use rand::Rng;

use crate::cursor::{decode_by_rung, encode_by_rung};

/// Version header of the GP sampler cursor format.
const CURSOR_HEADER: &str = "gp-v1";

/// Tuning knobs of [`GpSampler`].
#[derive(Debug, Clone, PartialEq)]
pub struct GpSamplerConfig {
    /// Minimum observations at a rung before it is modelled; below this the
    /// sampler falls back to uniform random. Zero means "auto" (`d + 3`).
    pub min_points: usize,
    /// Random candidates scored by EI per proposal.
    pub candidates: usize,
    /// At most this many (most recent) observations enter the GP — bounds
    /// the `O(n^3)` Cholesky per proposal.
    pub max_model_points: usize,
    /// Probability of proposing a uniform random configuration anyway,
    /// keeping exploration alive once the model takes over.
    pub random_fraction: f64,
}

impl Default for GpSamplerConfig {
    fn default() -> Self {
        GpSamplerConfig {
            min_points: 0,
            candidates: 64,
            max_model_points: 200,
            random_fraction: 0.25,
        }
    }
}

/// GP-EI as a [`ConfigSampler`]; see the module docs.
#[derive(Debug, Clone)]
pub struct GpSampler {
    space: SearchSpace,
    config: GpSamplerConfig,
    /// Observations per rung: unit-space points and losses.
    by_rung: BTreeMap<usize, Vec<(Vec<f64>, f64)>>,
}

impl GpSampler {
    /// Create a GP-EI sampler over `space` with the given knobs.
    pub fn new(space: SearchSpace, config: GpSamplerConfig) -> Self {
        GpSampler {
            space,
            config,
            by_rung: BTreeMap::new(),
        }
    }

    /// Number of recorded observations at the given rung.
    pub fn observations_at(&self, rung: usize) -> usize {
        self.by_rung.get(&rung).map_or(0, Vec::len)
    }

    fn min_points(&self) -> usize {
        if self.config.min_points > 0 {
            self.config.min_points
        } else {
            self.space.len() + 3
        }
    }

    /// The highest rung with enough observations to model, if any.
    fn model_rung(&self) -> Option<usize> {
        let need = self.min_points();
        self.by_rung
            .iter()
            .rev()
            .find(|(_, obs)| obs.len() >= need)
            .map(|(&rung, _)| rung)
    }
}

impl ConfigSampler for GpSampler {
    fn propose(&mut self, space: &SearchSpace, rng: &mut dyn rand::RngCore) -> Config {
        let dims = space.len();
        if rng.gen::<f64>() < self.config.random_fraction {
            return space.sample(rng);
        }
        let Some(rung) = self.model_rung() else {
            return space.sample(rng);
        };
        let obs = &self.by_rung[&rung];
        let start = obs.len().saturating_sub(self.config.max_model_points);
        let xs: Vec<Vec<f64>> = obs[start..].iter().map(|(u, _)| u.clone()).collect();
        // Infinite losses would poison the GP's target standardization;
        // store a large finite proxy instead (mirrors Vizier's capping).
        let ys: Vec<f64> = obs[start..].iter().map(|&(_, l)| l.min(1e9)).collect();
        let Ok(model) = Gp::fit(&xs, &ys, GpConfig::default()) else {
            return space.sample(rng);
        };
        let best = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let mut best_u: Option<Vec<f64>> = None;
        let mut best_ei = f64::NEG_INFINITY;
        for _ in 0..self.config.candidates {
            let u: Vec<f64> = (0..dims).map(|_| rng.gen::<f64>()).collect();
            let (mu, var) = model.predict(&u);
            let ei = expected_improvement(mu, var, best);
            if ei > best_ei {
                best_ei = ei;
                best_u = Some(u);
            }
        }
        match best_u {
            Some(u) => space.from_unit(&u),
            None => space.sample(rng),
        }
    }

    fn record(&mut self, config: &Config, rung: usize, _resource: f64, loss: f64) {
        // A config from a foreign space cannot be embedded; drop it rather
        // than corrupting the model.
        if let Ok(u) = self.space.to_unit(config) {
            self.by_rung
                .entry(rung)
                .or_default()
                .push((u, if loss.is_nan() { f64::INFINITY } else { loss }));
        }
    }

    fn name(&self) -> &str {
        "gp"
    }

    fn export_cursor(&self) -> Option<String> {
        Some(encode_by_rung(CURSOR_HEADER, &self.by_rung))
    }

    fn restore_cursor(&mut self, cursor: &str) {
        if let Some(by_rung) = decode_by_rung(CURSOR_HEADER, cursor) {
            self.by_rung = by_rung;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_space::Scale;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .continuous("x", 0.0, 1.0, Scale::Linear)
            .continuous("y", 0.0, 1.0, Scale::Linear)
            .build()
            .unwrap()
    }

    #[test]
    fn falls_back_to_random_without_data() {
        let s = space();
        let mut gp = GpSampler::new(s.clone(), GpSamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let c = gp.propose(&s, &mut rng);
        assert_eq!(c.len(), 2);
        assert_eq!(gp.name(), "gp");
    }

    #[test]
    fn model_concentrates_on_the_optimum() {
        // Quadratic bowl at (0.3, 0.7); EI proposals should get closer than
        // uniform sampling once the model has data.
        let s = space();
        let mut gp = GpSampler::new(
            s.clone(),
            GpSamplerConfig {
                random_fraction: 0.0,
                ..GpSamplerConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..60 {
            let c = s.sample(&mut rng);
            let u = s.to_unit(&c).unwrap();
            let loss = (u[0] - 0.3).powi(2) + (u[1] - 0.7).powi(2);
            gp.record(&c, 0, 1.0, loss);
        }
        let mut dist_sum = 0.0;
        let n = 30;
        for _ in 0..n {
            let c = gp.propose(&s, &mut rng);
            let u = s.to_unit(&c).unwrap();
            dist_sum += ((u[0] - 0.3).powi(2) + (u[1] - 0.7).powi(2)).sqrt();
        }
        let mean_dist = dist_sum / n as f64;
        assert!(
            mean_dist < 0.35,
            "mean distance {mean_dist} (uniform ≈ 0.48)"
        );
    }

    #[test]
    fn conditions_on_the_highest_modelled_rung() {
        let s = space();
        let mut gp = GpSampler::new(s.clone(), GpSamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let c = s.sample(&mut rng);
            gp.record(&c, 0, 1.0, 0.5);
        }
        for _ in 0..3 {
            let c = s.sample(&mut rng);
            gp.record(&c, 2, 9.0, 0.4);
        }
        // Rung 2 has too few points (need d+3 = 5): the model rung is 0.
        assert_eq!(gp.model_rung(), Some(0));
        for _ in 0..5 {
            let c = s.sample(&mut rng);
            gp.record(&c, 2, 9.0, 0.4);
        }
        assert_eq!(gp.model_rung(), Some(2));
    }

    #[test]
    fn cursor_roundtrip_restores_identical_proposals() {
        let s = space();
        let mut warm = GpSampler::new(s.clone(), GpSamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..30 {
            let c = s.sample(&mut rng);
            warm.record(&c, i % 2, 1.0, (i as f64).cos());
        }
        let cursor = warm.export_cursor().expect("gp keeps a cursor");
        let mut cold = GpSampler::new(s.clone(), GpSamplerConfig::default());
        cold.restore_cursor(&cursor);
        assert_eq!(cold.export_cursor().as_deref(), Some(cursor.as_str()));
        let mut ra = StdRng::seed_from_u64(9);
        let mut rb = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let a = warm.propose(&s, &mut ra);
            let b = cold.propose(&s, &mut rb);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }
}

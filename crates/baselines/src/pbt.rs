//! Population Based Training (Jaderberg et al., 2017), implemented the way
//! the paper's Appendix A.3 configures it:
//!
//! * truncation selection — the bottom 20% of the population copies weights
//!   *and* hyperparameters from a uniformly sampled top-20% member;
//! * exploration — inherited hyperparameters are perturbed by ×1.2 or ×0.8
//!   (finite domains move to adjacent choices) 3/4 of the time and resampled
//!   uniformly 1/4 of the time;
//! * architecture hyperparameters are frozen during exploration ("vanilla
//!   PBT is not compatible with hyperparameters that change the architecture
//!   of the network");
//! * a bounded-lag fairness rule keeps all members within `max_lag` resource
//!   of each other so exploitation compares like with like;
//! * optionally, new populations are spawned whenever no job is available,
//!   "to maintain 100% worker efficiency" in the distributed experiments.

use asha_core::{Decision, Job, Observation, Scheduler, TrialId};
use asha_math::stats::quantile;
use asha_space::{Config, SearchSpace};
use rand::Rng;

/// Configuration of a [`Pbt`] scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct PbtConfig {
    /// Population size (the paper uses 25 for the CNN tasks, 20 for the
    /// DropConnect LSTM).
    pub population: usize,
    /// Maximum cumulative resource per member.
    pub max_resource: f64,
    /// Resource between exploit/explore rounds (1000 of 30000 iterations in
    /// Sections 4.1–4.2; 8 of 256 epochs in Section 4.3.1).
    pub interval: f64,
    /// Fraction replaced/copied by truncation selection (0.2).
    pub truncation: f64,
    /// Multiplicative perturbation factor (1.2, or its inverse).
    pub perturb_factor: f64,
    /// Probability that exploration perturbs (vs. resamples) — 3/4.
    pub perturb_prob: f64,
    /// Names of hyperparameters frozen during exploration.
    pub frozen: Vec<String>,
    /// Members may not train further than this many resource units ahead of
    /// the slowest active member (2000 iterations in the paper).
    pub max_lag: f64,
    /// Spawn a fresh population whenever no job is available.
    pub spawn_populations: bool,
}

impl PbtConfig {
    /// The paper's settings: truncation 0.2, perturb ×1.2 with probability
    /// 3/4, `max_lag = 2 * interval`, no extra populations.
    ///
    /// # Panics
    ///
    /// Panics if `population < 2`, or resources/interval are non-positive.
    pub fn new(population: usize, max_resource: f64, interval: f64) -> Self {
        assert!(population >= 2, "population needs at least two members");
        assert!(
            max_resource > 0.0 && interval > 0.0 && interval <= max_resource,
            "need 0 < interval <= max_resource"
        );
        PbtConfig {
            population,
            max_resource,
            interval,
            truncation: 0.2,
            perturb_factor: 1.2,
            perturb_prob: 0.75,
            frozen: Vec::new(),
            max_lag: 2.0 * interval,
            spawn_populations: false,
        }
    }

    /// Freeze the named hyperparameters during exploration.
    pub fn with_frozen(mut self, frozen: &[&str]) -> Self {
        self.frozen = frozen.iter().map(|s| (*s).to_owned()).collect();
        self
    }

    /// Spawn fresh populations when all members are busy or blocked.
    pub fn spawning(mut self) -> Self {
        self.spawn_populations = true;
        self
    }

    /// Override the bounded-lag window.
    pub fn with_max_lag(mut self, max_lag: f64) -> Self {
        assert!(max_lag >= self.interval, "lag below one interval deadlocks");
        self.max_lag = max_lag;
        self
    }
}

#[derive(Debug, Clone)]
struct Member {
    trial: TrialId,
    config: Config,
    /// Completed cumulative resource.
    resource: f64,
    pending: bool,
    last_loss: Option<f64>,
    done: bool,
}

/// Population Based Training as an [`asha_core::Scheduler`]. Exploitation
/// copies checkpoints via [`Job::inherit_from`]; the executor (simulator or
/// thread pool) performs the actual weight copy.
pub struct Pbt {
    space: SearchSpace,
    config: PbtConfig,
    populations: Vec<Vec<Member>>,
    next_trial: u64,
    exploits: usize,
    name: String,
}

impl std::fmt::Debug for Pbt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pbt")
            .field("config", &self.config)
            .field("populations", &self.populations.len())
            .field("exploits", &self.exploits)
            .finish_non_exhaustive()
    }
}

impl Pbt {
    /// Create a PBT scheduler. Member configurations are sampled lazily on
    /// the first `suggest` calls.
    pub fn new(space: SearchSpace, config: PbtConfig) -> Self {
        Pbt {
            space,
            config,
            populations: Vec::new(),
            next_trial: 0,
            exploits: 0,
            name: "PBT".to_owned(),
        }
    }

    /// Number of exploit (truncation-copy) events so far.
    pub fn exploit_count(&self) -> usize {
        self.exploits
    }

    /// Number of populations spawned.
    pub fn population_count(&self) -> usize {
        self.populations.len()
    }

    fn fresh_trial(&mut self) -> TrialId {
        let t = TrialId(self.next_trial);
        self.next_trial += 1;
        t
    }

    fn spawn_population(&mut self, rng: &mut dyn rand::RngCore) {
        let mut members = Vec::with_capacity(self.config.population);
        for _ in 0..self.config.population {
            let trial = self.fresh_trial();
            members.push(Member {
                trial,
                config: self.space.sample(rng),
                resource: 0.0,
                pending: false,
                last_loss: None,
                done: false,
            });
        }
        self.populations.push(members);
    }

    /// Pick the next member of a population to advance: the least-trained
    /// idle member within the lag window, if any.
    fn next_member(&self, pop: &[Member]) -> Option<usize> {
        let min_active = pop
            .iter()
            .filter(|m| !m.done)
            .map(|m| m.resource)
            .fold(f64::INFINITY, f64::min);
        pop.iter()
            .enumerate()
            .filter(|(_, m)| {
                !m.pending && !m.done && m.resource - min_active < self.config.max_lag - 1e-9
            })
            .min_by(|a, b| {
                a.1.resource
                    .partial_cmp(&b.1.resource)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
    }

    /// Truncation-selection exploit + explore for one member at an interval
    /// boundary. Returns the parent trial to inherit from, if any.
    fn exploit_explore(
        &mut self,
        pop_idx: usize,
        member_idx: usize,
        rng: &mut dyn rand::RngCore,
    ) -> Option<TrialId> {
        let losses: Vec<f64> = self.populations[pop_idx]
            .iter()
            .filter_map(|m| m.last_loss)
            .collect();
        if losses.len() < 2 {
            return None;
        }
        let my_loss = self.populations[pop_idx][member_idx].last_loss?;
        let n = losses.len();
        let k = ((n as f64 * self.config.truncation).ceil() as usize).max(1);
        // Rank strictly: the member is exploited only if at least `n - k`
        // members are strictly better (ties never trigger churn).
        let strictly_better = losses.iter().filter(|&&l| l < my_loss).count();
        if strictly_better < n - k {
            return None;
        }
        // Pick a parent uniformly from the top truncation fraction (strictly
        // better members only).
        let lo = quantile(&losses, self.config.truncation);
        let top: Vec<usize> = self.populations[pop_idx]
            .iter()
            .enumerate()
            .filter(|(i, m)| {
                *i != member_idx && m.last_loss.is_some_and(|l| l <= lo && l < my_loss)
            })
            .map(|(i, _)| i)
            .collect();
        let &parent_idx = match top.as_slice() {
            [] => return None,
            tops => &tops[rng.gen_range(0..tops.len())],
        };
        let parent = self.populations[pop_idx][parent_idx].clone();
        // Explore: perturb 3/4 of the time, resample 1/4 (frozen params
        // never change — inherited architecture weights must stay valid).
        let frozen: Vec<&str> = self.config.frozen.iter().map(String::as_str).collect();
        let child_config = if rng.gen::<f64>() < self.config.perturb_prob {
            self.space
                .perturb(&parent.config, self.config.perturb_factor, &frozen, rng)
                .expect("population configs come from this space")
        } else {
            let mut resampled = self.space.sample(rng);
            // Keep frozen values from the parent.
            for (i, (name, _)) in self.space.iter().enumerate() {
                if frozen.contains(&name) {
                    resampled.values_mut()[i] = parent.config.values()[i].clone();
                }
            }
            resampled
        };
        let child_trial = self.fresh_trial();
        let member = &mut self.populations[pop_idx][member_idx];
        member.trial = child_trial;
        member.config = child_config;
        member.resource = parent.resource;
        member.last_loss = parent.last_loss;
        self.exploits += 1;
        Some(parent.trial)
    }

    fn all_done(&self) -> bool {
        !self.populations.is_empty() && self.populations.iter().all(|p| p.iter().all(|m| m.done))
    }
}

impl Scheduler for Pbt {
    fn suggest(&mut self, rng: &mut dyn rand::RngCore) -> Decision {
        if self.populations.is_empty() {
            self.spawn_population(rng);
        }
        for pop_idx in 0..self.populations.len() {
            let Some(member_idx) = self.next_member(&self.populations[pop_idx]) else {
                continue;
            };
            // Exploit/explore at interval boundaries (not before the first
            // segment).
            let inherit_from = if self.populations[pop_idx][member_idx].resource > 0.0 {
                self.exploit_explore(pop_idx, member_idx, rng)
            } else {
                None
            };
            let member = &mut self.populations[pop_idx][member_idx];
            member.pending = true;
            let target = (member.resource + self.config.interval).min(self.config.max_resource);
            let rung = (member.resource / self.config.interval).round() as usize;
            return Decision::Run(Job {
                trial: member.trial,
                config: member.config.clone(),
                rung,
                resource: target,
                bracket: pop_idx,
                inherit_from,
            });
        }
        if self.config.spawn_populations {
            self.spawn_population(rng);
            // The fresh population always has an idle member at resource 0.
            return self.suggest(rng);
        }
        if self.all_done() {
            Decision::Finished
        } else {
            Decision::Wait
        }
    }

    fn observe(&mut self, obs: Observation) {
        for pop in &mut self.populations {
            if let Some(m) = pop.iter_mut().find(|m| m.trial == obs.trial) {
                if !m.pending {
                    return; // duplicate
                }
                m.pending = false;
                m.resource = obs.resource;
                m.last_loss = Some(if obs.loss.is_nan() {
                    f64::INFINITY
                } else {
                    obs.loss
                });
                if m.resource >= self.config.max_resource - 1e-9 {
                    m.done = true;
                }
                return;
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_space::Scale;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .continuous("lr", 1e-3, 1.0, Scale::Log)
            .discrete("layers", 2, 4)
            .build()
            .unwrap()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    /// Drive PBT serially with loss = f(config), returning when finished.
    fn run_serial(
        pbt: &mut Pbt,
        r: &mut StdRng,
        mut loss_of: impl FnMut(&Config, f64) -> f64,
        max_steps: usize,
    ) -> usize {
        let mut steps = 0;
        for _ in 0..max_steps {
            match pbt.suggest(r) {
                Decision::Run(job) => {
                    steps += 1;
                    let loss = loss_of(&job.config, job.resource);
                    pbt.observe(Observation::for_job(&job, loss));
                }
                Decision::Finished => break,
                Decision::Wait => panic!("serial PBT should never wait"),
            }
        }
        steps
    }

    #[test]
    fn population_trains_to_completion() {
        let s = space();
        let mut pbt = Pbt::new(s.clone(), PbtConfig::new(4, 8.0, 2.0));
        let mut r = rng();
        let steps = run_serial(&mut pbt, &mut r, |_, _| 0.5, 1000);
        // 4 members x 4 segments each.
        assert_eq!(steps, 16);
        assert!(pbt.all_done());
        assert!(matches!(pbt.suggest(&mut r), Decision::Finished));
    }

    #[test]
    fn exploits_replace_weak_members() {
        let s = space();
        let mut pbt = Pbt::new(s.clone(), PbtConfig::new(10, 20.0, 2.0));
        let mut r = rng();
        let s2 = s.clone();
        // Loss determined by lr: members with bad lr should copy good ones.
        run_serial(
            &mut pbt,
            &mut r,
            move |c, _| (c.float("lr", &s2).unwrap().ln() - (-3.0)).abs(),
            10_000,
        );
        assert!(pbt.exploit_count() > 0, "no exploits happened");
    }

    #[test]
    fn exploited_jobs_carry_inheritance() {
        let s = space();
        let mut pbt = Pbt::new(s.clone(), PbtConfig::new(5, 50.0, 1.0));
        let mut r = rng();
        let mut saw_inherit = false;
        for _ in 0..500 {
            match pbt.suggest(&mut r) {
                Decision::Run(job) => {
                    if job.inherit_from.is_some() {
                        saw_inherit = true;
                        assert_ne!(job.inherit_from, Some(job.trial));
                    }
                    // Higher trial number = worse loss, forcing turnover.
                    pbt.observe(Observation::for_job(&job, job.trial.0 as f64));
                }
                Decision::Finished => break,
                Decision::Wait => panic!("serial PBT should never wait"),
            }
        }
        assert!(saw_inherit, "no inherited jobs were issued");
    }

    #[test]
    fn frozen_params_survive_exploration() {
        let s = space();
        let mut pbt = Pbt::new(
            s.clone(),
            PbtConfig::new(6, 30.0, 1.0).with_frozen(&["layers"]),
        );
        let mut r = rng();
        // Record each member's layers at birth via trial->layers map.
        let mut layers_of = std::collections::HashMap::new();
        for _ in 0..800 {
            match pbt.suggest(&mut r) {
                Decision::Run(job) => {
                    let layers = job.config.int("layers", &s).unwrap();
                    if let Some(src) = job.inherit_from {
                        let parent_layers = layers_of[&src.0];
                        assert_eq!(
                            layers, parent_layers,
                            "frozen architecture changed on inherit"
                        );
                    }
                    layers_of.insert(job.trial.0, layers);
                    pbt.observe(Observation::for_job(&job, job.trial.0 as f64));
                }
                Decision::Finished => break,
                Decision::Wait => panic!("serial PBT should never wait"),
            }
        }
    }

    #[test]
    fn lag_window_blocks_runaway_members() {
        let s = space();
        let mut pbt = Pbt::new(s.clone(), PbtConfig::new(2, 100.0, 1.0));
        let mut r = rng();
        // Run member A but never report member B's first job: A must stop
        // within max_lag = 2 units.
        let job_a = pbt.suggest(&mut r).job().unwrap();
        let _job_b = pbt.suggest(&mut r).job().unwrap();
        pbt.observe(Observation::for_job(&job_a, 0.1));
        let job_a2 = pbt.suggest(&mut r).job().unwrap();
        pbt.observe(Observation::for_job(&job_a2, 0.1));
        // A is now 2 ahead of B (still pending at 0): blocked.
        assert!(pbt.suggest(&mut r).is_wait());
    }

    #[test]
    fn spawning_mode_keeps_workers_busy() {
        let s = space();
        let mut pbt = Pbt::new(s.clone(), PbtConfig::new(2, 100.0, 1.0).spawning());
        let mut r = rng();
        // Saturate beyond one population without reporting anything.
        for _ in 0..5 {
            assert!(matches!(pbt.suggest(&mut r), Decision::Run(_)));
        }
        assert!(pbt.population_count() >= 2);
    }

    #[test]
    #[should_panic(expected = "at least two members")]
    fn tiny_population_rejected() {
        let _ = PbtConfig::new(1, 10.0, 1.0);
    }
}

//! A stand-in for Fabolas (Klein et al., 2017): Bayesian optimization over
//! the joint (configuration, dataset-fraction) space with a cost-aware
//! acquisition — expected improvement at the *full* dataset divided by the
//! cost of the proposed cheap evaluation.
//!
//! Protocol details mirror the paper's Appendix A.2 evaluation: most
//! evaluations use small training subsets; periodically the current
//! *predicted* incumbent is trained on the full budget (Klein et al.'s
//! "offline validation step"), which is when the run trace actually
//! improves. This reproduces Fabolas's characteristic profile — fast early
//! progress, higher variance, and a handicap against Hyperband's by-rung
//! accounting (Figure 9).

use asha_core::{Decision, Job, Observation, Scheduler, TrialId};
use asha_math::{expected_improvement, Gp, GpConfig};
use asha_space::{Config, SearchSpace};
use rand::Rng;

/// Configuration of a [`Fabolas`] scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct FabolasConfig {
    /// Full training budget `R`.
    pub max_resource: f64,
    /// Subset fractions available for cheap evaluations.
    pub fractions: Vec<f64>,
    /// Random (config, fraction) evaluations before the model kicks in.
    pub warmup: usize,
    /// Every `incumbent_every` suggestions, evaluate the predicted-best
    /// configuration on the full budget.
    pub incumbent_every: usize,
    /// At most this many recent observations enter the GP.
    pub max_model_points: usize,
    /// Random candidates scored per suggestion.
    pub candidates: usize,
}

impl FabolasConfig {
    /// Defaults: fractions `{1/64, 1/16, 1/4}`, full-budget incumbent
    /// evaluation every 8 suggestions.
    ///
    /// # Panics
    ///
    /// Panics if `max_resource <= 0`.
    pub fn new(max_resource: f64) -> Self {
        assert!(max_resource > 0.0, "maximum resource must be positive");
        FabolasConfig {
            max_resource,
            fractions: vec![1.0 / 64.0, 1.0 / 16.0, 1.0 / 4.0],
            warmup: 9,
            incumbent_every: 8,
            max_model_points: 250,
            candidates: 200,
        }
    }
}

/// The Fabolas-like scheduler; see the module docs.
pub struct Fabolas {
    space: SearchSpace,
    config: FabolasConfig,
    /// Joint observations: config unit point + fraction, and loss.
    observations: Vec<(Vec<f64>, f64)>,
    /// Issued-but-unreported jobs: trial id and its joint unit point.
    pending: Vec<(TrialId, Vec<f64>)>,
    model: Option<Gp>,
    stale: bool,
    suggestions: usize,
    next_trial: u64,
    name: String,
}

impl std::fmt::Debug for Fabolas {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabolas")
            .field("observations", &self.observations.len())
            .field("suggestions", &self.suggestions)
            .finish_non_exhaustive()
    }
}

impl Fabolas {
    /// Create a Fabolas-like scheduler.
    pub fn new(space: SearchSpace, config: FabolasConfig) -> Self {
        Fabolas {
            space,
            config,
            observations: Vec::new(),
            pending: Vec::new(),
            model: None,
            stale: true,
            suggestions: 0,
            next_trial: 0,
            name: "Fabolas".to_owned(),
        }
    }

    /// Number of recorded observations (all fidelities).
    pub fn observations(&self) -> usize {
        self.observations.len()
    }

    fn refit(&mut self) {
        let start = self
            .observations
            .len()
            .saturating_sub(self.config.max_model_points);
        let xs: Vec<Vec<f64>> = self.observations[start..]
            .iter()
            .map(|(u, _)| u.clone())
            .collect();
        let ys: Vec<f64> = self.observations[start..].iter().map(|&(_, l)| l).collect();
        self.model = Gp::fit(&xs, &ys, GpConfig::default()).ok();
        self.stale = false;
    }

    /// Predicted loss at the full dataset for a config unit point.
    fn predict_full(&self, unit_config: &[f64]) -> (f64, f64) {
        let model = self.model.as_ref().expect("model fitted before predict");
        let mut joint = unit_config.to_vec();
        joint.push(1.0);
        model.predict(&joint)
    }

    /// Best *predicted* full-budget loss over the configs evaluated so far.
    fn predicted_incumbent(&self) -> Option<(Vec<f64>, f64)> {
        self.model.as_ref()?;
        let mut best: Option<(Vec<f64>, f64)> = None;
        for (joint, _) in &self.observations {
            let unit_config = &joint[..joint.len() - 1];
            let (mu, _) = self.predict_full(unit_config);
            if best.as_ref().is_none_or(|(_, b)| mu < *b) {
                best = Some((unit_config.to_vec(), mu));
            }
        }
        best
    }

    fn make_job(&mut self, config: Config, resource: f64) -> Job {
        let trial = TrialId(self.next_trial);
        self.next_trial += 1;
        let mut joint = self
            .space
            .to_unit(&config)
            .expect("proposals come from this space");
        joint.push((resource / self.config.max_resource).clamp(0.0, 1.0));
        self.pending.push((trial, joint));
        Job {
            trial,
            config,
            rung: 0,
            resource,
            bracket: 0,
            inherit_from: None,
        }
    }
}

impl Scheduler for Fabolas {
    fn suggest(&mut self, rng: &mut dyn rand::RngCore) -> Decision {
        self.suggestions += 1;
        let dims = self.space.len();
        // Warmup: random configs cycling through the subset fractions.
        if self.observations.len() < self.config.warmup {
            let frac = self.config.fractions[self.suggestions % self.config.fractions.len()];
            let config = self.space.sample(rng);
            let resource = frac * self.config.max_resource;
            return Decision::Run(self.make_job(config, resource));
        }
        if self.stale || self.model.is_none() {
            self.refit();
        }
        if self.model.is_none() {
            let config = self.space.sample(rng);
            return Decision::Run(self.make_job(config, self.config.max_resource));
        }
        // Periodic offline incumbent evaluation at the full budget.
        if self.suggestions.is_multiple_of(self.config.incumbent_every) {
            if let Some((unit, _)) = self.predicted_incumbent() {
                let config = self.space.from_unit(&unit);
                return Decision::Run(self.make_job(config, self.config.max_resource));
            }
        }
        // Cost-aware acquisition: EI at full fidelity per unit of cost of
        // the cheap evaluation actually proposed.
        let best_full = self
            .predicted_incumbent()
            .map(|(_, mu)| mu)
            .unwrap_or(f64::INFINITY);
        let mut best_score = f64::NEG_INFINITY;
        let mut best_choice: Option<(Vec<f64>, f64)> = None;
        for _ in 0..self.config.candidates {
            let u: Vec<f64> = (0..dims).map(|_| rng.gen::<f64>()).collect();
            let (mu_full, var_full) = self.predict_full(&u);
            let ei = expected_improvement(mu_full, var_full, best_full);
            for &frac in &self.config.fractions {
                // Cost grows with the fraction; information too, but EI is
                // measured at full fidelity, so small fractions win unless
                // the model is already confident.
                let mut joint = u.clone();
                joint.push(frac);
                let (_, var_at) = self
                    .model
                    .as_ref()
                    .expect("model fitted above")
                    .predict(&joint);
                // Prefer cheap, informative (high-variance) evaluations.
                let score = (ei * var_at.sqrt()).ln() - frac.ln();
                if score > best_score {
                    best_score = score;
                    best_choice = Some((u.clone(), frac));
                }
            }
        }
        match best_choice {
            Some((u, frac)) => {
                let config = self.space.from_unit(&u);
                let resource = frac * self.config.max_resource;
                Decision::Run(self.make_job(config, resource))
            }
            None => {
                let config = self.space.sample(rng);
                Decision::Run(self.make_job(config, self.config.max_resource))
            }
        }
    }

    fn observe(&mut self, obs: Observation) {
        let Some(pos) = self.pending.iter().position(|(t, _)| *t == obs.trial) else {
            return;
        };
        let (_, joint) = self.pending.swap_remove(pos);
        let loss = if obs.loss.is_finite() { obs.loss } else { 1e9 };
        self.observations.push((joint, loss));
        self.stale = true;
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_space::Scale;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .continuous("x", 0.0, 1.0, Scale::Linear)
            .continuous("y", 0.0, 1.0, Scale::Linear)
            .build()
            .unwrap()
    }

    /// Surrogate objective: loss shrinks toward the config's quality as the
    /// fraction grows (partial data is pessimistic but informative).
    fn loss_of(u: &[f64], frac: f64) -> f64 {
        let quality = (u[0] - 0.3).powi(2) + (u[1] - 0.6).powi(2);
        quality + 0.3 * (1.0 - frac)
    }

    fn drive(f: &mut Fabolas, s: &SearchSpace, rng: &mut StdRng, steps: usize) -> Vec<Job> {
        let mut jobs = Vec::new();
        for _ in 0..steps {
            let job = f.suggest(rng).job().expect("fabolas always has work");
            let u = s.to_unit(&job.config).unwrap();
            let frac = job.resource / f.config.max_resource;
            f.observe(Observation::for_job(&job, loss_of(&u, frac)));
            jobs.push(job);
        }
        jobs
    }

    #[test]
    fn warmup_uses_subset_fractions() {
        let s = space();
        let mut f = Fabolas::new(s.clone(), FabolasConfig::new(64.0));
        let mut rng = StdRng::seed_from_u64(0);
        let jobs = drive(&mut f, &s, &mut rng, 9);
        assert!(jobs.iter().all(|j| j.resource < 64.0), "warmup is cheap");
        assert_eq!(f.observations(), 9);
    }

    #[test]
    fn most_evaluations_are_cheap_but_incumbents_run_full() {
        let s = space();
        let mut f = Fabolas::new(s.clone(), FabolasConfig::new(64.0));
        let mut rng = StdRng::seed_from_u64(1);
        let jobs = drive(&mut f, &s, &mut rng, 60);
        let full: Vec<&Job> = jobs.iter().filter(|j| j.resource == 64.0).collect();
        let cheap = jobs.len() - full.len();
        assert!(!full.is_empty(), "no full-budget incumbent evaluations");
        assert!(cheap > full.len(), "cheap evaluations should dominate");
    }

    #[test]
    fn full_budget_incumbents_improve_over_warmup() {
        let s = space();
        let mut f = Fabolas::new(s.clone(), FabolasConfig::new(64.0));
        let mut rng = StdRng::seed_from_u64(2);
        let jobs = drive(&mut f, &s, &mut rng, 80);
        // The last full-budget evaluation should be near the optimum (0.3, 0.6).
        let last_full = jobs
            .iter()
            .rev()
            .find(|j| j.resource == 64.0)
            .expect("at least one incumbent evaluation");
        let u = s.to_unit(&last_full.config).unwrap();
        let dist = ((u[0] - 0.3).powi(2) + (u[1] - 0.6).powi(2)).sqrt();
        assert!(dist < 0.35, "incumbent distance {dist} from optimum");
    }

    #[test]
    fn unsolicited_observations_ignored() {
        let s = space();
        let mut f = Fabolas::new(s, FabolasConfig::new(64.0));
        f.observe(Observation::new(TrialId(999), 0, 1.0, 0.1));
        assert_eq!(f.observations(), 0);
        assert_eq!(f.name(), "Fabolas");
    }
}

//! Tree-structured Parzen Estimator sampling (the model inside BOHB).
//!
//! Observations are grouped by rung; the sampler models the highest rung
//! with enough data, splits it into "good" (top `gamma` fraction) and "bad"
//! configurations, fits a per-dimension 1-D KDE to each group in unit space,
//! and proposes the candidate maximizing the density ratio `l(x)/g(x)` among
//! a handful of samples from the good model — the standard TPE acquisition,
//! factorized over dimensions as BOHB does.

use std::collections::BTreeMap;

use asha_core::ConfigSampler;
use asha_math::Kde1d;
use asha_space::{Config, SearchSpace};
use rand::Rng;

use crate::cursor::{decode_by_rung, encode_by_rung};

/// Version header of the TPE sampler cursor format.
const CURSOR_HEADER: &str = "tpe-v1";

/// Tuning knobs of [`TpeSampler`].
#[derive(Debug, Clone, PartialEq)]
pub struct TpeConfig {
    /// Fraction of observations treated as "good" (BOHB's default 0.15).
    pub gamma: f64,
    /// Minimum observations at a rung before it is modelled; below this the
    /// sampler falls back to uniform random. Zero means "auto" (`d + 3`,
    /// BOHB's default).
    pub min_points: usize,
    /// Number of candidates drawn from the good KDE per proposal.
    pub candidates: usize,
    /// Probability of proposing a uniform random configuration anyway
    /// (BOHB's random fraction, keeping the theoretical guarantees).
    pub random_fraction: f64,
    /// Bandwidth floor of the per-dimension KDEs.
    pub min_bandwidth: f64,
}

impl Default for TpeConfig {
    fn default() -> Self {
        TpeConfig {
            gamma: 0.15,
            min_points: 0,
            candidates: 24,
            random_fraction: 1.0 / 3.0,
            min_bandwidth: 0.03,
        }
    }
}

/// A [`ConfigSampler`] implementing TPE, bound to its search space (needed
/// because [`ConfigSampler::record`] does not receive the space).
#[derive(Debug, Clone)]
pub struct TpeSampler {
    space: SearchSpace,
    config: TpeConfig,
    /// Observations per rung: unit-space points and losses.
    by_rung: BTreeMap<usize, Vec<(Vec<f64>, f64)>>,
}

impl TpeSampler {
    /// Create a TPE sampler over `space` with the given knobs.
    pub fn new(space: SearchSpace, config: TpeConfig) -> Self {
        TpeSampler {
            space,
            config,
            by_rung: BTreeMap::new(),
        }
    }

    /// Number of recorded observations at the given rung.
    pub fn observations_at(&self, rung: usize) -> usize {
        self.by_rung.get(&rung).map_or(0, Vec::len)
    }

    fn min_points(&self) -> usize {
        if self.config.min_points > 0 {
            self.config.min_points
        } else {
            self.space.len() + 3
        }
    }

    /// The highest rung with enough observations to model, if any.
    fn model_rung(&self) -> Option<usize> {
        let need = self.min_points();
        self.by_rung
            .iter()
            .rev()
            .find(|(_, obs)| obs.len() >= need)
            .map(|(&rung, _)| rung)
    }
}

impl ConfigSampler for TpeSampler {
    fn propose(&mut self, space: &SearchSpace, rng: &mut dyn rand::RngCore) -> Config {
        let dims = space.len();
        if rng.gen::<f64>() < self.config.random_fraction {
            return space.sample(rng);
        }
        let Some(rung) = self.model_rung() else {
            return space.sample(rng);
        };
        let obs = &self.by_rung[&rung];
        // Split into good/bad by loss.
        let mut order: Vec<usize> = (0..obs.len()).collect();
        order.sort_by(|&a, &b| {
            obs[a]
                .1
                .partial_cmp(&obs[b].1)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let n_good = ((obs.len() as f64 * self.config.gamma).ceil() as usize)
            .max(2)
            .min(obs.len() - 1);
        let (good_idx, bad_idx) = order.split_at(n_good);
        if bad_idx.is_empty() {
            return space.sample(rng);
        }
        // Per-dimension KDEs.
        let kde_dim = |idx: &[usize], d: usize| {
            let pts: Vec<f64> = idx.iter().map(|&i| obs[i].0[d]).collect();
            Kde1d::new(&pts, self.config.min_bandwidth)
        };
        let good: Vec<Kde1d> = (0..dims).map(|d| kde_dim(good_idx, d)).collect();
        let bad: Vec<Kde1d> = (0..dims).map(|d| kde_dim(bad_idx, d)).collect();
        // Sample candidates from the good model; keep the best density
        // ratio l(x)/g(x).
        let mut best_u: Option<Vec<f64>> = None;
        let mut best_score = f64::NEG_INFINITY;
        for _ in 0..self.config.candidates {
            let u: Vec<f64> = good.iter().map(|k| k.sample(rng)).collect();
            let score: f64 = u
                .iter()
                .enumerate()
                .map(|(d, &ud)| good[d].pdf(ud).ln() - bad[d].pdf(ud).ln())
                .sum();
            if score > best_score {
                best_score = score;
                best_u = Some(u);
            }
        }
        match best_u {
            Some(u) => space.from_unit(&u),
            None => space.sample(rng),
        }
    }

    fn record(&mut self, config: &Config, rung: usize, _resource: f64, loss: f64) {
        // A config from a foreign space cannot be embedded; drop it rather
        // than corrupting the model.
        if let Ok(u) = self.space.to_unit(config) {
            self.by_rung
                .entry(rung)
                .or_default()
                .push((u, if loss.is_nan() { f64::INFINITY } else { loss }));
        }
    }

    fn name(&self) -> &str {
        "tpe"
    }

    fn export_cursor(&self) -> Option<String> {
        Some(encode_by_rung(CURSOR_HEADER, &self.by_rung))
    }

    fn restore_cursor(&mut self, cursor: &str) {
        // Atomic: an unrecognized or malformed cursor leaves the sampler
        // cold rather than half-restored.
        if let Some(by_rung) = decode_by_rung(CURSOR_HEADER, cursor) {
            self.by_rung = by_rung;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_space::Scale;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .continuous("x", 0.0, 1.0, Scale::Linear)
            .continuous("y", 0.0, 1.0, Scale::Linear)
            .build()
            .unwrap()
    }

    #[test]
    fn falls_back_to_random_without_data() {
        let s = space();
        let mut tpe = TpeSampler::new(s.clone(), TpeConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let c = tpe.propose(&s, &mut rng);
        assert_eq!(c.len(), 2);
        assert_eq!(tpe.observations_at(0), 0);
        assert_eq!(tpe.name(), "tpe");
    }

    #[test]
    fn concentrates_on_the_good_region() {
        // Loss = distance from (0.2, 0.8): TPE should propose near there.
        let s = space();
        let mut tpe = TpeSampler::new(
            s.clone(),
            TpeConfig {
                random_fraction: 0.0,
                ..TpeConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..120 {
            let c = s.sample(&mut rng);
            let u = s.to_unit(&c).unwrap();
            let loss = (u[0] - 0.2).powi(2) + (u[1] - 0.8).powi(2);
            tpe.record(&c, 0, 1.0, loss);
        }
        let mut dist_sum = 0.0;
        let n = 50;
        for _ in 0..n {
            let c = tpe.propose(&s, &mut rng);
            let u = s.to_unit(&c).unwrap();
            dist_sum += ((u[0] - 0.2).powi(2) + (u[1] - 0.8).powi(2)).sqrt();
        }
        let mean_dist = dist_sum / n as f64;
        // Uniform sampling would average ≈ 0.56 from that corner point.
        assert!(mean_dist < 0.35, "mean distance {mean_dist} too large");
    }

    #[test]
    fn uses_the_highest_rung_with_enough_data() {
        let s = space();
        let mut tpe = TpeSampler::new(s.clone(), TpeConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let c = s.sample(&mut rng);
            tpe.record(&c, 0, 1.0, 0.5);
        }
        for _ in 0..3 {
            let c = s.sample(&mut rng);
            tpe.record(&c, 1, 4.0, 0.4);
        }
        // Rung 1 has too few points (need d+3 = 5): the model rung is 0.
        assert_eq!(tpe.model_rung(), Some(0));
        for _ in 0..5 {
            let c = s.sample(&mut rng);
            tpe.record(&c, 1, 4.0, 0.4);
        }
        assert_eq!(tpe.model_rung(), Some(1));
    }

    #[test]
    fn nan_losses_are_sanitized() {
        let s = space();
        let mut tpe = TpeSampler::new(s.clone(), TpeConfig::default());
        let c = s.default_config();
        tpe.record(&c, 0, 1.0, f64::NAN);
        assert_eq!(tpe.observations_at(0), 1);
    }

    #[test]
    fn foreign_configs_are_dropped() {
        let s = space();
        let mut tpe = TpeSampler::new(s.clone(), TpeConfig::default());
        let other = SearchSpace::builder()
            .continuous("z", 0.0, 1.0, Scale::Linear)
            .build()
            .unwrap();
        tpe.record(&other.default_config(), 0, 1.0, 0.5);
        assert_eq!(tpe.observations_at(0), 0);
    }

    #[test]
    fn cursor_roundtrip_restores_identical_proposals() {
        let s = space();
        let mut warm = TpeSampler::new(s.clone(), TpeConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..40 {
            let c = s.sample(&mut rng);
            warm.record(&c, i % 3, 1.0, (i as f64).sin());
        }
        let cursor = warm.export_cursor().expect("tpe keeps a cursor");
        let mut cold = TpeSampler::new(s.clone(), TpeConfig::default());
        cold.restore_cursor(&cursor);
        assert_eq!(cold.export_cursor().as_deref(), Some(cursor.as_str()));
        // Identical proposals from identical RNG streams.
        let mut ra = StdRng::seed_from_u64(9);
        let mut rb = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let a = warm.propose(&s, &mut ra);
            let b = cold.propose(&s, &mut rb);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn malformed_cursor_is_ignored() {
        let s = space();
        let mut tpe = TpeSampler::new(s.clone(), TpeConfig::default());
        let c = s.default_config();
        tpe.record(&c, 0, 1.0, 0.5);
        tpe.restore_cursor("gp-v1"); // wrong kind
        tpe.restore_cursor("tpe-v1;0=broken"); // malformed body
        assert_eq!(tpe.observations_at(0), 1, "state must survive bad cursors");
    }

    #[test]
    fn proposals_stay_in_the_space() {
        let s = SearchSpace::builder()
            .continuous("lr", 1e-4, 1.0, Scale::Log)
            .discrete("n", 1, 8)
            .ordinal("b", &[32.0, 64.0])
            .build()
            .unwrap();
        let mut tpe = TpeSampler::new(
            s.clone(),
            TpeConfig {
                random_fraction: 0.0,
                ..TpeConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..30 {
            let c = s.sample(&mut rng);
            tpe.record(&c, 0, 1.0, i as f64);
        }
        for _ in 0..20 {
            let c = tpe.propose(&s, &mut rng);
            let lr = c.float("lr", &s).unwrap();
            assert!((1e-4..=1.0).contains(&lr));
            let n = c.int("n", &s).unwrap();
            assert!((1..=8).contains(&n));
        }
    }
}

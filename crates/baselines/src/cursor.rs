//! Exact-roundtrip serialization of per-rung observation buffers — the
//! sampler *cursor* that [`asha_core::ConfigSampler::export_cursor`] hands
//! to durable snapshots.
//!
//! The format is a single line of ASCII:
//!
//! ```text
//! <header>;<rung>=<obs>|<obs>|...;<rung>=...
//! obs := <loss_bits_hex>:<x_bits_hex>,<x_bits_hex>,...
//! ```
//!
//! Every `f64` is written as the hex of its IEEE-754 bit pattern, so restore
//! is bit-exact (including negative zeros and infinities) and a restored
//! sampler proposes byte-identical configurations — the property the
//! kill-and-recover tests assert. Decoding is atomic: a malformed cursor is
//! rejected wholesale rather than partially applied.

use std::collections::BTreeMap;

/// Per-rung observations: unit-space points and losses, in arrival order.
pub(crate) type ByRung = BTreeMap<usize, Vec<(Vec<f64>, f64)>>;

/// Encode `by_rung` under the given version header (e.g. `"tpe-v1"`).
pub(crate) fn encode_by_rung(header: &str, by_rung: &ByRung) -> String {
    let mut out = String::from(header);
    for (&rung, obs) in by_rung {
        out.push(';');
        out.push_str(&format!("{rung}="));
        for (i, (u, loss)) in obs.iter().enumerate() {
            if i > 0 {
                out.push('|');
            }
            out.push_str(&format!("{:016x}:", loss.to_bits()));
            for (d, x) in u.iter().enumerate() {
                if d > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{:016x}", x.to_bits()));
            }
        }
    }
    out
}

/// Decode a cursor produced by [`encode_by_rung`] with the same header.
/// Returns `None` on a header mismatch or any malformed element.
pub(crate) fn decode_by_rung(header: &str, cursor: &str) -> Option<ByRung> {
    let mut parts = cursor.split(';');
    if parts.next()? != header {
        return None;
    }
    let mut by_rung = ByRung::new();
    for part in parts {
        let (rung, body) = part.split_once('=')?;
        let rung: usize = rung.parse().ok()?;
        let mut obs = Vec::new();
        if !body.is_empty() {
            for entry in body.split('|') {
                let (loss, xs) = entry.split_once(':')?;
                let loss = f64::from_bits(u64::from_str_radix(loss, 16).ok()?);
                let u = xs
                    .split(',')
                    .map(|x| u64::from_str_radix(x, 16).ok().map(f64::from_bits))
                    .collect::<Option<Vec<f64>>>()?;
                obs.push((u, loss));
            }
        }
        by_rung.insert(rung, obs);
    }
    Some(by_rung)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_exactly() {
        let mut by_rung = ByRung::new();
        by_rung.insert(0, vec![(vec![0.25, 0.75], 0.5), (vec![0.1, 0.9], 1e-300)]);
        by_rung.insert(3, vec![(vec![-0.0, f64::INFINITY], f64::INFINITY)]);
        let s = encode_by_rung("tpe-v1", &by_rung);
        let back = decode_by_rung("tpe-v1", &s).unwrap();
        assert_eq!(by_rung.len(), back.len());
        for (rung, obs) in &by_rung {
            let other = &back[rung];
            assert_eq!(obs.len(), other.len());
            for ((u, l), (u2, l2)) in obs.iter().zip(other) {
                assert_eq!(l.to_bits(), l2.to_bits());
                assert_eq!(u.len(), u2.len());
                for (a, b) in u.iter().zip(u2) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn empty_map_is_just_the_header() {
        let by_rung = ByRung::new();
        assert_eq!(encode_by_rung("gp-v1", &by_rung), "gp-v1");
        assert_eq!(decode_by_rung("gp-v1", "gp-v1"), Some(ByRung::new()));
    }

    #[test]
    fn wrong_header_and_garbage_are_rejected() {
        assert_eq!(decode_by_rung("tpe-v1", "gp-v1"), None);
        assert_eq!(decode_by_rung("tpe-v1", "tpe-v1;nonsense"), None);
        assert_eq!(decode_by_rung("tpe-v1", "tpe-v1;0=zz:aa"), None);
        assert_eq!(decode_by_rung("tpe-v1", ""), None);
    }
}

//! A stand-in for Google Vizier's default algorithm (Golovin et al., 2017):
//! batched Gaussian-process Bayesian optimization with expected improvement,
//! a constant-liar heuristic for parallel suggestions, and **no early
//! stopping** — every configuration trains for the full resource `R`. The
//! paper compares against exactly this setting ("Vizier *without* the
//! performance curve early-stopping rule").
//!
//! Faithful weaknesses are kept on purpose: the GP models raw losses, so the
//! divergent-perplexity tail of the PTB benchmark degrades the fit even when
//! losses are capped at 1000 — the behaviour the paper observes in
//! Section 4.3.

use asha_core::{Decision, Job, Observation, Scheduler, TrialId};
use asha_math::{expected_improvement, Gp, GpConfig};
use asha_space::{Config, SearchSpace};
use rand::Rng;

/// Configuration of a [`Vizier`] scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct VizierConfig {
    /// Resource every evaluation trains for (the full `R`).
    pub max_resource: f64,
    /// Random configurations evaluated before the model kicks in.
    pub warmup: usize,
    /// Re-fit the GP after this many new completions.
    pub refit_every: usize,
    /// At most this many (most recent) observations enter the GP — keeps
    /// the `O(n^3)` Cholesky affordable at 500-worker scale.
    pub max_model_points: usize,
    /// Random candidates scored by EI per suggestion.
    pub candidates: usize,
}

impl VizierConfig {
    /// Defaults matching the large-scale experiment's needs.
    ///
    /// # Panics
    ///
    /// Panics if `max_resource <= 0`.
    pub fn new(max_resource: f64) -> Self {
        assert!(max_resource > 0.0, "maximum resource must be positive");
        VizierConfig {
            max_resource,
            warmup: 10,
            refit_every: 8,
            max_model_points: 300,
            candidates: 256,
        }
    }
}

/// The Vizier-like scheduler; see the module docs.
pub struct Vizier {
    space: SearchSpace,
    config: VizierConfig,
    /// Completed evaluations: unit point and loss.
    completed: Vec<(Vec<f64>, f64)>,
    /// Outstanding evaluations' unit points (for the constant liar).
    pending: Vec<(TrialId, Vec<f64>)>,
    model: Option<Gp>,
    completions_since_fit: usize,
    next_trial: u64,
    name: String,
}

impl std::fmt::Debug for Vizier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vizier")
            .field("completed", &self.completed.len())
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl Vizier {
    /// Create a Vizier-like scheduler.
    pub fn new(space: SearchSpace, config: VizierConfig) -> Self {
        Vizier {
            space,
            config,
            completed: Vec::new(),
            pending: Vec::new(),
            model: None,
            completions_since_fit: 0,
            next_trial: 0,
            name: "Vizier".to_owned(),
        }
    }

    /// Number of completed full evaluations.
    pub fn completed(&self) -> usize {
        self.completed.len()
    }

    fn best_loss(&self) -> f64 {
        self.completed
            .iter()
            .map(|&(_, l)| l)
            .fold(f64::INFINITY, f64::min)
    }

    fn refit(&mut self) {
        // Constant liar: pending points are assumed to achieve the current
        // best loss, discouraging duplicate suggestions in a batch.
        let liar = self.best_loss();
        let start = self
            .completed
            .len()
            .saturating_sub(self.config.max_model_points);
        let mut xs: Vec<Vec<f64>> = self.completed[start..]
            .iter()
            .map(|(u, _)| u.clone())
            .collect();
        let mut ys: Vec<f64> = self.completed[start..].iter().map(|&(_, l)| l).collect();
        for (_, u) in &self.pending {
            xs.push(u.clone());
            ys.push(liar);
        }
        self.model = Gp::fit(&xs, &ys, GpConfig::default()).ok();
        self.completions_since_fit = 0;
    }

    fn propose(&mut self, rng: &mut dyn rand::RngCore) -> Config {
        if self.completed.len() < self.config.warmup {
            return self.space.sample(rng);
        }
        if self.model.is_none() || self.completions_since_fit >= self.config.refit_every {
            self.refit();
        }
        let Some(model) = &self.model else {
            return self.space.sample(rng);
        };
        let best = self.best_loss();
        let mut best_u: Option<Vec<f64>> = None;
        let mut best_ei = f64::NEG_INFINITY;
        for _ in 0..self.config.candidates {
            let u: Vec<f64> = (0..self.space.len()).map(|_| rng.gen::<f64>()).collect();
            let (mu, var) = model.predict(&u);
            let ei = expected_improvement(mu, var, best);
            if ei > best_ei {
                best_ei = ei;
                best_u = Some(u);
            }
        }
        match best_u {
            Some(u) => self.space.from_unit(&u),
            None => self.space.sample(rng),
        }
    }
}

impl Scheduler for Vizier {
    fn suggest(&mut self, rng: &mut dyn rand::RngCore) -> Decision {
        let config = self.propose(rng);
        let trial = TrialId(self.next_trial);
        self.next_trial += 1;
        let unit = self
            .space
            .to_unit(&config)
            .expect("proposals come from this space");
        self.pending.push((trial, unit));
        // A new pending point changes the constant-liar set; force a refit
        // on the next proposal if the batch grows large.
        Decision::Run(Job {
            trial,
            config,
            rung: 0,
            resource: self.config.max_resource,
            bracket: 0,
            inherit_from: None,
        })
    }

    fn observe(&mut self, obs: Observation) {
        let Some(pos) = self.pending.iter().position(|(t, _)| *t == obs.trial) else {
            return;
        };
        let (_, unit) = self.pending.swap_remove(pos);
        let loss = if obs.loss.is_nan() {
            f64::INFINITY
        } else {
            obs.loss
        };
        // Infinite losses would poison the GP's target standardization;
        // store a large finite proxy instead (mirrors the paper's capping).
        let loss = loss.min(1e9);
        self.completed.push((unit, loss));
        self.completions_since_fit += 1;
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_space::Scale;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .continuous("x", 0.0, 1.0, Scale::Linear)
            .continuous("y", 0.0, 1.0, Scale::Linear)
            .build()
            .unwrap()
    }

    #[test]
    fn always_full_budget_and_never_waits() {
        let mut v = Vizier::new(space(), VizierConfig::new(256.0));
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..30 {
            let job = v.suggest(&mut rng).job().expect("vizier always has work");
            assert_eq!(job.resource, 256.0);
            v.observe(Observation::for_job(&job, 1.0));
        }
        assert_eq!(v.completed(), 30);
    }

    #[test]
    fn model_concentrates_proposals() {
        // Quadratic bowl at (0.3, 0.7); after warmup the EI proposals should
        // be much closer to the optimum than uniform sampling.
        let s = space();
        let mut v = Vizier::new(s.clone(), VizierConfig::new(1.0));
        let mut rng = StdRng::seed_from_u64(1);
        let mut dists = Vec::new();
        for i in 0..80 {
            let job = v.suggest(&mut rng).job().unwrap();
            let u = s.to_unit(&job.config).unwrap();
            if i >= 40 {
                dists.push(((u[0] - 0.3).powi(2) + (u[1] - 0.7).powi(2)).sqrt());
            }
            let loss = (u[0] - 0.3).powi(2) + (u[1] - 0.7).powi(2);
            v.observe(Observation::for_job(&job, loss));
        }
        let mean_dist = dists.iter().sum::<f64>() / dists.len() as f64;
        assert!(
            mean_dist < 0.30,
            "mean distance {mean_dist} (uniform ≈ 0.48)"
        );
    }

    #[test]
    fn batch_constant_liar_diversifies_pending() {
        // Issue a batch of 10 with no observations: after warmup data the
        // liar should keep proposals from collapsing to one point.
        let s = space();
        let mut v = Vizier::new(s.clone(), VizierConfig::new(1.0));
        let mut rng = StdRng::seed_from_u64(2);
        // Warmup data.
        for _ in 0..12 {
            let job = v.suggest(&mut rng).job().unwrap();
            let u = s.to_unit(&job.config).unwrap();
            v.observe(Observation::for_job(&job, (u[0] - 0.5).powi(2)));
        }
        let batch: Vec<Vec<f64>> = (0..10)
            .map(|_| {
                let job = v.suggest(&mut rng).job().unwrap();
                s.to_unit(&job.config).unwrap()
            })
            .collect();
        // Not all identical.
        let first = &batch[0];
        assert!(
            batch
                .iter()
                .any(|u| { (u[0] - first[0]).abs() > 1e-3 || (u[1] - first[1]).abs() > 1e-3 }),
            "batch collapsed to a single point"
        );
    }

    #[test]
    fn unsolicited_and_infinite_losses_are_handled() {
        let mut v = Vizier::new(space(), VizierConfig::new(1.0));
        let mut rng = StdRng::seed_from_u64(3);
        v.observe(Observation::new(TrialId(42), 0, 1.0, 0.5));
        assert_eq!(v.completed(), 0);
        let job = v.suggest(&mut rng).job().unwrap();
        v.observe(Observation::for_job(&job, f64::INFINITY));
        assert_eq!(v.completed(), 1);
        // Later proposals still work.
        assert!(v.suggest(&mut rng).job().is_some());
    }
}

//! Behavioural integration tests of the baselines: the properties the
//! paper's comparisons hinge on, checked directly against each scheduler.

use asha_baselines::{bohb, Fabolas, FabolasConfig, Pbt, PbtConfig, Vizier, VizierConfig};
use asha_core::{Decision, Observation, Scheduler, ShaConfig};
use asha_space::{Scale, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn space() -> SearchSpace {
    SearchSpace::builder()
        .continuous("x", 0.0, 1.0, Scale::Linear)
        .continuous("y", 0.0, 1.0, Scale::Linear)
        .build()
        .expect("valid space")
}

/// Serial driver with a quadratic objective; returns unit points of the
/// last `tail` base-rung proposals.
fn drive_tail<S: Scheduler>(
    scheduler: &mut S,
    steps: usize,
    tail: usize,
    full_resource_only: bool,
) -> Vec<Vec<f64>> {
    let s = space();
    let mut rng = StdRng::seed_from_u64(1);
    let mut proposals = Vec::new();
    for _ in 0..steps {
        match scheduler.suggest(&mut rng) {
            Decision::Run(job) => {
                let u = s.to_unit(&job.config).expect("config from space");
                let loss =
                    (u[0] - 0.7).powi(2) + (u[1] - 0.2).powi(2) + 0.3 * (1.0 - job.resource / 64.0);
                if !full_resource_only || job.resource == 64.0 {
                    proposals.push(u);
                }
                scheduler.observe(Observation::for_job(&job, loss));
            }
            Decision::Finished => break,
            Decision::Wait => panic!("serial driver should not wait"),
        }
    }
    let start = proposals.len().saturating_sub(tail);
    proposals[start..].to_vec()
}

fn mean_distance(points: &[Vec<f64>], target: (f64, f64)) -> f64 {
    points
        .iter()
        .map(|u| ((u[0] - target.0).powi(2) + (u[1] - target.1).powi(2)).sqrt())
        .sum::<f64>()
        / points.len().max(1) as f64
}

#[test]
fn bohb_proposals_adapt_toward_the_optimum() {
    let mut tuner = bohb(space(), ShaConfig::new(64, 1.0, 64.0, 4.0).growing());
    let late = drive_tail(&mut tuner, 600, 60, false);
    let dist = mean_distance(&late, (0.7, 0.2));
    // Uniform sampling over the unit square averages ≈ 0.50 from (0.7, 0.2).
    assert!(dist < 0.40, "BOHB late proposals not adaptive: {dist:.3}");
}

#[test]
fn vizier_proposals_adapt_toward_the_optimum() {
    let mut tuner = Vizier::new(space(), VizierConfig::new(64.0));
    let late = drive_tail(&mut tuner, 120, 30, false);
    let dist = mean_distance(&late, (0.7, 0.2));
    assert!(dist < 0.35, "Vizier late proposals not adaptive: {dist:.3}");
}

#[test]
fn fabolas_spends_most_work_on_subsets() {
    let mut tuner = Fabolas::new(space(), FabolasConfig::new(64.0));
    let mut rng = StdRng::seed_from_u64(2);
    let mut cheap = 0usize;
    let mut full = 0usize;
    for _ in 0..100 {
        if let Decision::Run(job) = tuner.suggest(&mut rng) {
            if job.resource < 64.0 {
                cheap += 1;
            } else {
                full += 1;
            }
            tuner.observe(Observation::for_job(&job, 0.5 - job.resource / 640.0));
        }
    }
    assert!(cheap > full * 2, "cheap {cheap} vs full {full}");
    assert!(full > 0, "no full-budget incumbent evaluations");
}

#[test]
fn pbt_population_mean_improves_over_generations() {
    let s = space();
    let mut pbt = Pbt::new(s.clone(), PbtConfig::new(12, 60.0, 4.0));
    let mut rng = StdRng::seed_from_u64(3);
    let mut early_losses = Vec::new();
    let mut late_losses = Vec::new();
    let mut step = 0usize;
    loop {
        match pbt.suggest(&mut rng) {
            Decision::Run(job) => {
                let u = s.to_unit(&job.config).expect("config from space");
                // Pure configuration quality (no training-progress term), so
                // improvement must come from exploit/explore.
                let loss = (u[0] - 0.7).powi(2) + (u[1] - 0.2).powi(2);
                if step < 24 {
                    early_losses.push(loss);
                } else {
                    late_losses.push(loss);
                }
                step += 1;
                pbt.observe(Observation::for_job(&job, loss));
            }
            Decision::Finished => break,
            Decision::Wait => panic!("serial PBT should not wait"),
        }
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    assert!(
        mean(&late_losses) < mean(&early_losses),
        "PBT did not improve: {:.4} -> {:.4}",
        mean(&early_losses),
        mean(&late_losses)
    );
    assert!(pbt.exploit_count() > 0);
}

#[test]
fn bohb_and_sha_share_bracket_structure() {
    // BOHB's early stopping is exactly SHA's: same rung resources and
    // counts on a deterministic serial run.
    let mut tuner = bohb(space(), ShaConfig::new(16, 4.0, 64.0, 4.0));
    let mut rng = StdRng::seed_from_u64(4);
    let mut per_rung = [0usize; 3];
    while let Decision::Run(job) = tuner.suggest(&mut rng) {
        per_rung[job.rung] += 1;
        tuner.observe(Observation::for_job(&job, job.trial.0 as f64));
    }
    assert_eq!(per_rung, [16, 4, 1]);
}

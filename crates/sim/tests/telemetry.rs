//! Telemetry integration tests against the full simulator: the recorded
//! stream must be consistent (gauges non-negative, seq gap-free), share the
//! simulated clock with the run trace, and leave the simulation itself
//! untouched.

use asha_core::{Asha, AshaConfig};
use asha_obs::{EventKind, RunRecorder};
use asha_sim::{ClusterSim, SimConfig};
use asha_surrogate::{presets, BenchmarkModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn chaos_sim() -> ClusterSim {
    ClusterSim::new(
        SimConfig::new(25, 60.0)
            .with_stragglers(0.5)
            .with_drops(0.01),
    )
}

fn recorded_chaos_run(seed: u64) -> (asha_sim::SimResult, RunRecorder) {
    let bench = presets::cifar10_cuda_convnet(1);
    let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut recorder = RunRecorder::new();
    let result = chaos_sim().run_recorded(asha, &bench, &mut rng, &mut recorder);
    (result, recorder)
}

#[test]
fn recording_does_not_perturb_the_simulation() {
    let bench = presets::cifar10_cuda_convnet(1);
    let run_bare = || {
        let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
        let mut rng = StdRng::seed_from_u64(3);
        chaos_sim().run(asha, &bench, &mut rng)
    };
    let bare = run_bare();
    let (recorded, recorder) = recorded_chaos_run(3);
    assert!(!recorder.is_empty());
    assert_eq!(bare.jobs_completed, recorded.jobs_completed);
    assert_eq!(bare.end_time, recorded.end_time);
    assert_eq!(
        bare.trace, recorded.trace,
        "recording must be a pure observer"
    );
}

#[test]
fn gauges_never_negative_across_a_full_chaos_run() {
    // Replay the recorded stream event by event: the busy-worker gauge must
    // stay within [0, workers] at *every* prefix, and the rung gauges must
    // never dip below zero. The chaos config guarantees drops and retries
    // actually exercise the matched-start accounting.
    let (result, recorder) = recorded_chaos_run(5);
    assert!(
        result.faults.jobs_dropped > 0,
        "chaos config should drop jobs"
    );

    let mut replay = asha_obs::MetricsRegistry::new();
    for event in recorder.events() {
        replay.apply(event);
        let busy = replay.busy_workers.value();
        assert!((0..=25).contains(&busy), "busy gauge out of range: {busy}");
    }
    assert!(replay.busy_workers.min() >= 0);
    assert!(replay.rung_occupancy.iter().all(|g| g.min() >= 0));
    assert!(replay.pending_promotions.iter().all(|g| g.min() >= 0));

    // The live registry (updated online) and the replayed one agree.
    let live = recorder.metrics();
    assert_eq!(live.jobs_completed.get(), replay.jobs_completed.get());
    assert_eq!(live.jobs_dropped.get(), replay.jobs_dropped.get());
    assert_eq!(live.busy_workers.max(), replay.busy_workers.max());

    // And the counters match the simulator's own ledger.
    assert_eq!(live.jobs_completed.get() as usize, result.jobs_completed);
    assert_eq!(live.jobs_dropped.get() as usize, result.faults.jobs_dropped);
    assert_eq!(live.jobs_retried.get() as usize, result.faults.jobs_retried);
}

#[test]
fn telemetry_shares_the_simulated_clock_with_the_trace() {
    // Satellite contract: telemetry timestamps are simulated time, the same
    // clock as `TraceEvent::time`. Every job_end event must therefore match
    // a trace event with the identical timestamp, trial, and rung — bitwise,
    // not approximately.
    let (result, recorder) = recorded_chaos_run(7);
    let trace_keys: Vec<(u64, u64, usize)> = result
        .trace
        .events()
        .iter()
        .map(|e| (e.time.to_bits(), e.trial, e.rung))
        .collect();
    let end_keys: Vec<(u64, u64, usize)> = recorder
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::JobEnd { trial, rung, .. } => Some((e.time.to_bits(), trial, rung)),
            _ => None,
        })
        .collect();
    assert_eq!(
        end_keys, trace_keys,
        "job_end telemetry and TraceEvents must be the same completions on the same clock"
    );

    // Timestamps stay within the configured horizon and are non-decreasing.
    let times: Vec<f64> = recorder.events().iter().map(|e| e.time).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
    assert!(times.iter().all(|&t| (0.0..=60.0).contains(&t)));
}

#[test]
fn sequence_numbers_are_gap_free_and_events_well_formed() {
    let (_, recorder) = recorded_chaos_run(9);
    for (i, event) in recorder.events().iter().enumerate() {
        assert_eq!(event.seq, i as u64, "seq must be 0-based and gap-free");
    }
    // Every retry is immediately followed by the matching job_start.
    let events = recorder.events();
    for (i, event) in events.iter().enumerate() {
        if let EventKind::Retry { trial, rung } = event.kind {
            match events.get(i + 1).map(|e| e.kind) {
                Some(EventKind::JobStart {
                    trial: t, rung: r, ..
                }) => {
                    assert_eq!((t, r), (trial, rung), "retry not followed by its start");
                }
                other => panic!("retry followed by {other:?}"),
            }
        }
    }
}

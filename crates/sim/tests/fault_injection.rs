//! Failure-injection tests of the simulated cluster: checkpoint inheritance,
//! drop/retry semantics, straggler accounting, and resume-policy costs under
//! adversarial settings.

use asha_core::{Decision, Job, Observation, Scheduler, TrialId};
use asha_sim::{ClusterSim, ResumePolicy, SimConfig};
use asha_space::{Scale, SearchSpace};
use asha_surrogate::{BenchmarkModel, CurveBenchmark};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench() -> CurveBenchmark {
    let space = SearchSpace::builder()
        .continuous("x", 0.0, 1.0, Scale::Linear)
        .build()
        .expect("valid space");
    CurveBenchmark::builder("unit", space, 16.0, 5)
        .cost(16.0, &[0.0])
        .noise(0.0, 0.0)
        .build()
}

/// A minimal scheduler that runs one trial in two segments, the second
/// inheriting from a *different* trial — to pin down inheritance semantics.
struct InheritProbe {
    step: usize,
}

impl Scheduler for InheritProbe {
    fn suggest(&mut self, rng: &mut dyn rand::RngCore) -> Decision {
        use rand::Rng as _;
        let _ = rng.gen::<f64>();
        self.step += 1;
        let space = bench().space().clone();
        match self.step {
            // Parent trains to 8 units.
            1 => Decision::Run(Job {
                trial: TrialId(0),
                config: space.from_unit(&[0.2]),
                rung: 0,
                resource: 8.0,
                bracket: 0,
                inherit_from: None,
            }),
            // Child inherits the parent's checkpoint and continues to 16.
            2 => Decision::Run(Job {
                trial: TrialId(1),
                config: space.from_unit(&[0.2]),
                rung: 1,
                resource: 16.0,
                bracket: 0,
                inherit_from: Some(TrialId(0)),
            }),
            // A fresh trial with a dangling inherit source: must fall back
            // to fresh initialization, not crash.
            3 => Decision::Run(Job {
                trial: TrialId(2),
                config: space.from_unit(&[0.2]),
                rung: 0,
                resource: 16.0,
                bracket: 0,
                inherit_from: Some(TrialId(99)),
            }),
            _ => Decision::Finished,
        }
    }

    fn observe(&mut self, _obs: Observation) {}

    fn name(&self) -> &str {
        "inherit-probe"
    }
}

#[test]
fn inheritance_copies_checkpoints_and_tolerates_dangling_sources() {
    let b = bench();
    let mut rng = StdRng::seed_from_u64(0);
    // Sequential worker so events land in a known order.
    let result =
        ClusterSim::new(SimConfig::new(1, 1e6)).run(InheritProbe { step: 0 }, &b, &mut rng);
    assert!(result.scheduler_finished);
    let events = result.trace.events();
    assert_eq!(events.len(), 3);
    // The child continued from the parent's checkpoint: its job (8 -> 16
    // units under checkpoint resume) took 8 time units, not 16.
    let parent_done = events[0].time;
    let child_done = events[1].time;
    assert!((parent_done - 8.0).abs() < 1e-6);
    assert!(
        (child_done - parent_done - 8.0).abs() < 1e-6,
        "child took {} (inheritance failed?)",
        child_done - parent_done
    );
    // Dangling source: fresh state, trains the full 16 units.
    let fresh_done = events[2].time;
    assert!((fresh_done - child_done - 16.0).abs() < 1e-6);
    // And the child's loss continued improving past the parent's.
    assert!(events[1].val_loss <= events[0].val_loss);
}

#[test]
fn certain_drops_prevent_completion_but_terminate() {
    // With p = 0.9 per unit, a 16-unit job essentially never completes; the
    // simulator must still terminate at the horizon with zero completions.
    let b = bench();
    let mut rng = StdRng::seed_from_u64(1);
    let result = ClusterSim::new(SimConfig::new(2, 200.0).with_drops(0.9)).run(
        InheritProbe { step: 0 },
        &b,
        &mut rng,
    );
    assert_eq!(result.jobs_completed, 0);
    assert!(
        result.faults.jobs_dropped > 50,
        "{} drops",
        result.faults.jobs_dropped
    );
}

#[test]
fn straggler_multiplier_only_stretches_time() {
    let b = bench();
    let run = |std: f64| {
        let mut rng = StdRng::seed_from_u64(2);
        ClusterSim::new(SimConfig::new(1, 1e6).with_stragglers(std)).run(
            InheritProbe { step: 0 },
            &b,
            &mut rng,
        )
    };
    let clean = run(0.0);
    let slow = run(2.0);
    assert_eq!(clean.jobs_completed, slow.jobs_completed);
    assert!(slow.end_time > clean.end_time);
    // Losses are essentially unaffected by stragglers (straggler sampling
    // shifts the RNG stream, so run-level jitter differs microscopically).
    let clean_losses: Vec<f64> = clean.trace.events().iter().map(|e| e.val_loss).collect();
    let slow_losses: Vec<f64> = slow.trace.events().iter().map(|e| e.val_loss).collect();
    for (a, b) in clean_losses.iter().zip(&slow_losses) {
        assert!((a - b).abs() < 5e-3, "{a} vs {b}");
    }
}

#[test]
fn from_scratch_resume_repays_full_budget() {
    let b = bench();
    let mut rng = StdRng::seed_from_u64(3);
    let result = ClusterSim::new(SimConfig::new(1, 1e6).with_resume(ResumePolicy::FromScratch))
        .run(InheritProbe { step: 0 }, &b, &mut rng);
    let events = result.trace.events();
    // Parent 8, child 16 (full, from scratch), fresh 16.
    assert!((events[0].time - 8.0).abs() < 1e-6);
    assert!((events[1].time - 24.0).abs() < 1e-6);
    assert!((events[2].time - 40.0).abs() < 1e-6);
}

#[test]
fn best_config_matches_trace_best() {
    let b = bench();
    let mut rng = StdRng::seed_from_u64(4);
    let result =
        ClusterSim::new(SimConfig::new(1, 1e6)).run(InheritProbe { step: 0 }, &b, &mut rng);
    let (best_val, _) = result.trace.final_best().expect("events exist");
    let (_, val, _) = result.best_config.expect("events exist");
    assert_eq!(val, best_val);
}

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use asha_core::telemetry::{DropCause, EventKind, NoopRecorder, Recorder};
use asha_core::{Decision, FxHashMap, Job, Observation, Scheduler, TrialId};
use asha_metrics::{FaultStats, RunTrace, TraceEvent};
use asha_surrogate::{BenchmarkModel, ConfigProfile, TrainingState};
use rand::Rng;

/// How promotions pay for training already performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResumePolicy {
    /// Trials are checkpointed: a job trains only from the trial's current
    /// resource to the job's target (Section 3.2's iterative setting). The
    /// default.
    #[default]
    Checkpoint,
    /// Every job trains from scratch to its target resource — the accounting
    /// used by Figure 2 and the Appendix A.1 simulated workloads.
    FromScratch,
}

/// How much of the completion stream a run records.
///
/// Long-horizon runs complete up to [`SimConfig::max_jobs`] (5M) jobs, and a
/// [`TraceEvent`] per completion dominates memory well before the event loop
/// dominates time. The incumbent curve — what every experiment actually
/// plots — only changes O(incumbent-updates) times, so leaner modes keep
/// exactly what downstream analysis needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Record every completion: O(jobs) memory. The default.
    #[default]
    Full,
    /// Record only completions that improve the best validation loss so far:
    /// O(incumbent-updates) memory. [`RunTrace::incumbent_curve`] is
    /// identical to [`TraceMode::Full`]'s; per-job analyses (rung counts,
    /// `configs_trained_to`) see only the incumbent subsequence.
    ///
    /// [`RunTrace::incumbent_curve`]: asha_metrics::RunTrace::incumbent_curve
    IncumbentOnly,
    /// Record no events at all: O(1) memory. Only the scalar aggregates on
    /// [`SimResult`] (`jobs_completed`, `distinct_trials`, `best_config`,
    /// `end_time`, faults) survive.
    Aggregated,
}

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of parallel workers.
    pub workers: usize,
    /// Simulated-time horizon; events past this time are not processed.
    pub max_time: f64,
    /// Safety cap on completed jobs (guards against runaway schedulers).
    pub max_jobs: usize,
    /// Straggler noise: job durations are multiplied by `1 + |z|`,
    /// `z ~ N(0, straggler_std)`. Zero disables stragglers.
    pub straggler_std: f64,
    /// Probability that a running job is dropped in any given time unit.
    pub drop_prob: f64,
    /// Whether promoted trials resume from checkpoints or retrain.
    pub resume: ResumePolicy,
    /// How much of the completion stream to record.
    pub trace_mode: TraceMode,
}

impl SimConfig {
    /// A cluster of `workers` simulated for `max_time` time units, without
    /// stragglers or drops, with checkpoint resume.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `max_time <= 0`.
    pub fn new(workers: usize, max_time: f64) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(max_time > 0.0, "horizon must be positive");
        SimConfig {
            workers,
            max_time,
            max_jobs: 5_000_000,
            straggler_std: 0.0,
            drop_prob: 0.0,
            resume: ResumePolicy::Checkpoint,
            trace_mode: TraceMode::Full,
        }
    }

    /// Enable straggler noise.
    pub fn with_stragglers(mut self, std: f64) -> Self {
        assert!(std >= 0.0, "straggler std must be non-negative");
        self.straggler_std = std;
        self
    }

    /// Enable job drops with per-time-unit probability `p`.
    pub fn with_drops(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        self.drop_prob = p;
        self
    }

    /// Set the resume policy.
    pub fn with_resume(mut self, resume: ResumePolicy) -> Self {
        self.resume = resume;
        self
    }

    /// Cap the number of completed jobs.
    pub fn with_max_jobs(mut self, max_jobs: usize) -> Self {
        self.max_jobs = max_jobs;
        self
    }

    /// Select how much of the completion stream to record.
    pub fn with_trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace_mode = mode;
        self
    }

    /// A validating builder: same knobs as the struct fields, but
    /// [`SimConfigBuilder::build`] returns a typed
    /// [`asha_core::Error`] (kind `Config`) instead of panicking, so
    /// configuration coming from CLIs or the service layer can be
    /// rejected gracefully. Defaults match [`SimConfig::new`]`(1, 100.0)`.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig::new(1, 100.0),
        }
    }
}

/// Builder for [`SimConfig`]; see [`SimConfig::builder`].
///
/// ```
/// use asha_sim::SimConfig;
///
/// let config = SimConfig::builder()
///     .workers(25)
///     .max_time(400.0)
///     .straggler_std(0.3)
///     .drop_prob(0.05)
///     .build()
///     .unwrap();
/// assert_eq!(config.workers, 25);
/// assert!(SimConfig::builder().workers(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Number of parallel workers (must end up > 0).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Simulated-time horizon (must end up > 0).
    pub fn max_time(mut self, max_time: f64) -> Self {
        self.config.max_time = max_time;
        self
    }

    /// Safety cap on completed jobs.
    pub fn max_jobs(mut self, max_jobs: usize) -> Self {
        self.config.max_jobs = max_jobs;
        self
    }

    /// Straggler noise standard deviation (must end up ≥ 0).
    pub fn straggler_std(mut self, std: f64) -> Self {
        self.config.straggler_std = std;
        self
    }

    /// Per-time-unit job-drop probability (must end up in `[0, 1)`).
    pub fn drop_prob(mut self, p: f64) -> Self {
        self.config.drop_prob = p;
        self
    }

    /// Resume policy for promoted trials.
    pub fn resume(mut self, resume: ResumePolicy) -> Self {
        self.config.resume = resume;
        self
    }

    /// How much of the completion stream to record.
    pub fn trace_mode(mut self, mode: TraceMode) -> Self {
        self.config.trace_mode = mode;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<SimConfig, asha_core::Error> {
        let c = &self.config;
        if c.workers == 0 {
            return Err(asha_core::Error::config("need at least one worker"));
        }
        // NaN must fail both bounds checks, so compare for the invalid
        // range rather than negating the valid one.
        if c.max_time.is_nan() || c.max_time <= 0.0 {
            return Err(asha_core::Error::config(format!(
                "horizon must be positive, got {}",
                c.max_time
            )));
        }
        if c.max_jobs == 0 {
            return Err(asha_core::Error::config("max_jobs must be positive"));
        }
        if c.straggler_std.is_nan() || c.straggler_std < 0.0 {
            return Err(asha_core::Error::config(format!(
                "straggler std must be non-negative, got {}",
                c.straggler_std
            )));
        }
        if !(0.0..1.0).contains(&c.drop_prob) {
            return Err(asha_core::Error::config(format!(
                "drop probability must be in [0, 1), got {}",
                c.drop_prob
            )));
        }
        Ok(self.config)
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Job completions in simulated-time order; which completions are
    /// present depends on [`SimConfig::trace_mode`].
    pub trace: RunTrace,
    /// Simulated time when the run stopped.
    pub end_time: f64,
    /// Jobs that ran to completion.
    pub jobs_completed: usize,
    /// Distinct trials with at least one completed job. Maintained online,
    /// so it is exact in every [`TraceMode`] (unlike
    /// `trace.distinct_trials()`, which only sees recorded events).
    pub distinct_trials: usize,
    /// Fault tally, using the same semantics as the real executor
    /// (`asha-exec`): every simulated drop is counted in `jobs_dropped` and,
    /// because the simulator always requeues lost work, in `jobs_retried`.
    pub faults: FaultStats,
    /// Whether the scheduler reported [`Decision::Finished`].
    pub scheduler_finished: bool,
    /// The configuration with the best validation loss, with that loss and
    /// its cumulative resource: `(config, val_loss, resource)`.
    pub best_config: Option<(asha_space::Config, f64, f64)>,
}

/// One in-flight job on the event heap. Plain old data: the job itself
/// (with its heap-allocated [`Config`]) lives in the engine's job slab and
/// is referenced by `slot`, so heap sift operations move 24-byte entries
/// instead of whole [`Job`] structs.
///
/// [`Config`]: asha_space::Config
#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    slot: u32,
    dropped: bool,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by (time, seq): BinaryHeap is a max-heap, so reverse.
        // `total_cmp` keeps the ordering a total order even if a NaN time
        // ever reaches the heap; `partial_cmp(..).unwrap_or(Equal)` would
        // silently corrupt the heap invariant instead.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Per-trial bookkeeping kept across a trial's jobs.
#[derive(Debug)]
struct TrialSlot {
    state: TrainingState,
    /// `bench.time_per_unit(&config)` is deterministic per config and a
    /// trial's config never changes, so it is computed once at the trial's
    /// first job instead of on every issue — on cheap surrogates the unit
    /// cost is a nontrivial share of per-job simulator overhead.
    time_per_unit: f64,
    /// Whether any job of this trial has completed (drives the online
    /// `distinct_trials` count).
    completed: bool,
    /// Memoized [`BenchmarkModel::profile`] of the trial's config, when the
    /// model supports profiles. Derived data: never serialized; restored
    /// slots refill it lazily at their next completion. Profiles are
    /// bitwise-identical to the per-call model methods, so the memo is
    /// unobservable.
    profile: Option<ConfigProfile>,
}

/// The discrete-event cluster simulator. See the crate docs for the model.
#[derive(Debug, Clone)]
pub struct ClusterSim {
    config: SimConfig,
}

impl ClusterSim {
    /// Create a simulator with the given parameters.
    pub fn new(config: SimConfig) -> Self {
        ClusterSim { config }
    }

    /// The simulation parameters.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Run `scheduler` against `bench` until the time horizon, the job cap,
    /// or scheduler completion — whichever comes first. Deterministic given
    /// the RNG state.
    pub fn run<S: Scheduler>(
        &self,
        scheduler: S,
        bench: &dyn BenchmarkModel,
        rng: &mut dyn rand::RngCore,
    ) -> SimResult {
        self.run_recorded(scheduler, bench, rng, &mut NoopRecorder)
    }

    /// Like [`run`](ClusterSim::run), but emit structured telemetry into
    /// `recorder`: every scheduler decision, job start/end, drop, retry, and
    /// idle round, stamped with *simulated* time — the same clock as
    /// [`TraceEvent::time`], so an event log and the run trace are joinable.
    ///
    /// Recording never consumes randomness, so a recorded run is
    /// event-for-event identical to an unrecorded one with the same seed,
    /// and the same seed always produces the same event stream. With the
    /// default [`NoopRecorder`] every telemetry guard folds away and this is
    /// exactly [`run`](ClusterSim::run).
    pub fn run_recorded<S: Scheduler, R: Recorder>(
        &self,
        scheduler: S,
        bench: &dyn BenchmarkModel,
        rng: &mut dyn rand::RngCore,
        recorder: &mut R,
    ) -> SimResult {
        let mut engine = SimEngine::new(self.config.clone(), scheduler, bench);
        while engine.step(rng, recorder) {}
        engine.into_result()
    }
}

/// Snapshot of one trial's per-run bookkeeping (see [`SimRunState`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TrialSlotState {
    /// The trial this slot belongs to.
    pub trial: u64,
    /// The trial's training-curve state.
    pub state: TrainingState,
    /// Memoized `bench.time_per_unit(&config)`.
    pub time_per_unit: f64,
    /// Whether any job of this trial has completed.
    pub completed: bool,
}

/// Snapshot of one in-flight job on the event heap (see [`SimRunState`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PendingJob {
    /// Simulated completion (or drop) time.
    pub time: f64,
    /// Heap tiebreaker sequence number.
    pub seq: u64,
    /// The job being executed.
    pub job: Job,
    /// Whether the job will be dropped rather than completed.
    pub dropped: bool,
}

/// Everything a [`SimEngine`] keeps between steps, as plain serializable
/// data — the simulator half of a durable snapshot. The scheduler and the
/// RNG are captured separately (`asha-core::state`, `StdRng::state`);
/// together the three reconstruct a run that continues bit-for-bit
/// identically to one that was never interrupted.
///
/// Collections are sorted (slots by trial, pending jobs by `(time, seq)`)
/// so the same logical state always snapshots to the same bytes; heap pop
/// order depends only on the unique `(time, seq)` keys, so rebuilding the
/// heap from the sorted list is exact.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRunState {
    /// Simulated clock.
    pub now: f64,
    /// Last issued heap sequence number.
    pub seq: u64,
    /// Workers currently free.
    pub free_workers: usize,
    /// Jobs that ran to completion so far.
    pub jobs_completed: usize,
    /// Distinct trials with at least one completed job.
    pub distinct_trials: usize,
    /// Fault tally so far.
    pub faults: FaultStats,
    /// Whether the scheduler reported [`Decision::Finished`].
    pub scheduler_finished: bool,
    /// Best validation loss recorded by the incumbent filter.
    pub incumbent_val: f64,
    /// Best `(config, val_loss, resource)` so far.
    pub best_config: Option<(asha_space::Config, f64, f64)>,
    /// Per-trial bookkeeping, sorted by trial id.
    pub slots: Vec<TrialSlotState>,
    /// In-flight jobs, sorted by `(time, seq)`.
    pub pending: Vec<PendingJob>,
    /// Dropped jobs awaiting reissue, in queue (FIFO) order.
    pub retry: Vec<Job>,
    /// The scheduler name the trace was started with.
    pub searcher: String,
    /// Completions recorded so far (per the run's [`TraceMode`]).
    pub trace: Vec<TraceEvent>,
}

/// The cluster simulator's event loop as a stepwise, resumable state
/// machine.
///
/// [`ClusterSim::run_recorded`] is a thin wrapper that drives an engine to
/// completion; callers that need durability instead alternate
/// [`SimEngine::step`] with snapshot exports ([`SimEngine::export_state`])
/// and later rebuild the engine with [`SimEngine::restore`]. One `step` is
/// one iteration of the event loop: issue work to every free worker, then
/// process the single next event — so between steps the engine is always at
/// a quiescent point where its state is fully captured by
/// ([`SimRunState`], scheduler state, RNG state).
pub struct SimEngine<'b, S> {
    cfg: SimConfig,
    scheduler: S,
    bench: &'b dyn BenchmarkModel,
    trace: RunTrace,
    states: FxHashMap<TrialId, TrialSlot>,
    heap: BinaryHeap<Event>,
    // Slab backing the heap's `slot` references plus its free list; at most
    // `workers` jobs are in flight, so both stabilize at that size.
    jobs: Vec<Option<Job>>,
    free_slots: Vec<u32>,
    retry: VecDeque<Job>,
    // The scheduler answered `Wait` and guarantees (`wait_is_stable`) that
    // re-asking before its next observation would answer `Wait` again with
    // no side effects — so don't re-ask. Cleared on every observation.
    // Derived data: not serialized; a restored engine re-asks once.
    waiting: bool,
    free_workers: usize,
    now: f64,
    seq: u64,
    jobs_completed: usize,
    distinct_trials: usize,
    faults: FaultStats,
    scheduler_finished: bool,
    best_config: Option<(asha_space::Config, f64, f64)>,
    // Mirror of `RunTrace::incumbent_curve`'s filter, tracked online so
    // `TraceMode::IncumbentOnly` records exactly the events that curve
    // keeps (the conditions differ on NaN losses, so this cannot reuse
    // the `best_config` update).
    incumbent_val: f64,
    done: bool,
}

impl<S> std::fmt::Debug for SimEngine<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimEngine")
            .field("now", &self.now)
            .field("jobs_completed", &self.jobs_completed)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl<'b, S: Scheduler> SimEngine<'b, S> {
    /// A fresh engine at simulated time zero.
    pub fn new(config: SimConfig, scheduler: S, bench: &'b dyn BenchmarkModel) -> Self {
        let trace = RunTrace::new(scheduler.name());
        let free_workers = config.workers;
        SimEngine {
            // At most `workers` events are ever outstanding, so the event
            // heap, the job slab, and the retry queue reach their final
            // capacity up front and never reallocate inside the loop.
            heap: BinaryHeap::with_capacity(config.workers + 1),
            jobs: Vec::with_capacity(config.workers + 1),
            free_slots: Vec::with_capacity(config.workers + 1),
            retry: VecDeque::with_capacity(config.workers.min(64)),
            cfg: config,
            scheduler,
            bench,
            trace,
            states: FxHashMap::default(),
            waiting: false,
            free_workers,
            now: 0.0,
            seq: 0,
            jobs_completed: 0,
            distinct_trials: 0,
            faults: FaultStats::none(),
            scheduler_finished: false,
            best_config: None,
            incumbent_val: f64::INFINITY,
            done: false,
        }
    }

    /// Whether the run has ended (horizon, job cap, or drained scheduler).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Simulated time of the last processed event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Jobs completed so far.
    pub fn jobs_completed(&self) -> usize {
        self.jobs_completed
    }

    /// Read-only access to the scheduler (for state export at snapshots).
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// Run one iteration of the event loop: hand work to every free worker,
    /// then process the next event. Returns `false` once the run is over
    /// (the call that detects the end condition also returns `false`).
    pub fn step<R: Recorder>(&mut self, rng: &mut dyn rand::RngCore, recorder: &mut R) -> bool {
        if self.done {
            return false;
        }
        let cfg = &self.cfg;
        // Hand work to free workers: retries first, then the scheduler.
        while self.free_workers > 0 {
            let (job, is_retry) = if let Some(job) = self.retry.pop_front() {
                (job, true)
            } else if self.scheduler_finished || self.waiting {
                break;
            } else {
                let decision = self.scheduler.suggest(rng);
                if recorder.enabled() {
                    recorder.record(self.now, EventKind::of_decision(&decision));
                }
                match decision {
                    Decision::Run(job) => (job, false),
                    Decision::Wait => {
                        // A stable Wait stays a Wait until the next
                        // observation, so skip the redundant re-asks on
                        // every round until then. Recorded runs keep
                        // re-asking: each Wait decision is a telemetry
                        // event, and eliding it would change the stream.
                        if !recorder.enabled() && self.scheduler.wait_is_stable() {
                            self.waiting = true;
                        }
                        break;
                    }
                    Decision::Finished => {
                        self.scheduler_finished = true;
                        break;
                    }
                }
            };
            if recorder.enabled() {
                if is_retry {
                    recorder.record(
                        self.now,
                        EventKind::Retry {
                            trial: job.trial.0,
                            rung: job.rung,
                        },
                    );
                }
                recorder.record(self.now, EventKind::job_start(&job));
            }
            if !self.states.contains_key(&job.trial) {
                // PBT-style inheritance: copy the parent's checkpoint
                // (curve state) if the job asks for it. The unit cost is
                // always the trial's *own* — PBT children inherit weights,
                // not the parent's architecture-dependent step time.
                let state = job
                    .inherit_from
                    .and_then(|src| self.states.get(&src).map(|s| s.state))
                    .unwrap_or_else(|| self.bench.init_state(&job.config, rng));
                let profile = self.bench.profile(&job.config);
                let time_per_unit = profile.as_ref().map_or_else(
                    || self.bench.time_per_unit(&job.config),
                    |p| p.time_per_unit,
                );
                self.states.insert(
                    job.trial,
                    TrialSlot {
                        state,
                        time_per_unit,
                        completed: false,
                        profile,
                    },
                );
            }
            let slot = self.states.get_mut(&job.trial).expect("state just ensured");
            let trained_from = match cfg.resume {
                ResumePolicy::Checkpoint => slot.state.resource,
                ResumePolicy::FromScratch => 0.0,
            };
            let delta = (job.resource - trained_from).max(0.0);
            let mut duration = delta * slot.time_per_unit;
            if cfg.straggler_std > 0.0 {
                duration *= 1.0 + asha_math::dist::half_normal(rng, cfg.straggler_std);
            }
            // Zero-length jobs (already past target) still take a tick so
            // the event loop always advances.
            duration = duration.max(1e-9);
            let dropped = if cfg.drop_prob > 0.0 {
                // Time to drop is geometric per unit time; survive the
                // whole duration with probability (1-p)^duration.
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let t_drop = u.ln() / (1.0 - cfg.drop_prob).ln();
                if t_drop < duration {
                    duration = t_drop.max(1e-9);
                    true
                } else {
                    false
                }
            } else {
                false
            };
            self.seq += 1;
            let slot = match self.free_slots.pop() {
                Some(slot) => {
                    self.jobs[slot as usize] = Some(job);
                    slot
                }
                None => {
                    self.jobs.push(Some(job));
                    (self.jobs.len() - 1) as u32
                }
            };
            self.heap.push(Event {
                time: self.now + duration,
                seq: self.seq,
                slot,
                dropped,
            });
            self.free_workers -= 1;
        }

        // A round that leaves workers idle while jobs are still in
        // flight is the signature of a waiting scheduler (or a drained
        // one); record it so reports can show where parallelism stalled.
        if recorder.enabled() && self.free_workers > 0 && !self.heap.is_empty() {
            recorder.record(
                self.now,
                EventKind::WorkerIdle {
                    idle: self.free_workers,
                },
            );
        }

        let Some(event) = self.heap.pop() else {
            // No outstanding work: either finished, or a waiting
            // scheduler that can never be unblocked (drained).
            self.done = true;
            return false;
        };
        if event.time > cfg.max_time {
            self.now = cfg.max_time;
            self.done = true;
            return false;
        }
        self.now = event.time;
        self.free_workers += 1;
        let job = self.jobs[event.slot as usize]
            .take()
            .expect("heap entries reference live slab jobs");
        self.free_slots.push(event.slot);

        if event.dropped {
            self.faults.jobs_dropped += 1;
            self.faults.jobs_retried += 1;
            if recorder.enabled() {
                recorder.record(
                    self.now,
                    EventKind::Drop {
                        trial: job.trial.0,
                        rung: job.rung,
                        cause: DropCause::Dropped,
                    },
                );
            }
            // Work lost; retry from the last checkpoint.
            self.retry.push_back(job);
        } else {
            self.jobs_completed += 1;
            let slot = self
                .states
                .get_mut(&job.trial)
                .expect("state created at issue time");
            if slot.profile.is_none() {
                // A restored slot: profiles are derived data and not
                // serialized, so refill the memo on first use.
                slot.profile = self.bench.profile(&job.config);
            }
            let (val, test) = match &slot.profile {
                Some(p) => {
                    p.advance(&mut slot.state, job.resource);
                    (
                        p.validation_loss(&slot.state, rng),
                        p.test_loss(&slot.state),
                    )
                }
                None => {
                    self.bench
                        .advance(&job.config, &mut slot.state, job.resource, rng);
                    (
                        self.bench.validation_loss(&job.config, &slot.state, rng),
                        self.bench.test_loss(&job.config, &slot.state),
                    )
                }
            };
            if !slot.completed {
                slot.completed = true;
                self.distinct_trials += 1;
            }
            if self.best_config.as_ref().is_none_or(|&(_, l, _)| val < l) {
                self.best_config = Some((job.config.clone(), val, job.resource));
            }
            let improved = val < self.incumbent_val;
            if improved {
                self.incumbent_val = val;
            }
            let record = match cfg.trace_mode {
                TraceMode::Full => true,
                TraceMode::IncumbentOnly => improved,
                TraceMode::Aggregated => false,
            };
            if record {
                self.trace.push(TraceEvent {
                    time: self.now,
                    trial: job.trial.0,
                    bracket: job.bracket,
                    rung: job.rung,
                    resource: job.resource,
                    val_loss: val,
                    test_loss: test,
                });
            }
            if recorder.enabled() {
                // Same `now` as the TraceEvent above: telemetry and
                // traces share the simulated clock.
                recorder.record(
                    self.now,
                    EventKind::JobEnd {
                        trial: job.trial.0,
                        rung: job.rung,
                        resource: job.resource,
                        loss: val,
                    },
                );
            }
            self.scheduler.observe(Observation::for_job(&job, val));
            // The scheduler saw new information; a sticky Wait (if any)
            // may now be resolvable.
            self.waiting = false;
        }

        if self.jobs_completed >= cfg.max_jobs {
            self.done = true;
            return false;
        }
        true
    }

    /// Capture the engine's loop state as plain data. Must be called between
    /// steps (any time the caller holds the engine, by construction).
    pub fn export_state(&self) -> SimRunState {
        let mut slots: Vec<TrialSlotState> = self
            .states
            .iter()
            .map(|(t, s)| TrialSlotState {
                trial: t.0,
                state: s.state,
                time_per_unit: s.time_per_unit,
                completed: s.completed,
            })
            .collect();
        slots.sort_by_key(|s| s.trial);
        let mut pending: Vec<PendingJob> = self
            .heap
            .iter()
            .map(|e| PendingJob {
                time: e.time,
                seq: e.seq,
                job: self.jobs[e.slot as usize]
                    .clone()
                    .expect("heap entries reference live slab jobs"),
                dropped: e.dropped,
            })
            .collect();
        pending.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.seq.cmp(&b.seq)));
        SimRunState {
            now: self.now,
            seq: self.seq,
            free_workers: self.free_workers,
            jobs_completed: self.jobs_completed,
            distinct_trials: self.distinct_trials,
            faults: self.faults,
            scheduler_finished: self.scheduler_finished,
            incumbent_val: self.incumbent_val,
            best_config: self.best_config.clone(),
            slots,
            pending,
            retry: self.retry.iter().cloned().collect(),
            searcher: self.trace.searcher().to_owned(),
            trace: self.trace.events().to_vec(),
        }
    }

    /// Rebuild an engine from a state captured by
    /// [`SimEngine::export_state`], with the scheduler restored separately.
    /// Continuing the restored engine with the original RNG state produces
    /// exactly the events the uninterrupted run would have produced.
    pub fn restore(
        config: SimConfig,
        scheduler: S,
        bench: &'b dyn BenchmarkModel,
        state: SimRunState,
    ) -> Self {
        let mut trace = RunTrace::new(&state.searcher);
        for event in &state.trace {
            trace.push(*event);
        }
        let capacity = config.workers.max(state.pending.len()) + 1;
        let mut heap: BinaryHeap<Event> = BinaryHeap::with_capacity(capacity);
        let mut jobs: Vec<Option<Job>> = Vec::with_capacity(capacity);
        for p in state.pending {
            heap.push(Event {
                time: p.time,
                seq: p.seq,
                slot: jobs.len() as u32,
                dropped: p.dropped,
            });
            jobs.push(Some(p.job));
        }
        let mut retry: VecDeque<Job> =
            VecDeque::with_capacity(config.workers.min(64).max(state.retry.len()));
        retry.extend(state.retry);
        let free_slots = Vec::with_capacity(config.workers + 1);
        SimEngine {
            cfg: config,
            scheduler,
            bench,
            trace,
            states: state
                .slots
                .into_iter()
                .map(|s| {
                    (
                        TrialId(s.trial),
                        TrialSlot {
                            state: s.state,
                            time_per_unit: s.time_per_unit,
                            completed: s.completed,
                            // Refilled lazily at the trial's next completion
                            // (the config lives in jobs, not slots).
                            profile: None,
                        },
                    )
                })
                .collect(),
            heap,
            jobs,
            free_slots,
            retry,
            waiting: false,
            free_workers: state.free_workers,
            now: state.now,
            seq: state.seq,
            jobs_completed: state.jobs_completed,
            distinct_trials: state.distinct_trials,
            faults: state.faults,
            scheduler_finished: state.scheduler_finished,
            best_config: state.best_config,
            incumbent_val: state.incumbent_val,
            done: false,
        }
    }

    /// Finish the run and produce its [`SimResult`].
    pub fn into_result(self) -> SimResult {
        SimResult {
            trace: self.trace,
            end_time: self.now.min(self.cfg.max_time),
            jobs_completed: self.jobs_completed,
            distinct_trials: self.distinct_trials,
            faults: self.faults,
            scheduler_finished: self.scheduler_finished,
            best_config: self.best_config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_core::{Asha, AshaConfig, RandomSearch, ShaConfig, SyncSha};
    use asha_surrogate::presets;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn asha_keeps_all_workers_busy() {
        let bench = presets::cifar10_cuda_convnet(1);
        let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
        let result = ClusterSim::new(SimConfig::new(25, 100.0)).run(asha, &bench, &mut rng(0));
        assert!(result.jobs_completed > 100, "{}", result.jobs_completed);
        assert!(result.faults.is_clean(), "{}", result.faults);
        assert!(!result.scheduler_finished);
        assert!(result.end_time <= 100.0);
    }

    #[test]
    fn trace_is_time_ordered_and_improving() {
        let bench = presets::cifar10_cuda_convnet(1);
        let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
        let result = ClusterSim::new(SimConfig::new(9, 200.0)).run(asha, &bench, &mut rng(1));
        let events = result.trace.events();
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        // The incumbent's *validation* loss is monotone by construction;
        // the reported test loss may fluctuate with it.
        let mut best = f64::INFINITY;
        let mut updates = 0;
        for e in events {
            if e.val_loss < best {
                best = e.val_loss;
                updates += 1;
            }
        }
        assert!(updates >= 3, "expected several incumbent updates");
        assert_eq!(
            result.trace.incumbent_curve().points().len(),
            updates,
            "one curve point per incumbent update"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let bench = presets::cifar10_cuda_convnet(1);
        let run = |seed| {
            let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
            ClusterSim::new(SimConfig::new(5, 50.0)).run(asha, &bench, &mut rng(seed))
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a.trace, b.trace);
        assert_ne!(a.trace, c.trace);
    }

    #[test]
    fn snapshot_restore_mid_run_is_bitwise_identical() {
        use asha_core::NoopRecorder;

        let bench = presets::cifar10_cuda_convnet(1);
        let cfg = SimConfig::new(5, 50.0)
            .with_stragglers(0.3)
            .with_drops(0.02);

        // Reference: uninterrupted run.
        let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
        let reference =
            ClusterSim::new(cfg.clone()).run_recorded(asha, &bench, &mut rng(9), &mut NoopRecorder);

        // Same run, but snapshot (sim + scheduler + RNG state) after every
        // step, restore fresh objects from each snapshot, and continue from
        // there — as crash recovery would.
        for kill_after in [1usize, 5, 17, 43, 101] {
            let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
            let mut engine = SimEngine::new(cfg.clone(), asha, &bench);
            let mut rng9 = rng(9);
            let mut steps = 0usize;
            while steps < kill_after && engine.step(&mut rng9, &mut NoopRecorder) {
                steps += 1;
            }
            let sim_state = engine.export_state();
            let sched_state = engine.scheduler().export_state();
            let rng_state = rng9.state();
            drop(engine);

            let restored_sched = Asha::from_state(bench.space().clone(), sched_state);
            let mut restored =
                SimEngine::restore(cfg.clone(), restored_sched, &bench, sim_state.clone());
            assert_eq!(restored.export_state(), sim_state, "restore round-trips");
            let mut rng_restored = rand::rngs::StdRng::from_state(rng_state);
            while restored.step(&mut rng_restored, &mut NoopRecorder) {}
            let result = restored.into_result();
            assert_eq!(
                result.trace, reference.trace,
                "trace diverged after restore at step {kill_after}"
            );
            assert_eq!(result.jobs_completed, reference.jobs_completed);
            assert_eq!(result.faults, reference.faults);
            assert_eq!(result.best_config, reference.best_config);
        }
    }

    #[test]
    fn sync_sha_finishes_and_reports_completion() {
        let bench = presets::cifar10_cuda_convnet(1);
        let sha = SyncSha::new(bench.space().clone(), ShaConfig::new(16, 16.0, 256.0, 4.0));
        let result = ClusterSim::new(SimConfig::new(4, 1e6)).run(sha, &bench, &mut rng(2));
        assert!(result.scheduler_finished);
        // 16 + 4 + 1 jobs.
        assert_eq!(result.jobs_completed, 21);
    }

    #[test]
    fn drops_are_retried_and_work_still_completes() {
        let bench = presets::cifar10_cuda_convnet(1);
        let sha = SyncSha::new(bench.space().clone(), ShaConfig::new(16, 16.0, 256.0, 4.0));
        // 0.1 per job over 21+ jobs makes "at least one drop" near-certain
        // rather than a property of one lucky rng stream.
        let result =
            ClusterSim::new(SimConfig::new(4, 1e7).with_drops(0.1)).run(sha, &bench, &mut rng(3));
        assert!(result.faults.jobs_dropped > 0, "expected some drops");
        assert_eq!(result.faults.jobs_retried, result.faults.jobs_dropped);
        assert!(result.scheduler_finished, "bracket must still complete");
        assert_eq!(result.jobs_completed, 21);
    }

    #[test]
    fn stragglers_slow_the_clock_but_not_correctness() {
        let bench = presets::cifar10_cuda_convnet(1);
        let mk = || SyncSha::new(bench.space().clone(), ShaConfig::new(16, 16.0, 256.0, 4.0));
        let clean = ClusterSim::new(SimConfig::new(4, 1e7)).run(mk(), &bench, &mut rng(4));
        let slow = ClusterSim::new(SimConfig::new(4, 1e7).with_stragglers(1.5)).run(
            mk(),
            &bench,
            &mut rng(4),
        );
        assert!(slow.end_time > clean.end_time);
        assert_eq!(slow.jobs_completed, clean.jobs_completed);
    }

    #[test]
    fn checkpoint_resume_is_cheaper_than_scratch() {
        let bench = presets::cifar10_cuda_convnet(1);
        let mk = || {
            Asha::new(
                bench.space().clone(),
                AshaConfig::new(1.0, 256.0, 4.0).with_max_trials(64),
            )
        };
        let ckpt = ClusterSim::new(SimConfig::new(8, 1e7)).run(mk(), &bench, &mut rng(5));
        let scratch = ClusterSim::new(
            SimConfig::new(8, 1e7).with_resume(ResumePolicy::FromScratch),
        )
        .run(mk(), &bench, &mut rng(5));
        assert!(ckpt.scheduler_finished && scratch.scheduler_finished);
        assert!(
            scratch.end_time > ckpt.end_time,
            "scratch {} should exceed checkpoint {}",
            scratch.end_time,
            ckpt.end_time
        );
    }

    #[test]
    fn job_cap_stops_runaway() {
        let bench = presets::cifar10_cuda_convnet(1);
        let rs = RandomSearch::new(bench.space().clone(), 256.0);
        let result = ClusterSim::new(SimConfig::new(100, 1e12).with_max_jobs(500)).run(
            rs,
            &bench,
            &mut rng(6),
        );
        assert_eq!(result.jobs_completed, 500);
    }

    #[test]
    fn horizon_truncates_cleanly() {
        let bench = presets::cifar10_cuda_convnet(1);
        let rs = RandomSearch::new(bench.space().clone(), 256.0);
        let result = ClusterSim::new(SimConfig::new(2, 10.0)).run(rs, &bench, &mut rng(7));
        assert!(result.trace.events().iter().all(|e| e.time <= 10.0));
        assert!(result.end_time <= 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = SimConfig::new(0, 1.0);
    }

    #[test]
    fn incumbent_only_matches_full_incumbent_curve() {
        let bench = presets::cifar10_cuda_convnet(1);
        let run = |mode| {
            let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
            ClusterSim::new(SimConfig::new(25, 150.0).with_trace_mode(mode)).run(
                asha,
                &bench,
                &mut rng(11),
            )
        };
        let full = run(TraceMode::Full);
        let lean = run(TraceMode::IncumbentOnly);
        assert_eq!(
            full.trace.incumbent_curve(),
            lean.trace.incumbent_curve(),
            "IncumbentOnly must preserve the incumbent curve exactly"
        );
        assert!(
            lean.trace.len() < full.trace.len() / 4,
            "IncumbentOnly should be far smaller: {} vs {}",
            lean.trace.len(),
            full.trace.len()
        );
        // Scalar aggregates are mode-independent.
        assert_eq!(full.jobs_completed, lean.jobs_completed);
        assert_eq!(full.distinct_trials, lean.distinct_trials);
        assert_eq!(full.end_time, lean.end_time);
        assert_eq!(
            full.best_config.as_ref().map(|&(_, v, r)| (v, r)),
            lean.best_config.as_ref().map(|&(_, v, r)| (v, r))
        );
    }

    #[test]
    fn aggregated_mode_keeps_scalars_but_no_events() {
        let bench = presets::cifar10_cuda_convnet(1);
        let run = |mode| {
            let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
            ClusterSim::new(SimConfig::new(9, 100.0).with_trace_mode(mode)).run(
                asha,
                &bench,
                &mut rng(12),
            )
        };
        let full = run(TraceMode::Full);
        let agg = run(TraceMode::Aggregated);
        assert!(agg.trace.is_empty());
        assert_eq!(agg.jobs_completed, full.jobs_completed);
        assert_eq!(agg.distinct_trials, full.distinct_trials);
        assert_eq!(agg.end_time, full.end_time);
        assert_eq!(
            agg.best_config.as_ref().map(|&(_, v, r)| (v, r)),
            full.best_config.as_ref().map(|&(_, v, r)| (v, r))
        );
    }

    #[test]
    fn distinct_trials_counter_matches_full_trace() {
        let bench = presets::cifar10_cuda_convnet(1);
        let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
        let result = ClusterSim::new(SimConfig::new(9, 120.0)).run(asha, &bench, &mut rng(13));
        assert_eq!(result.distinct_trials, result.trace.distinct_trials());
        assert!(result.distinct_trials > 0);
    }
}

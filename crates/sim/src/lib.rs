//! Discrete-event cluster simulator for hyperparameter tuning schedulers.
//!
//! The paper's distributed experiments (Sections 4.2–4.3) run schedulers on
//! 16–500 GPU workers; its robustness study (Appendix A.1, Figures 7–8)
//! uses *simulated workloads* with stragglers and dropped jobs. This crate
//! is that substrate: a deterministic discrete-event simulation of a worker
//! pool executing jobs from any [`asha_core::Scheduler`] against any
//! [`asha_surrogate::BenchmarkModel`].
//!
//! Faithfulness to the paper's Appendix A.1 setup:
//!
//! * **Stragglers** — each job's expected duration is multiplied by
//!   `1 + |z|` with `z ~ N(0, straggler_std)`.
//! * **Dropped jobs** — a job is dropped with probability `p` per time
//!   unit, i.e. it survives `d` units with probability `(1-p)^d`; dropped
//!   jobs lose their work and are retried from the last checkpoint, and the
//!   worker is freed meanwhile.
//! * **Resume policy** — [`ResumePolicy::Checkpoint`] trains only the
//!   resource delta since the trial's checkpoint (Section 3.2's iterative
//!   setting); [`ResumePolicy::FromScratch`] pays the full rung resource
//!   (the accounting of Figures 1–2 and the Appendix A.1 simulations).
//! * **Trace modes** — [`TraceMode::Full`] records every completion;
//!   [`TraceMode::IncumbentOnly`] keeps O(incumbent-updates) memory while
//!   producing the identical incumbent curve; [`TraceMode::Aggregated`]
//!   keeps only scalar aggregates. Long-horizon runs complete millions of
//!   jobs, so the lean modes are what make 500-worker sweeps affordable.
//!
//! # Examples
//!
//! ```
//! use asha_core::{Asha, AshaConfig};
//! use asha_sim::{ClusterSim, SimConfig};
//! use asha_surrogate::{presets, BenchmarkModel};
//! use rand::SeedableRng;
//!
//! let bench = presets::cifar10_cuda_convnet(2020);
//! let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let result = ClusterSim::new(SimConfig::new(25, 150.0)).run(asha, &bench, &mut rng);
//! assert!(result.jobs_completed > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;

pub use cluster::{
    ClusterSim, PendingJob, ResumePolicy, SimConfig, SimConfigBuilder, SimEngine, SimResult,
    SimRunState, TraceMode, TrialSlotState,
};

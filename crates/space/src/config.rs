use serde::{Deserialize, Serialize};

use crate::error::SpaceError;
use crate::space::SearchSpace;

/// A single sampled hyperparameter value.
///
/// Values are stored in the representation that matches their
/// [`crate::ParamSpec`] variant: floats for continuous parameters, integers
/// for discrete ranges, and indices for ordinal/categorical choices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// Value of a continuous parameter.
    Float(f64),
    /// Value of a discrete integer parameter.
    Int(i64),
    /// Index into the choices of an ordinal or categorical parameter.
    Index(usize),
}

/// A complete hyperparameter configuration: one [`ParamValue`] per parameter
/// of the [`SearchSpace`] it was sampled from, in the space's declaration
/// order.
///
/// Configurations are plain data (cheaply cloneable, serializable) and do not
/// hold a reference to their space; accessors take the space as an argument
/// so that values can be interpreted and validated.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Config {
    values: Vec<ParamValue>,
}

impl Config {
    /// Build a configuration directly from values.
    ///
    /// Most callers should use [`SearchSpace::sample`] instead.
    pub fn new(values: Vec<ParamValue>) -> Self {
        Config { values }
    }

    /// The raw values in declaration order.
    pub fn values(&self) -> &[ParamValue] {
        &self.values
    }

    /// Mutable access to the raw values (used by PBT's explore step).
    pub fn values_mut(&mut self) -> &mut [ParamValue] {
        &mut self.values
    }

    /// Number of values (equals the arity of the originating space).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the configuration is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Read a continuous parameter by name.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::UnknownParam`] if `name` is not in `space`, and
    /// [`SpaceError::TypeMismatch`] if the parameter is not continuous.
    pub fn float(&self, name: &str, space: &SearchSpace) -> Result<f64, SpaceError> {
        let idx = space.index_of(name)?;
        match self.values.get(idx) {
            Some(ParamValue::Float(v)) => Ok(*v),
            _ => Err(SpaceError::TypeMismatch {
                name: name.to_owned(),
                requested: "a float",
            }),
        }
    }

    /// Read a discrete integer parameter by name.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::UnknownParam`] if `name` is not in `space`, and
    /// [`SpaceError::TypeMismatch`] if the parameter is not discrete.
    pub fn int(&self, name: &str, space: &SearchSpace) -> Result<i64, SpaceError> {
        let idx = space.index_of(name)?;
        match self.values.get(idx) {
            Some(ParamValue::Int(v)) => Ok(*v),
            _ => Err(SpaceError::TypeMismatch {
                name: name.to_owned(),
                requested: "an integer",
            }),
        }
    }

    /// Read the choice index of an ordinal or categorical parameter by name.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::UnknownParam`] if `name` is not in `space`, and
    /// [`SpaceError::TypeMismatch`] if the parameter is not a choice.
    pub fn index(&self, name: &str, space: &SearchSpace) -> Result<usize, SpaceError> {
        let idx = space.index_of(name)?;
        match self.values.get(idx) {
            Some(ParamValue::Index(v)) => Ok(*v),
            _ => Err(SpaceError::TypeMismatch {
                name: name.to_owned(),
                requested: "a choice index",
            }),
        }
    }

    /// The numeric interpretation of the named parameter, regardless of kind
    /// (continuous value, integer as float, ordinal's numeric choice, or
    /// categorical index). See [`crate::ParamSpec::numeric`].
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::UnknownParam`] if `name` is not in `space`.
    pub fn numeric(&self, name: &str, space: &SearchSpace) -> Result<f64, SpaceError> {
        let idx = space.index_of(name)?;
        let spec = space.spec_at(idx);
        Ok(self
            .values
            .get(idx)
            .map(|v| spec.numeric(v))
            .unwrap_or(f64::NAN))
    }
}

impl FromIterator<ParamValue> for Config {
    fn from_iter<I: IntoIterator<Item = ParamValue>>(iter: I) -> Self {
        Config {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Scale;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .continuous("lr", 1e-4, 1.0, Scale::Log)
            .discrete("layers", 2, 4)
            .ordinal("batch", &[64.0, 128.0, 256.0])
            .categorical("act", &["relu", "tanh"])
            .build()
            .expect("valid space")
    }

    #[test]
    fn typed_accessors() {
        let s = space();
        let c = Config::new(vec![
            ParamValue::Float(0.01),
            ParamValue::Int(3),
            ParamValue::Index(1),
            ParamValue::Index(0),
        ]);
        assert_eq!(c.float("lr", &s).unwrap(), 0.01);
        assert_eq!(c.int("layers", &s).unwrap(), 3);
        assert_eq!(c.index("batch", &s).unwrap(), 1);
        assert_eq!(c.index("act", &s).unwrap(), 0);
    }

    #[test]
    fn numeric_accessor_resolves_ordinals() {
        let s = space();
        let c = Config::new(vec![
            ParamValue::Float(0.01),
            ParamValue::Int(3),
            ParamValue::Index(2),
            ParamValue::Index(1),
        ]);
        assert_eq!(c.numeric("batch", &s).unwrap(), 256.0);
        assert_eq!(c.numeric("layers", &s).unwrap(), 3.0);
        assert_eq!(c.numeric("act", &s).unwrap(), 1.0);
    }

    #[test]
    fn wrong_type_is_an_error() {
        let s = space();
        let c = Config::new(vec![
            ParamValue::Float(0.01),
            ParamValue::Int(3),
            ParamValue::Index(1),
            ParamValue::Index(0),
        ]);
        assert!(matches!(
            c.int("lr", &s),
            Err(SpaceError::TypeMismatch { .. })
        ));
        assert!(matches!(
            c.float("layers", &s),
            Err(SpaceError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn unknown_param_is_an_error() {
        let s = space();
        let c = s.default_config();
        assert!(matches!(
            c.float("nope", &s),
            Err(SpaceError::UnknownParam(_))
        ));
    }

    #[test]
    fn from_iterator_collects() {
        let c: Config = vec![ParamValue::Int(1), ParamValue::Int(2)]
            .into_iter()
            .collect();
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }
}

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::ParamValue;

/// Sampling scale for a continuous hyperparameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Sample uniformly in the raw value.
    Linear,
    /// Sample uniformly in `log(value)`; requires strictly positive bounds.
    Log,
}

/// Specification of a single hyperparameter's domain.
///
/// The four variants cover everything that appears in the ASHA paper's search
/// spaces (Tables 1–3): continuous ranges on linear or log scale, integer
/// ranges, ordered numeric choices ("ordinal", e.g. batch size in
/// `{64, 128, 256, 512}`), and unordered categorical labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamSpec {
    /// A real-valued parameter in `[low, high]`.
    Continuous {
        /// Inclusive lower bound.
        low: f64,
        /// Inclusive upper bound.
        high: f64,
        /// Whether to sample uniformly in the value or in its logarithm.
        scale: Scale,
    },
    /// An integer-valued parameter in `[low, high]` (both inclusive).
    Discrete {
        /// Inclusive lower bound.
        low: i64,
        /// Inclusive upper bound.
        high: i64,
    },
    /// An ordered set of numeric choices; stored values are indices into
    /// `values`. PBT perturbs these to adjacent choices.
    Ordinal {
        /// The numeric choices, in increasing order.
        values: Vec<f64>,
    },
    /// An unordered set of labelled choices; stored values are indices into
    /// `labels`. PBT re-samples these uniformly when perturbing.
    Categorical {
        /// The choice labels.
        labels: Vec<String>,
    },
}

impl ParamSpec {
    /// Number of distinct values, if the domain is finite.
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            ParamSpec::Continuous { .. } => None,
            ParamSpec::Discrete { low, high } => Some((high - low + 1) as usize),
            ParamSpec::Ordinal { values } => Some(values.len()),
            ParamSpec::Categorical { labels } => Some(labels.len()),
        }
    }

    /// Draw a uniform random value from this domain.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> ParamValue {
        self.from_unit(rng.gen::<f64>())
    }

    /// Map a point `u` in `[0, 1]` to a value in this domain.
    ///
    /// This is the inverse CDF of the uniform sampling distribution, so
    /// `from_unit(rng.gen())` and [`ParamSpec::sample`] agree. Values of `u`
    /// outside `[0, 1]` are clamped.
    pub fn from_unit(&self, u: f64) -> ParamValue {
        let u = u.clamp(0.0, 1.0);
        match self {
            ParamSpec::Continuous { low, high, scale } => match scale {
                Scale::Linear => ParamValue::Float(low + u * (high - low)),
                Scale::Log => {
                    let (ll, lh) = (low.ln(), high.ln());
                    ParamValue::Float((ll + u * (lh - ll)).exp())
                }
            },
            ParamSpec::Discrete { low, high } => {
                let n = (high - low + 1) as f64;
                let idx = (u * n).floor().min(n - 1.0) as i64;
                ParamValue::Int(low + idx)
            }
            ParamSpec::Ordinal { values } => {
                let n = values.len() as f64;
                ParamValue::Index((u * n).floor().min(n - 1.0) as usize)
            }
            ParamSpec::Categorical { labels } => {
                let n = labels.len() as f64;
                ParamValue::Index((u * n).floor().min(n - 1.0) as usize)
            }
        }
    }

    /// Map a value from this domain to `[0, 1]`.
    ///
    /// Finite domains map to bin centers so that `from_unit(to_unit(v)) == v`
    /// round-trips.
    pub fn to_unit(&self, value: &ParamValue) -> f64 {
        match (self, value) {
            (ParamSpec::Continuous { low, high, scale }, ParamValue::Float(v)) => match scale {
                Scale::Linear => ((v - low) / (high - low)).clamp(0.0, 1.0),
                Scale::Log => ((v.ln() - low.ln()) / (high.ln() - low.ln())).clamp(0.0, 1.0),
            },
            (ParamSpec::Discrete { low, high }, ParamValue::Int(v)) => {
                let n = (high - low + 1) as f64;
                (((v - low) as f64 + 0.5) / n).clamp(0.0, 1.0)
            }
            (ParamSpec::Ordinal { values }, ParamValue::Index(i)) => {
                ((*i as f64 + 0.5) / values.len() as f64).clamp(0.0, 1.0)
            }
            (ParamSpec::Categorical { labels }, ParamValue::Index(i)) => {
                ((*i as f64 + 0.5) / labels.len() as f64).clamp(0.0, 1.0)
            }
            // Mismatched kinds indicate a config from a different space; map
            // to the center so model-based code degrades gracefully.
            _ => 0.5,
        }
    }

    /// The numeric interpretation of a stored value: the float itself, the
    /// integer as a float, the ordinal's numeric choice, or the categorical
    /// index as a float.
    pub fn numeric(&self, value: &ParamValue) -> f64 {
        match (self, value) {
            (_, ParamValue::Float(v)) => *v,
            (_, ParamValue::Int(v)) => *v as f64,
            (ParamSpec::Ordinal { values }, ParamValue::Index(i)) => {
                values.get(*i).copied().unwrap_or(f64::NAN)
            }
            (_, ParamValue::Index(i)) => *i as f64,
        }
    }

    /// Perturb a value the way Population Based Training's explore step does
    /// (Appendix A.3 of the paper): continuous values are multiplied by
    /// `factor` or `1/factor` (clamped to the domain); finite domains move to
    /// one of the two adjacent choices; categorical values are re-sampled.
    pub fn perturb<R: Rng + ?Sized>(
        &self,
        value: &ParamValue,
        factor: f64,
        rng: &mut R,
    ) -> ParamValue {
        let up = rng.gen_bool(0.5);
        match (self, value) {
            (ParamSpec::Continuous { low, high, .. }, ParamValue::Float(v)) => {
                let mult = if up { factor } else { 1.0 / factor };
                ParamValue::Float((v * mult).clamp(*low, *high))
            }
            (ParamSpec::Discrete { low, high }, ParamValue::Int(v)) => {
                let step = if up { 1 } else { -1 };
                ParamValue::Int((v + step).clamp(*low, *high))
            }
            (ParamSpec::Ordinal { values }, ParamValue::Index(i)) => {
                let n = values.len();
                let j = if up {
                    (*i + 1).min(n - 1)
                } else {
                    i.saturating_sub(1)
                };
                ParamValue::Index(j)
            }
            _ => self.sample(rng),
        }
    }

    /// Render a stored value as a human-readable string.
    pub fn display_value(&self, value: &ParamValue) -> String {
        match (self, value) {
            (ParamSpec::Categorical { labels }, ParamValue::Index(i)) => labels
                .get(*i)
                .cloned()
                .unwrap_or_else(|| format!("<invalid index {i}>")),
            (ParamSpec::Ordinal { values }, ParamValue::Index(i)) => values
                .get(*i)
                .map(|v| format!("{v}"))
                .unwrap_or_else(|| format!("<invalid index {i}>")),
            (_, ParamValue::Float(v)) => format!("{v:.6e}"),
            (_, ParamValue::Int(v)) => format!("{v}"),
            (_, ParamValue::Index(i)) => format!("#{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn continuous_linear_sampling_stays_in_bounds() {
        let spec = ParamSpec::Continuous {
            low: -2.0,
            high: 3.0,
            scale: Scale::Linear,
        };
        let mut r = rng();
        for _ in 0..1000 {
            match spec.sample(&mut r) {
                ParamValue::Float(v) => assert!((-2.0..=3.0).contains(&v)),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn continuous_log_sampling_is_log_uniform() {
        let spec = ParamSpec::Continuous {
            low: 1e-4,
            high: 1.0,
            scale: Scale::Log,
        };
        let mut r = rng();
        // Count how many samples fall below the geometric midpoint 1e-2; a
        // log-uniform distribution puts half its mass there.
        let mut below = 0;
        let n = 4000;
        for _ in 0..n {
            if let ParamValue::Float(v) = spec.sample(&mut r) {
                assert!((1e-4..=1.0).contains(&v));
                if v < 1e-2 {
                    below += 1;
                }
            }
        }
        let frac = below as f64 / n as f64;
        assert!(
            (frac - 0.5).abs() < 0.05,
            "log-uniform midpoint mass {frac}"
        );
    }

    #[test]
    fn discrete_sampling_covers_all_values() {
        let spec = ParamSpec::Discrete { low: 2, high: 5 };
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            if let ParamValue::Int(v) = spec.sample(&mut r) {
                assert!((2..=5).contains(&v));
                seen.insert(v);
            }
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn unit_round_trip_continuous() {
        let spec = ParamSpec::Continuous {
            low: 0.5,
            high: 8.0,
            scale: Scale::Log,
        };
        for u in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let v = spec.from_unit(u);
            let u2 = spec.to_unit(&v);
            assert!((u - u2).abs() < 1e-12, "u={u} round-tripped to {u2}");
        }
    }

    #[test]
    fn unit_round_trip_finite_domains() {
        let specs = [
            ParamSpec::Discrete { low: -3, high: 10 },
            ParamSpec::Ordinal {
                values: vec![16.0, 32.0, 48.0, 64.0],
            },
            ParamSpec::Categorical {
                labels: vec!["relu".into(), "tanh".into(), "gelu".into()],
            },
        ];
        let mut r = rng();
        for spec in &specs {
            for _ in 0..100 {
                let v = spec.sample(&mut r);
                let v2 = spec.from_unit(spec.to_unit(&v));
                assert_eq!(v, v2, "round trip failed for {spec:?}");
            }
        }
    }

    #[test]
    fn from_unit_clamps_out_of_range_inputs() {
        let spec = ParamSpec::Discrete { low: 0, high: 9 };
        assert_eq!(spec.from_unit(-0.5), ParamValue::Int(0));
        assert_eq!(spec.from_unit(1.5), ParamValue::Int(9));
    }

    #[test]
    fn numeric_interpretation() {
        let ord = ParamSpec::Ordinal {
            values: vec![64.0, 128.0],
        };
        assert_eq!(ord.numeric(&ParamValue::Index(1)), 128.0);
        let cont = ParamSpec::Continuous {
            low: 0.0,
            high: 1.0,
            scale: Scale::Linear,
        };
        assert_eq!(cont.numeric(&ParamValue::Float(0.25)), 0.25);
        let disc = ParamSpec::Discrete { low: 0, high: 5 };
        assert_eq!(disc.numeric(&ParamValue::Int(3)), 3.0);
    }

    #[test]
    fn perturb_continuous_multiplies_and_clamps() {
        let spec = ParamSpec::Continuous {
            low: 0.1,
            high: 10.0,
            scale: Scale::Log,
        };
        let mut r = rng();
        for _ in 0..100 {
            if let ParamValue::Float(v) = spec.perturb(&ParamValue::Float(1.0), 1.2, &mut r) {
                assert!(
                    (v - 1.2).abs() < 1e-12 || (v - 1.0 / 1.2).abs() < 1e-12,
                    "unexpected perturbed value {v}"
                );
            }
        }
        // Clamping at the boundary.
        if let ParamValue::Float(v) = spec.perturb(&ParamValue::Float(10.0), 1.2, &mut r) {
            assert!(v <= 10.0);
        }
    }

    #[test]
    fn perturb_ordinal_moves_to_adjacent() {
        let spec = ParamSpec::Ordinal {
            values: vec![1.0, 2.0, 3.0],
        };
        let mut r = rng();
        for _ in 0..50 {
            if let ParamValue::Index(j) = spec.perturb(&ParamValue::Index(1), 1.2, &mut r) {
                assert!(j == 0 || j == 2);
            }
        }
        // Endpoints saturate.
        for _ in 0..50 {
            if let ParamValue::Index(j) = spec.perturb(&ParamValue::Index(0), 1.2, &mut r) {
                assert!(j <= 1);
            }
        }
    }

    #[test]
    fn cardinality() {
        assert_eq!(
            ParamSpec::Continuous {
                low: 0.0,
                high: 1.0,
                scale: Scale::Linear
            }
            .cardinality(),
            None
        );
        assert_eq!(
            ParamSpec::Discrete { low: 1, high: 10 }.cardinality(),
            Some(10)
        );
        assert_eq!(
            ParamSpec::Ordinal {
                values: vec![1.0, 2.0]
            }
            .cardinality(),
            Some(2)
        );
    }

    #[test]
    fn display_value_formats() {
        let cat = ParamSpec::Categorical {
            labels: vec!["a".into(), "b".into()],
        };
        assert_eq!(cat.display_value(&ParamValue::Index(1)), "b");
        let ord = ParamSpec::Ordinal {
            values: vec![64.0, 128.0],
        };
        assert_eq!(ord.display_value(&ParamValue::Index(0)), "64");
    }
}

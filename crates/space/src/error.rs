use std::error::Error;
use std::fmt;

/// Errors produced when building or querying a [`crate::SearchSpace`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceError {
    /// Two parameters share the same name.
    DuplicateName(String),
    /// A parameter was looked up by a name that does not exist.
    UnknownParam(String),
    /// The bounds of a continuous or discrete parameter are invalid
    /// (`low >= high`, non-finite, or non-positive for log scale).
    InvalidBounds {
        /// Name of the offending parameter.
        name: String,
        /// Human-readable description of what is wrong.
        reason: String,
    },
    /// An ordinal or categorical parameter was declared with no choices.
    EmptyChoices(String),
    /// A value was accessed with the wrong type
    /// (e.g. [`crate::Config::float`] on a discrete parameter).
    TypeMismatch {
        /// Name of the parameter being accessed.
        name: String,
        /// The accessor that was used.
        requested: &'static str,
    },
    /// A configuration has a different number of values than the space has
    /// parameters.
    ArityMismatch {
        /// Number of parameters in the space.
        expected: usize,
        /// Number of values in the configuration.
        found: usize,
    },
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::DuplicateName(name) => {
                write!(f, "duplicate parameter name `{name}`")
            }
            SpaceError::UnknownParam(name) => {
                write!(f, "unknown parameter `{name}`")
            }
            SpaceError::InvalidBounds { name, reason } => {
                write!(f, "invalid bounds for parameter `{name}`: {reason}")
            }
            SpaceError::EmptyChoices(name) => {
                write!(f, "parameter `{name}` was declared with no choices")
            }
            SpaceError::TypeMismatch { name, requested } => {
                write!(f, "parameter `{name}` cannot be read as {requested}")
            }
            SpaceError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "configuration has {found} values but the space has {expected} parameters"
                )
            }
        }
    }
}

impl Error for SpaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            SpaceError::DuplicateName("lr".into()),
            SpaceError::UnknownParam("x".into()),
            SpaceError::InvalidBounds {
                name: "lr".into(),
                reason: "low >= high".into(),
            },
            SpaceError::EmptyChoices("act".into()),
            SpaceError::TypeMismatch {
                name: "lr".into(),
                requested: "an integer",
            },
            SpaceError::ArityMismatch {
                expected: 3,
                found: 2,
            },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpaceError>();
    }
}

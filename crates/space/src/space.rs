use std::collections::HashMap;
use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::config::Config;
use crate::error::SpaceError;
use crate::param::{ParamSpec, Scale};

/// A named hyperparameter: a name plus its domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    name: String,
    spec: ParamSpec,
}

impl Param {
    /// The parameter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter's domain.
    pub fn spec(&self) -> &ParamSpec {
        &self.spec
    }
}

/// An ordered collection of named hyperparameters.
///
/// Construct with [`SearchSpace::builder`]. See the crate-level docs for an
/// example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchSpace {
    params: Vec<Param>,
    #[serde(skip)]
    by_name: HashMap<String, usize>,
}

impl PartialEq for SearchSpace {
    fn eq(&self, other: &Self) -> bool {
        self.params == other.params
    }
}

impl SearchSpace {
    /// Start building a search space.
    pub fn builder() -> SearchSpaceBuilder {
        SearchSpaceBuilder { params: Vec::new() }
    }

    /// Number of hyperparameters (the dimensionality of the space).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The parameters in declaration order.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Iterate over `(name, spec)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamSpec)> {
        self.params.iter().map(|p| (p.name.as_str(), &p.spec))
    }

    /// Position of the named parameter.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::UnknownParam`] when no parameter has that name.
    pub fn index_of(&self, name: &str) -> Result<usize, SpaceError> {
        if let Some(&i) = self.by_name.get(name) {
            return Ok(i);
        }
        // The name index is `#[serde(skip)]`ped, so a deserialized space
        // arrives without it; fall back to a linear scan rather than
        // reporting every parameter unknown.
        self.params
            .iter()
            .position(|p| p.name == name)
            .ok_or_else(|| SpaceError::UnknownParam(name.to_owned()))
    }

    /// The spec at a given position.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn spec_at(&self, idx: usize) -> &ParamSpec {
        &self.params[idx].spec
    }

    /// Draw a uniformly random configuration.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Config {
        self.params.iter().map(|p| p.spec.sample(rng)).collect()
    }

    /// The configuration at the center of every parameter's domain; useful as
    /// a deterministic placeholder in tests and examples.
    pub fn default_config(&self) -> Config {
        self.params.iter().map(|p| p.spec.from_unit(0.5)).collect()
    }

    /// Map a configuration into the unit hypercube `[0, 1]^d`, the
    /// representation the model-based samplers (TPE, GP-EI) operate on.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::ArityMismatch`] if the configuration does not
    /// have exactly one value per parameter.
    pub fn to_unit(&self, config: &Config) -> Result<Vec<f64>, SpaceError> {
        self.check_arity(config)?;
        Ok(self
            .params
            .iter()
            .zip(config.values())
            .map(|(p, v)| p.spec.to_unit(v))
            .collect())
    }

    /// Map a point in `[0, 1]^d` back to a configuration. Coordinates outside
    /// `[0, 1]` are clamped; missing trailing coordinates default to `0.5`.
    pub fn from_unit(&self, unit: &[f64]) -> Config {
        self.params
            .iter()
            .enumerate()
            .map(|(i, p)| p.spec.from_unit(unit.get(i).copied().unwrap_or(0.5)))
            .collect()
    }

    /// Perturb every value of a configuration the way PBT's explore step
    /// does; see [`ParamSpec::perturb`]. `frozen` names parameters that must
    /// not change (the paper freezes architecture-changing hyperparameters).
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::ArityMismatch`] if the configuration does not
    /// match this space.
    pub fn perturb<R: Rng + ?Sized>(
        &self,
        config: &Config,
        factor: f64,
        frozen: &[&str],
        rng: &mut R,
    ) -> Result<Config, SpaceError> {
        self.check_arity(config)?;
        Ok(self
            .params
            .iter()
            .zip(config.values())
            .map(|(p, v)| {
                if frozen.contains(&p.name.as_str()) {
                    v.clone()
                } else {
                    p.spec.perturb(v, factor, rng)
                }
            })
            .collect())
    }

    /// Render a configuration as `name=value` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::ArityMismatch`] if the configuration does not
    /// match this space.
    pub fn display(&self, config: &Config) -> Result<String, SpaceError> {
        self.check_arity(config)?;
        Ok(self
            .params
            .iter()
            .zip(config.values())
            .map(|(p, v)| format!("{}={}", p.name, p.spec.display_value(v)))
            .collect::<Vec<_>>()
            .join(" "))
    }

    fn check_arity(&self, config: &Config) -> Result<(), SpaceError> {
        if config.len() != self.params.len() {
            return Err(SpaceError::ArityMismatch {
                expected: self.params.len(),
                found: config.len(),
            });
        }
        Ok(())
    }

    fn rebuild_index(&mut self) {
        self.by_name = self
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), i))
            .collect();
    }
}

impl fmt::Display for SearchSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.params {
            match &p.spec {
                ParamSpec::Continuous { low, high, scale } => {
                    let scale = match scale {
                        Scale::Linear => "linear",
                        Scale::Log => "log",
                    };
                    writeln!(
                        f,
                        "{:<24} continuous {scale:<7} [{low:.6e}, {high:.6e}]",
                        p.name
                    )?
                }
                ParamSpec::Discrete { low, high } => {
                    writeln!(f, "{:<24} discrete           [{low}, {high}]", p.name)?
                }
                ParamSpec::Ordinal { values } => {
                    let vs: Vec<String> = values.iter().map(|v| format!("{v}")).collect();
                    writeln!(f, "{:<24} choice             {{{}}}", p.name, vs.join(", "))?
                }
                ParamSpec::Categorical { labels } => writeln!(
                    f,
                    "{:<24} categorical        {{{}}}",
                    p.name,
                    labels.join(", ")
                )?,
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`SearchSpace`]; see [`SearchSpace::builder`].
#[derive(Debug, Clone)]
pub struct SearchSpaceBuilder {
    params: Vec<Param>,
}

impl SearchSpaceBuilder {
    /// Add a continuous parameter on the given scale.
    pub fn continuous(mut self, name: &str, low: f64, high: f64, scale: Scale) -> Self {
        self.params.push(Param {
            name: name.to_owned(),
            spec: ParamSpec::Continuous { low, high, scale },
        });
        self
    }

    /// Add an integer-range parameter (inclusive bounds).
    pub fn discrete(mut self, name: &str, low: i64, high: i64) -> Self {
        self.params.push(Param {
            name: name.to_owned(),
            spec: ParamSpec::Discrete { low, high },
        });
        self
    }

    /// Add an ordered numeric choice parameter.
    pub fn ordinal(mut self, name: &str, values: &[f64]) -> Self {
        self.params.push(Param {
            name: name.to_owned(),
            spec: ParamSpec::Ordinal {
                values: values.to_vec(),
            },
        });
        self
    }

    /// Add an unordered categorical parameter.
    pub fn categorical(mut self, name: &str, labels: &[&str]) -> Self {
        self.params.push(Param {
            name: name.to_owned(),
            spec: ParamSpec::Categorical {
                labels: labels.iter().map(|s| (*s).to_owned()).collect(),
            },
        });
        self
    }

    /// Finish building, validating every parameter.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::DuplicateName`] for repeated names,
    /// [`SpaceError::InvalidBounds`] for empty or non-finite ranges (or
    /// non-positive bounds on log scale), and [`SpaceError::EmptyChoices`]
    /// for choice parameters with no options.
    pub fn build(self) -> Result<SearchSpace, SpaceError> {
        let mut seen = HashMap::new();
        for (i, p) in self.params.iter().enumerate() {
            if seen.insert(p.name.clone(), i).is_some() {
                return Err(SpaceError::DuplicateName(p.name.clone()));
            }
            match &p.spec {
                ParamSpec::Continuous { low, high, scale } => {
                    if !low.is_finite() || !high.is_finite() || low >= high {
                        return Err(SpaceError::InvalidBounds {
                            name: p.name.clone(),
                            reason: format!("range [{low}, {high}] is empty or non-finite"),
                        });
                    }
                    if *scale == Scale::Log && *low <= 0.0 {
                        return Err(SpaceError::InvalidBounds {
                            name: p.name.clone(),
                            reason: format!("log scale requires positive bounds, got low={low}"),
                        });
                    }
                }
                ParamSpec::Discrete { low, high } => {
                    if low > high {
                        return Err(SpaceError::InvalidBounds {
                            name: p.name.clone(),
                            reason: format!("range [{low}, {high}] is empty"),
                        });
                    }
                }
                ParamSpec::Ordinal { values } => {
                    if values.is_empty() {
                        return Err(SpaceError::EmptyChoices(p.name.clone()));
                    }
                }
                ParamSpec::Categorical { labels } => {
                    if labels.is_empty() {
                        return Err(SpaceError::EmptyChoices(p.name.clone()));
                    }
                }
            }
        }
        let mut space = SearchSpace {
            params: self.params,
            by_name: HashMap::new(),
        };
        space.rebuild_index();
        Ok(space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamValue;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .continuous("lr", 1e-4, 1.0, Scale::Log)
            .discrete("layers", 2, 4)
            .ordinal("batch", &[64.0, 128.0, 256.0])
            .categorical("act", &["relu", "tanh"])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_duplicate_names() {
        let err = SearchSpace::builder()
            .discrete("n", 0, 1)
            .discrete("n", 0, 2)
            .build()
            .unwrap_err();
        assert_eq!(err, SpaceError::DuplicateName("n".into()));
    }

    #[test]
    fn builder_validates_bounds() {
        assert!(matches!(
            SearchSpace::builder()
                .continuous("x", 1.0, 0.0, Scale::Linear)
                .build(),
            Err(SpaceError::InvalidBounds { .. })
        ));
        assert!(matches!(
            SearchSpace::builder()
                .continuous("x", -1.0, 1.0, Scale::Log)
                .build(),
            Err(SpaceError::InvalidBounds { .. })
        ));
        assert!(matches!(
            SearchSpace::builder().discrete("x", 5, 4).build(),
            Err(SpaceError::InvalidBounds { .. })
        ));
        assert!(matches!(
            SearchSpace::builder().ordinal("x", &[]).build(),
            Err(SpaceError::EmptyChoices(_))
        ));
    }

    #[test]
    fn sample_produces_valid_configs() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let c = s.sample(&mut rng);
            assert_eq!(c.len(), 4);
            let lr = c.float("lr", &s).unwrap();
            assert!((1e-4..=1.0).contains(&lr));
            let layers = c.int("layers", &s).unwrap();
            assert!((2..=4).contains(&layers));
            assert!(c.index("batch", &s).unwrap() < 3);
            assert!(c.index("act", &s).unwrap() < 2);
        }
    }

    #[test]
    fn unit_round_trip() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let c = s.sample(&mut rng);
            let u = s.to_unit(&c).unwrap();
            assert_eq!(u.len(), 4);
            assert!(u.iter().all(|&x| (0.0..=1.0).contains(&x)));
            let c2 = s.from_unit(&u);
            // Continuous coordinates round-trip approximately; finite ones
            // exactly.
            let lr1 = c.float("lr", &s).unwrap();
            let lr2 = c2.float("lr", &s).unwrap();
            assert!((lr1.ln() - lr2.ln()).abs() < 1e-9);
            assert_eq!(c.int("layers", &s), c2.int("layers", &s));
            assert_eq!(c.index("batch", &s), c2.index("batch", &s));
        }
    }

    #[test]
    fn arity_mismatch_detected() {
        let s = space();
        let c = Config::new(vec![ParamValue::Float(0.1)]);
        assert!(matches!(
            s.to_unit(&c),
            Err(SpaceError::ArityMismatch {
                expected: 4,
                found: 1
            })
        ));
    }

    #[test]
    fn perturb_respects_frozen_params() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(3);
        let c = s.sample(&mut rng);
        let layers_before = c.int("layers", &s).unwrap();
        for _ in 0..20 {
            let p = s.perturb(&c, 1.2, &["layers", "act"], &mut rng).unwrap();
            assert_eq!(p.int("layers", &s).unwrap(), layers_before);
            assert_eq!(p.index("act", &s).unwrap(), c.index("act", &s).unwrap());
        }
    }

    #[test]
    fn display_lists_all_params() {
        let s = space();
        let c = s.default_config();
        let text = s.display(&c).unwrap();
        for name in ["lr", "layers", "batch", "act"] {
            assert!(text.contains(name), "missing {name} in {text}");
        }
        let spec_text = s.to_string();
        assert!(spec_text.contains("continuous"));
        assert!(spec_text.contains("categorical"));
    }

    #[test]
    fn default_config_is_deterministic_center() {
        let s = space();
        let c1 = s.default_config();
        let c2 = s.default_config();
        assert_eq!(c1, c2);
        // Center of log scale [1e-4, 1] is 1e-2.
        assert!((c1.float("lr", &s).unwrap() - 1e-2).abs() < 1e-9);
    }
}

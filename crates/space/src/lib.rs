//! Hyperparameter search-space definitions for the `asha` tuning system.
//!
//! A [`SearchSpace`] is an ordered list of named, typed hyperparameters
//! ([`ParamSpec`]). Spaces know how to
//!
//! * sample random configurations ([`SearchSpace::sample`]),
//! * map configurations to and from the unit hypercube
//!   ([`SearchSpace::to_unit`] / [`SearchSpace::from_unit`]) — the
//!   representation used by the model-based baselines (TPE, GP-EI), and
//! * perturb configurations the way Population Based Training does
//!   ([`SearchSpace::perturb`]).
//!
//! The search spaces used by the ASHA paper's experiments (its Tables 1–3,
//! plus the cuda-convnet and SVM benchmarks) are provided in [`presets`].
//!
//! # Examples
//!
//! ```
//! use asha_space::{SearchSpace, Scale};
//! use rand::SeedableRng;
//!
//! let space = SearchSpace::builder()
//!     .continuous("learning_rate", 1e-5, 1e1, Scale::Log)
//!     .discrete("batch_size", 16, 256)
//!     .ordinal("filters", &[16.0, 32.0, 48.0, 64.0])
//!     .build()?;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let config = space.sample(&mut rng);
//! assert!(config.float("learning_rate", &space)? >= 1e-5);
//! # Ok::<(), asha_space::SpaceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod param;
pub mod presets;
mod space;

pub use config::{Config, ParamValue};
pub use error::SpaceError;
pub use param::{ParamSpec, Scale};
pub use space::{SearchSpace, SearchSpaceBuilder};

//! The search spaces used by the ASHA paper's experiments.
//!
//! * [`small_cnn_space`] — Table 1, the "small CNN architecture tuning task"
//!   used on CIFAR-10 (benchmark 2 of Sections 4.1–4.2) and SVHN
//!   (Appendix A.2/A.4).
//! * [`ptb_lstm_space`] — Table 2, the PTB LSTM task of the 500-worker
//!   comparison against Vizier (Section 4.3).
//! * [`dropconnect_lstm_space`] — Table 3, the 16-GPU near-state-of-the-art
//!   LSTM task (Section 4.3.1).
//! * [`cuda_convnet_space`] — benchmark 1 of Sections 4.1–4.2, the
//!   cuda-convnet CIFAR-10 model with the search space of Li et al. (2017).
//! * [`svm_space`] — the kernel-SVM task of the Fabolas comparison
//!   (Appendix A.2).
//!
//! Every function is deterministic and infallible: the bounds are literals
//! straight out of the paper, validated once in tests.

use crate::param::Scale;
use crate::space::SearchSpace;

/// Table 1: hyperparameters for the small CNN architecture tuning task.
///
/// Ten hyperparameters: batch size, number of convolutional layers, filter
/// count, three weight-initialization scales, three ℓ2 penalties, and the
/// initial learning rate.
pub fn small_cnn_space() -> SearchSpace {
    SearchSpace::builder()
        .ordinal("batch_size", &[64.0, 128.0, 256.0, 512.0])
        .ordinal("n_layers", &[2.0, 3.0, 4.0])
        .ordinal("n_filters", &[16.0, 32.0, 48.0, 64.0])
        .continuous("weight_init_std_1", 1e-4, 1e-1, Scale::Log)
        .continuous("weight_init_std_2", 1e-3, 1.0, Scale::Log)
        .continuous("weight_init_std_3", 1e-3, 1.0, Scale::Log)
        .continuous("l2_penalty_1", 1e-5, 1.0, Scale::Log)
        .continuous("l2_penalty_2", 1e-5, 1.0, Scale::Log)
        .continuous("l2_penalty_3", 1e-3, 1e2, Scale::Log)
        .continuous("learning_rate", 1e-5, 1e1, Scale::Log)
        .build()
        .expect("literal bounds are valid")
}

/// Table 2: hyperparameters for the PTB LSTM task (500-worker benchmark).
///
/// Per Appendix A.5 all parameters are tuned on a *linear* scale and sampled
/// uniformly over their ranges — including the learning rate, whose range is
/// `[10, 100]`.
pub fn ptb_lstm_space() -> SearchSpace {
    SearchSpace::builder()
        .continuous("learning_rate", 10.0, 100.0, Scale::Linear)
        .discrete("batch_size", 10, 80)
        .discrete("time_steps", 10, 80)
        .discrete("hidden_nodes", 200, 1500)
        .continuous("decay_rate", 0.01, 0.99, Scale::Linear)
        .discrete("decay_epochs", 1, 10)
        .continuous("clip_gradients", 1.0, 10.0, Scale::Linear)
        .continuous("dropout_probability", 0.1, 1.0, Scale::Linear)
        .continuous("weight_init_range", 0.001, 1.0, Scale::Log)
        .build()
        .expect("literal bounds are valid")
}

/// Table 3: hyperparameters for the 16-GPU DropConnect LSTM task, a search
/// space constructed around the configuration of Merity et al. (2018).
pub fn dropconnect_lstm_space() -> SearchSpace {
    SearchSpace::builder()
        .continuous("learning_rate", 10.0, 100.0, Scale::Log)
        .continuous("dropout_rnn", 0.15, 0.35, Scale::Linear)
        .continuous("dropout_input", 0.3, 0.5, Scale::Linear)
        .continuous("dropout_embedding", 0.05, 0.2, Scale::Linear)
        .continuous("dropout_output", 0.3, 0.5, Scale::Linear)
        .continuous("dropout_dropconnect", 0.4, 0.6, Scale::Linear)
        .continuous("weight_decay", 0.5e-6, 2e-6, Scale::Log)
        .ordinal("batch_size", &[15.0, 20.0, 25.0])
        .ordinal("time_steps", &[65.0, 70.0, 75.0])
        .build()
        .expect("literal bounds are valid")
}

/// Benchmark 1 of Sections 4.1–4.2: the cuda-convnet CIFAR-10 model with the
/// search space of Li et al. (2017) — initial learning rate, the ℓ2 weight
/// costs of the three convolutional blocks and the fully-connected layer, and
/// the scale/power of local response normalization.
pub fn cuda_convnet_space() -> SearchSpace {
    SearchSpace::builder()
        .continuous("learning_rate", 5e-5, 5.0, Scale::Log)
        .continuous("conv1_l2", 5e-5, 5.0, Scale::Log)
        .continuous("conv2_l2", 5e-5, 5.0, Scale::Log)
        .continuous("conv3_l2", 5e-5, 5.0, Scale::Log)
        .continuous("fc_l2", 5e-3, 500.0, Scale::Log)
        .continuous("lrn_scale", 5e-6, 5.0, Scale::Log)
        .continuous("lrn_power", 0.01, 3.0, Scale::Linear)
        .build()
        .expect("literal bounds are valid")
}

/// The kernel-SVM task of the Fabolas comparison (Appendix A.2): RBF-kernel
/// SVM with regularization `C` and kernel width `gamma`, both log-scale, as
/// in Klein et al. (2017).
pub fn svm_space() -> SearchSpace {
    SearchSpace::builder()
        .continuous("c", 2f64.powi(-10), 2f64.powi(10), Scale::Log)
        .continuous("gamma", 2f64.powi(-10), 2f64.powi(10), Scale::Log)
        .build()
        .expect("literal bounds are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_presets_build_and_sample() {
        let mut rng = StdRng::seed_from_u64(0);
        for (name, space) in [
            ("small_cnn", small_cnn_space()),
            ("ptb_lstm", ptb_lstm_space()),
            ("dropconnect_lstm", dropconnect_lstm_space()),
            ("cuda_convnet", cuda_convnet_space()),
            ("svm", svm_space()),
        ] {
            assert!(!space.is_empty(), "{name} space is empty");
            for _ in 0..20 {
                let c = space.sample(&mut rng);
                let u = space.to_unit(&c).expect("sampled config matches space");
                assert!(u.iter().all(|&x| (0.0..=1.0).contains(&x)), "{name}");
            }
        }
    }

    #[test]
    fn table1_matches_paper_dimensions() {
        let s = small_cnn_space();
        assert_eq!(s.len(), 10);
        assert!(s.index_of("learning_rate").is_ok());
        assert!(s.index_of("l2_penalty_3").is_ok());
    }

    #[test]
    fn table2_matches_paper_dimensions() {
        let s = ptb_lstm_space();
        assert_eq!(s.len(), 9);
        // The paper's Table 2 gives hidden nodes in [200, 1500].
        let idx = s.index_of("hidden_nodes").unwrap();
        match s.spec_at(idx) {
            crate::ParamSpec::Discrete { low, high } => {
                assert_eq!((*low, *high), (200, 1500));
            }
            other => panic!("expected discrete spec, got {other:?}"),
        }
    }

    #[test]
    fn table3_matches_paper_dimensions() {
        let s = dropconnect_lstm_space();
        assert_eq!(s.len(), 9);
        assert!(s.index_of("dropout_dropconnect").is_ok());
    }

    #[test]
    fn cuda_convnet_learning_rate_range() {
        let s = cuda_convnet_space();
        assert_eq!(s.len(), 7);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let c = s.sample(&mut rng);
            let lr = c.float("learning_rate", &s).unwrap();
            assert!((5e-5..=5.0).contains(&lr));
        }
    }
}

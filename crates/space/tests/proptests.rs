//! Property-based tests of the search-space DSL: unit-cube round trips,
//! sampling bounds, and perturbation closure over randomly generated spaces.

use asha_space::{ParamSpec, ParamValue, Scale, SearchSpace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy for one random-but-valid parameter spec.
fn spec_strategy() -> impl Strategy<Value = ParamSpec> {
    prop_oneof![
        // Continuous linear: ordered finite bounds.
        (-1e3f64..1e3, 1e-6f64..1e3).prop_map(|(low, width)| ParamSpec::Continuous {
            low,
            high: low + width,
            scale: Scale::Linear,
        }),
        // Continuous log: positive ordered bounds.
        (1e-6f64..1e3, 1.0001f64..1e4).prop_map(|(low, ratio)| ParamSpec::Continuous {
            low,
            high: low * ratio,
            scale: Scale::Log,
        }),
        // Discrete range.
        (-1000i64..1000, 0i64..500).prop_map(|(low, width)| ParamSpec::Discrete {
            low,
            high: low + width,
        }),
        // Ordinal choices.
        prop::collection::vec(-1e3f64..1e3, 1..8).prop_map(|values| ParamSpec::Ordinal { values }),
        // Categorical labels.
        (1usize..6).prop_map(|n| ParamSpec::Categorical {
            labels: (0..n).map(|i| format!("c{i}")).collect(),
        }),
    ]
}

fn space_strategy() -> impl Strategy<Value = SearchSpace> {
    prop::collection::vec(spec_strategy(), 1..8).prop_map(|specs| {
        let mut b = SearchSpace::builder();
        for (i, spec) in specs.into_iter().enumerate() {
            let name = format!("p{i}");
            b = match spec {
                ParamSpec::Continuous { low, high, scale } => b.continuous(&name, low, high, scale),
                ParamSpec::Discrete { low, high } => b.discrete(&name, low, high),
                ParamSpec::Ordinal { values } => b.ordinal(&name, &values),
                ParamSpec::Categorical { labels } => {
                    let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
                    b.categorical(&name, &refs)
                }
            };
        }
        b.build().expect("generated specs are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sampled_configs_embed_into_the_unit_cube(space in space_strategy(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = space.sample(&mut rng);
        let unit = space.to_unit(&config).expect("own config embeds");
        prop_assert_eq!(unit.len(), space.len());
        prop_assert!(unit.iter().all(|&u| (0.0..=1.0).contains(&u)));
    }

    #[test]
    fn finite_values_round_trip_exactly(space in space_strategy(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = space.sample(&mut rng);
        let unit = space.to_unit(&config).expect("own config embeds");
        let back = space.from_unit(&unit);
        for (i, (orig, rt)) in config.values().iter().zip(back.values()).enumerate() {
            match (orig, rt) {
                (ParamValue::Float(a), ParamValue::Float(b)) => {
                    // Continuous coordinates round-trip to tight relative
                    // precision (log scale multiplies rounding error).
                    prop_assert!(
                        (a - b).abs() <= 1e-6 * (1.0 + a.abs() + b.abs()),
                        "param {i}: {a} vs {b}"
                    );
                }
                (a, b) => prop_assert_eq!(a, b, "param {}", i),
            }
        }
    }

    #[test]
    fn perturbation_stays_within_the_space(space in space_strategy(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = space.sample(&mut rng);
        for _ in 0..5 {
            let perturbed = space.perturb(&config, 1.2, &[], &mut rng).expect("valid arity");
            let unit = space.to_unit(&perturbed).expect("perturbed stays valid");
            prop_assert!(unit.iter().all(|&u| (0.0..=1.0).contains(&u)));
        }
    }

    #[test]
    fn display_mentions_every_parameter(space in space_strategy(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = space.sample(&mut rng);
        let text = space.display(&config).expect("valid arity");
        for (name, _) in space.iter() {
            prop_assert!(text.contains(name));
        }
    }

    #[test]
    fn default_config_is_valid_and_central(space in space_strategy()) {
        let config = space.default_config();
        let unit = space.to_unit(&config).expect("default embeds");
        // Central-ish: no coordinate at the extreme ends for continuous
        // params (finite domains map to bin centers anyway).
        prop_assert!(unit.iter().all(|&u| u > 0.0 && u < 1.0));
    }
}

//! Persistence-facing behaviour of the search-space types.
//!
//! The workspace deliberately ships no serialization format crate, so a full
//! wire round-trip lives downstream; what is verified here is (a) the serde
//! traits exist on every persisted type, and (b) the part serde *skips* — the
//! space's name index — is not load-bearing: a space whose index is absent
//! (exactly what deserialization produces) still resolves every lookup via
//! the scan fallback in `SearchSpace::index_of`.

use asha_space::{Config, ParamValue, Scale, SearchSpace};
use rand::SeedableRng;

fn space() -> SearchSpace {
    SearchSpace::builder()
        .continuous("lr", 1e-4, 1.0, Scale::Log)
        .discrete("layers", 2, 4)
        .ordinal("batch", &[64.0, 128.0])
        .categorical("act", &["relu", "tanh"])
        .build()
        .expect("valid space")
}

#[test]
fn persisted_types_implement_serde_traits() {
    fn assert_traits<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
    assert_traits::<asha_space::SearchSpace>();
    assert_traits::<asha_space::Config>();
    assert_traits::<asha_space::ParamSpec>();
    assert_traits::<asha_space::ParamValue>();
}

#[test]
fn lookups_survive_without_the_skipped_index() {
    // `PartialEq` compares parameters only, so two spaces that are "equal"
    // may differ in whether the index exists — exactly the deserialization
    // situation. All accessors must work either way.
    let s = space();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let config = s.sample(&mut rng);
    for name in ["lr", "layers", "batch", "act"] {
        assert!(s.index_of(name).is_ok(), "lookup of {name} failed");
    }
    assert!(config.float("lr", &s).is_ok());
    assert!(config.int("layers", &s).is_ok());
    assert!(config.index("batch", &s).is_ok());
    assert!(config.index("act", &s).is_ok());
    assert!(s.index_of("nope").is_err());
}

#[test]
fn config_values_round_trip_through_reconstruction() {
    let s = space();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let a = s.sample(&mut rng);
    // Reconstructing from raw values (what a deserializer does) preserves
    // equality and semantics.
    let values: Vec<ParamValue> = a.values().to_vec();
    let rebuilt = Config::new(values);
    assert_eq!(a, rebuilt);
    assert_eq!(
        s.to_unit(&a).expect("valid"),
        s.to_unit(&rebuilt).expect("valid")
    );
}

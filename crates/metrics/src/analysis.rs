//! Diagnostics for early-stopping suitability.
//!
//! Successive halving assumes that losses at low resource are informative
//! of losses at high resource — "the appropriate choice of early stopping
//! rate is problem dependent" (Section 2). These tools quantify that
//! assumption from a recorded [`crate::RunTrace`]: if successive rungs'
//! losses are strongly rank-correlated, aggressive early stopping (`s = 0`)
//! is safe; if not, a larger `s` (or Hyperband's bracket hedging) is wiser.

use std::collections::HashMap;

use crate::trace::RunTrace;

/// Rank correlation between the losses trials obtained at rung `k` and at
/// rung `k + 1`, for every adjacent rung pair with at least `min_pairs`
/// trials observed at both.
///
/// Returns `(rung, pairs, spearman)` tuples, lowest rung first.
///
/// # Examples
///
/// ```
/// use asha_metrics::{analysis, RunTrace, TraceEvent};
///
/// let mut t = RunTrace::new("x");
/// let pairs = [(0, 0.5, 0.4), (1, 0.3, 0.2), (2, 0.7, 0.6), (3, 0.4, 0.3)];
/// for &(trial, r0, _) in &pairs {
///     t.push(TraceEvent { time: trial as f64, trial, bracket: 0, rung: 0,
///                         resource: 1.0, val_loss: r0, test_loss: r0 });
/// }
/// for &(trial, _, r1) in &pairs {
///     t.push(TraceEvent { time: 10.0 + trial as f64, trial, bracket: 0, rung: 1,
///                         resource: 3.0, val_loss: r1, test_loss: r1 });
/// }
/// let rho = analysis::rung_rank_correlation(&t, 3);
/// assert_eq!(rho.len(), 1);
/// assert!((rho[0].2 - 1.0).abs() < 1e-12); // perfectly preserved order
/// ```
pub fn rung_rank_correlation(trace: &RunTrace, min_pairs: usize) -> Vec<(usize, usize, f64)> {
    // First loss per (trial, rung).
    let mut loss_at: HashMap<(u64, usize), f64> = HashMap::new();
    let mut max_rung = 0;
    for e in trace.events() {
        loss_at.entry((e.trial, e.rung)).or_insert(e.val_loss);
        max_rung = max_rung.max(e.rung);
    }
    let mut out = Vec::new();
    for rung in 0..max_rung {
        let mut lows = Vec::new();
        let mut highs = Vec::new();
        for (&(trial, r), &loss) in &loss_at {
            if r == rung {
                if let Some(&next) = loss_at.get(&(trial, rung + 1)) {
                    lows.push(loss);
                    highs.push(next);
                }
            }
        }
        if lows.len() >= min_pairs {
            out.push((rung, lows.len(), spearman(&lows, &highs)));
        }
    }
    out.sort_by_key(|&(rung, _, _)| rung);
    out
}

/// Fraction of rung-`k` survivors that would *still* be selected using
/// rung-`k+1` information: the overlap between the top `1/eta` by rung-`k`
/// loss and the top `1/eta` by rung-`k+1` loss, among trials observed at
/// both. An empirical view of the paper's mispromotion discussion.
pub fn promotion_agreement(trace: &RunTrace, rung: usize, eta: f64) -> Option<f64> {
    let mut loss_at: HashMap<(u64, usize), f64> = HashMap::new();
    for e in trace.events() {
        loss_at.entry((e.trial, e.rung)).or_insert(e.val_loss);
    }
    let mut pairs: Vec<(f64, f64)> = loss_at
        .iter()
        .filter(|&(&(_, r), _)| r == rung)
        .filter_map(|(&(trial, _), &low)| loss_at.get(&(trial, rung + 1)).map(|&high| (low, high)))
        .collect();
    let k = (pairs.len() as f64 / eta).floor() as usize;
    if k == 0 {
        return None;
    }
    let top_by = |pairs: &mut Vec<(f64, f64)>, by_second: bool, k: usize| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..pairs.len()).collect();
        idx.sort_by(|&a, &b| {
            let (xa, xb) = if by_second {
                (pairs[a].1, pairs[b].1)
            } else {
                (pairs[a].0, pairs[b].0)
            };
            xa.partial_cmp(&xb).unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(k);
        idx
    };
    let by_low = top_by(&mut pairs, false, k);
    let by_high = top_by(&mut pairs, true, k);
    let overlap = by_low.iter().filter(|i| by_high.contains(i)).count();
    Some(overlap as f64 / k as f64)
}

// Self-contained Spearman (metrics deliberately has no asha-math
// dependency; see that crate for the documented reference versions).
fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &o in &idx[i..=j] {
            out[o] = avg;
        }
        i = j + 1;
    }
    out
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if xs.len() != ys.len() || xs.len() < 2 {
        return f64::NAN;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    if sxx == 0.0 || syy == 0.0 {
        f64::NAN
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn ev(trial: u64, rung: usize, val: f64) -> TraceEvent {
        TraceEvent {
            time: trial as f64 + rung as f64 * 100.0,
            trial,
            bracket: 0,
            rung,
            resource: 3f64.powi(rung as i32),
            val_loss: val,
            test_loss: val,
        }
    }

    fn two_rung_trace(pairs: &[(f64, f64)]) -> RunTrace {
        let mut t = RunTrace::new("x");
        for (i, &(low, _)) in pairs.iter().enumerate() {
            t.push(ev(i as u64, 0, low));
        }
        for (i, &(_, high)) in pairs.iter().enumerate() {
            t.push(ev(i as u64, 1, high));
        }
        t
    }

    #[test]
    fn perfect_order_preservation_gives_rho_one() {
        let t = two_rung_trace(&[(0.1, 0.05), (0.2, 0.15), (0.3, 0.25), (0.4, 0.35)]);
        let rho = rung_rank_correlation(&t, 2);
        assert_eq!(rho.len(), 1);
        assert_eq!(rho[0].0, 0);
        assert_eq!(rho[0].1, 4);
        assert!((rho[0].2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_order_gives_rho_minus_one() {
        let t = two_rung_trace(&[(0.1, 0.9), (0.2, 0.8), (0.3, 0.7), (0.4, 0.6)]);
        let rho = rung_rank_correlation(&t, 2);
        assert!((rho[0].2 + 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_pairs_filters_thin_rungs() {
        let t = two_rung_trace(&[(0.1, 0.05), (0.2, 0.15)]);
        assert!(rung_rank_correlation(&t, 3).is_empty());
    }

    #[test]
    fn promotion_agreement_full_and_zero() {
        // 6 pairs, eta = 3 -> k = 2. Ranks preserved: agreement 1.
        let t = two_rung_trace(&[
            (0.1, 0.1),
            (0.2, 0.2),
            (0.3, 0.3),
            (0.4, 0.4),
            (0.5, 0.5),
            (0.6, 0.6),
        ]);
        assert_eq!(promotion_agreement(&t, 0, 3.0), Some(1.0));
        // Ranks fully inverted: the top 2 by rung0 are the bottom 2 by rung1.
        let t = two_rung_trace(&[
            (0.1, 0.6),
            (0.2, 0.5),
            (0.3, 0.4),
            (0.4, 0.3),
            (0.5, 0.2),
            (0.6, 0.1),
        ]);
        assert_eq!(promotion_agreement(&t, 0, 3.0), Some(0.0));
    }

    #[test]
    fn promotion_agreement_needs_candidates() {
        let t = two_rung_trace(&[(0.1, 0.1), (0.2, 0.2)]);
        assert_eq!(promotion_agreement(&t, 0, 3.0), None);
    }
}

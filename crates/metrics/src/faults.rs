//! Fault accounting shared by the simulator and the real executor.
//!
//! Section 4.4 of the paper evaluates ASHA under exactly the failures real
//! clusters produce — stragglers and dropped jobs — and both execution
//! backends in this workspace (`asha-sim`'s virtual cluster and `asha-exec`'s
//! thread pool) model them. [`FaultStats`] is the common ledger, so a
//! simulated run and a real run report fault behaviour in identical units.

/// Counts of every fault handled during one tuning run.
///
/// The unified fault semantics (see DESIGN.md, "Fault model"):
///
/// * **drop** — the job's result was lost (simulated network drop, or a real
///   result discarded after its timeout); the attempt's checkpoint is lost
///   and any retry resumes from the last *reported* checkpoint.
/// * **retry** — a dropped or timed-out job was re-issued (with exponential
///   backoff in the real executor).
/// * **timeout** — an attempt exceeded the per-job wall-clock budget.
/// * **panic** — the objective panicked; the worker caught it and survived.
/// * **poisoned** — a trial exhausted its retry budget or produced a
///   non-finite loss, and was reported to the scheduler as
///   `f64::INFINITY` (the contract `Scheduler::observe` documents).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Job attempts whose result was lost (dropped or discarded late).
    pub jobs_dropped: usize,
    /// Job attempts re-issued after a drop or timeout.
    pub jobs_retried: usize,
    /// Job attempts that exceeded the per-job timeout.
    pub jobs_timed_out: usize,
    /// Job attempts that panicked inside the objective.
    pub jobs_panicked: usize,
    /// Jobs reported to the scheduler as `f64::INFINITY` after their fault
    /// budget was exhausted or their loss came back non-finite.
    pub jobs_poisoned: usize,
}

impl FaultStats {
    /// Stats with every counter at zero.
    pub fn none() -> Self {
        FaultStats::default()
    }

    /// Total number of fault events of any kind.
    pub fn total(&self) -> usize {
        self.jobs_dropped
            + self.jobs_retried
            + self.jobs_timed_out
            + self.jobs_panicked
            + self.jobs_poisoned
    }

    /// Whether no fault of any kind occurred.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }

    /// Element-wise sum, for aggregating over repeated runs.
    pub fn merge(&self, other: &FaultStats) -> FaultStats {
        FaultStats {
            jobs_dropped: self.jobs_dropped + other.jobs_dropped,
            jobs_retried: self.jobs_retried + other.jobs_retried,
            jobs_timed_out: self.jobs_timed_out + other.jobs_timed_out,
            jobs_panicked: self.jobs_panicked + other.jobs_panicked,
            jobs_poisoned: self.jobs_poisoned + other.jobs_poisoned,
        }
    }
}

impl std::fmt::Display for FaultStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dropped={} retried={} timed_out={} panicked={} poisoned={}",
            self.jobs_dropped,
            self.jobs_retried,
            self.jobs_timed_out,
            self.jobs_panicked,
            self.jobs_poisoned
        )
    }
}

#[cfg(test)]
mod tests {
    use super::FaultStats;

    #[test]
    fn clean_stats_total_zero() {
        let s = FaultStats::none();
        assert!(s.is_clean());
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn merge_adds_elementwise() {
        let a = FaultStats {
            jobs_dropped: 1,
            jobs_retried: 2,
            jobs_timed_out: 3,
            jobs_panicked: 4,
            jobs_poisoned: 5,
        };
        let b = FaultStats {
            jobs_dropped: 10,
            ..FaultStats::none()
        };
        let m = a.merge(&b);
        assert_eq!(m.jobs_dropped, 11);
        assert_eq!(m.total(), a.total() + b.total());
        assert!(!m.is_clean());
    }

    #[test]
    fn display_names_every_counter() {
        let text = FaultStats::none().to_string();
        for field in ["dropped", "retried", "timed_out", "panicked", "poisoned"] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
    }
}

use serde::{Deserialize, Serialize};

/// A right-continuous step function of time: the value at `t` is the value
/// of the last point at or before `t`, or `None` before the first point.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StepCurve {
    points: Vec<(f64, f64)>,
}

impl StepCurve {
    /// Build from `(time, value)` points.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the times are not non-decreasing.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        debug_assert!(
            points.windows(2).all(|w| w[0].0 <= w[1].0),
            "step curve points must be time-ordered"
        );
        StepCurve { points }
    }

    /// The underlying `(time, value)` points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of change points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the curve has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Value at time `t` (the last change at or before `t`).
    pub fn eval(&self, t: f64) -> Option<f64> {
        let idx = self.points.partition_point(|&(time, _)| time <= t);
        if idx == 0 {
            None
        } else {
            Some(self.points[idx - 1].1)
        }
    }

    /// Value at `t`, substituting `default` before the first change point.
    pub fn eval_or(&self, t: f64, default: f64) -> f64 {
        self.eval(t).unwrap_or(default)
    }

    /// Final value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// First time at which the curve is at or below `threshold` — "time to
    /// reach test error X", the headline comparisons of Sections 4.2–4.3.
    pub fn time_to_reach(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(_, v)| v <= threshold)
            .map(|&(t, _)| t)
    }
}

/// Mean/quantile/extreme envelopes of several step curves on a shared grid:
/// the aggregated bands plotted in Figures 3–6 and 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateCurve {
    /// The shared time grid.
    pub grid: Vec<f64>,
    /// Mean across curves at each grid time.
    pub mean: Vec<f64>,
    /// Lower quartile (25%).
    pub q25: Vec<f64>,
    /// Upper quartile (75%).
    pub q75: Vec<f64>,
    /// Minimum across curves.
    pub min: Vec<f64>,
    /// Maximum across curves.
    pub max: Vec<f64>,
}

impl AggregateCurve {
    /// Mean value at the final grid point.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty.
    pub fn final_mean(&self) -> f64 {
        *self.mean.last().expect("aggregate grid must be non-empty")
    }

    /// First grid time at which the mean is at or below `threshold`.
    pub fn time_to_reach(&self, threshold: f64) -> Option<f64> {
        self.grid
            .iter()
            .zip(&self.mean)
            .find(|&(_, &m)| m <= threshold)
            .map(|(&t, _)| t)
    }
}

/// Aggregate step curves on `grid`. Curves that have no value yet at a grid
/// time contribute `default` (e.g. the untrained loss), mirroring how the
/// paper plots "no result yet" at the top of the axis.
///
/// # Panics
///
/// Panics if `curves` is empty.
pub fn aggregate(curves: &[StepCurve], grid: &[f64], default: f64) -> AggregateCurve {
    assert!(!curves.is_empty(), "cannot aggregate zero curves");
    let mut mean = Vec::with_capacity(grid.len());
    let mut q25 = Vec::with_capacity(grid.len());
    let mut q75 = Vec::with_capacity(grid.len());
    let mut min = Vec::with_capacity(grid.len());
    let mut max = Vec::with_capacity(grid.len());
    for &t in grid {
        let vals: Vec<f64> = curves.iter().map(|c| c.eval_or(t, default)).collect();
        mean.push(asha_stats_mean(&vals));
        q25.push(asha_stats_quantile(&vals, 0.25));
        q75.push(asha_stats_quantile(&vals, 0.75));
        min.push(vals.iter().copied().fold(f64::INFINITY, f64::min));
        max.push(vals.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }
    AggregateCurve {
        grid: grid.to_vec(),
        mean,
        q25,
        q75,
        min,
        max,
    }
}

/// Build a uniform time grid of `n` points over `[0, end]`.
///
/// # Panics
///
/// Panics if `n < 2` or `end <= 0`.
pub fn uniform_grid(end: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "grid needs at least two points");
    assert!(end > 0.0, "grid end must be positive");
    (0..n).map(|i| end * i as f64 / (n - 1) as f64).collect()
}

// Tiny local stats (avoid a circular dependency on asha-math, which does not
// depend on serde).
fn asha_stats_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn asha_stats_quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] * (1.0 - (pos - lo as f64)) + sorted[hi] * (pos - lo as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_curve_eval() {
        let c = StepCurve::new(vec![(1.0, 10.0), (3.0, 5.0)]);
        assert_eq!(c.eval(0.5), None);
        assert_eq!(c.eval(1.0), Some(10.0));
        assert_eq!(c.eval(2.9), Some(10.0));
        assert_eq!(c.eval(3.0), Some(5.0));
        assert_eq!(c.eval(100.0), Some(5.0));
        assert_eq!(c.eval_or(0.0, 42.0), 42.0);
        assert_eq!(c.last_value(), Some(5.0));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn time_to_reach_threshold() {
        let c = StepCurve::new(vec![(1.0, 0.5), (2.0, 0.3), (3.0, 0.2)]);
        assert_eq!(c.time_to_reach(0.35), Some(2.0));
        assert_eq!(c.time_to_reach(0.1), None);
        assert_eq!(c.time_to_reach(0.5), Some(1.0));
    }

    #[test]
    fn aggregate_mean_and_envelopes() {
        let a = StepCurve::new(vec![(0.0, 1.0), (10.0, 0.2)]);
        let b = StepCurve::new(vec![(0.0, 0.8), (5.0, 0.4)]);
        let agg = aggregate(&[a, b], &[0.0, 5.0, 10.0], 1.0);
        assert_eq!(agg.mean[0], 0.9);
        assert_eq!(agg.mean[1], (1.0 + 0.4) / 2.0);
        assert_eq!(agg.mean[2], (0.2 + 0.4) / 2.0);
        assert_eq!(agg.min[2], 0.2);
        assert_eq!(agg.max[2], 0.4);
        assert!((agg.final_mean() - 0.3).abs() < 1e-12);
        assert_eq!(agg.time_to_reach(0.7), Some(5.0));
    }

    #[test]
    fn aggregate_uses_default_before_first_point() {
        let a = StepCurve::new(vec![(5.0, 0.1)]);
        let agg = aggregate(&[a], &[0.0, 5.0], 0.9);
        assert_eq!(agg.mean[0], 0.9);
        assert_eq!(agg.mean[1], 0.1);
    }

    #[test]
    fn uniform_grid_spans_range() {
        let g = uniform_grid(10.0, 5);
        assert_eq!(g, vec![0.0, 2.5, 5.0, 7.5, 10.0]);
    }

    #[test]
    #[should_panic(expected = "zero curves")]
    fn aggregate_empty_panics() {
        let _ = aggregate(&[], &[0.0], 1.0);
    }
}

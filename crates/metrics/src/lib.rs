//! Run traces, incumbent-over-time curves, multi-trial aggregation, and CSV
//! export for `asha` experiments.
//!
//! Every figure in the paper is a plot of "best test error / perplexity
//! found so far" against wall-clock time, aggregated over repeated trials
//! (mean with quartile or min/max envelopes). This crate provides exactly
//! those pieces:
//!
//! * [`RunTrace`] — the sequence of job completions of one tuning run,
//!   with helpers for the quantities the paper reports (incumbent curves,
//!   configurations trained to `R`, time to the first full-budget
//!   completion).
//! * [`StepCurve`] — a right-continuous step function of time.
//! * [`aggregate`] — mean/quantile/min/max envelopes of several curves on a
//!   shared time grid (the shaded bands of Figures 3–6 and 9).
//! * [`write_csv`] — plain CSV export used by the benchmark harness.
//! * [`write_json`] / [`JsonValue`] — hand-rolled JSON export for small
//!   structured reports (the perf-baseline trajectory `BENCH_sim.json`),
//!   with [`JsonValue::parse`] as the matching reader so telemetry event
//!   logs and reports can be replayed without a serde dependency.
//!
//! # Examples
//!
//! ```
//! use asha_metrics::{RunTrace, TraceEvent};
//!
//! let mut trace = RunTrace::new("ASHA");
//! trace.push(TraceEvent { time: 1.0, trial: 0, bracket: 0, rung: 0,
//!                         resource: 1.0, val_loss: 0.5, test_loss: 0.55 });
//! trace.push(TraceEvent { time: 2.0, trial: 1, bracket: 0, rung: 0,
//!                         resource: 1.0, val_loss: 0.4, test_loss: 0.42 });
//! let curve = trace.incumbent_curve();
//! assert_eq!(curve.eval(1.5), Some(0.55));
//! assert_eq!(curve.eval(2.5), Some(0.42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod curve;
mod export;
mod faults;
mod trace;

pub use curve::{aggregate, uniform_grid, AggregateCurve, StepCurve};
pub use export::{write_csv, write_json, CsvError, JsonParseError, JsonValue};
pub use faults::FaultStats;
pub use trace::{RunTrace, TraceEvent};

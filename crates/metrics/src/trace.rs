use serde::{Deserialize, Serialize};

use crate::curve::StepCurve;

/// One completed job in a tuning run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Completion time (simulated or wall-clock, in the run's time unit).
    pub time: f64,
    /// Trial identifier (raw `u64` of `asha_core::TrialId`).
    pub trial: u64,
    /// Bracket that issued the job.
    pub bracket: usize,
    /// Rung the job trained for.
    pub rung: usize,
    /// Cumulative resource the trial reached.
    pub resource: f64,
    /// Validation loss observed by the scheduler.
    pub val_loss: f64,
    /// Test loss of this trial at this point (never shown to schedulers).
    pub test_loss: f64,
}

/// The full record of one tuning run: every job completion in time order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    searcher: String,
    events: Vec<TraceEvent>,
}

impl RunTrace {
    /// Create an empty trace for the named searcher.
    pub fn new(searcher: impl Into<String>) -> Self {
        RunTrace {
            searcher: searcher.into(),
            events: Vec::new(),
        }
    }

    /// The searcher name this trace belongs to.
    pub fn searcher(&self) -> &str {
        &self.searcher
    }

    /// Append a completion event.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if events are pushed out of time order.
    pub fn push(&mut self, event: TraceEvent) {
        debug_assert!(
            self.events.last().is_none_or(|e| e.time <= event.time),
            "events must be pushed in time order"
        );
        self.events.push(event);
    }

    /// All events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no job has completed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Incumbent test loss over time, updating at *every* observation: the
    /// accounting ASHA uses ("Hyperband (by rung)" in Appendix A.2 uses the
    /// same intermediate-loss idea). The incumbent is the trial with the
    /// best validation loss so far; the curve reports that trial's test
    /// loss — mirroring the paper's offline-validation evaluation scheme.
    pub fn incumbent_curve(&self) -> StepCurve {
        let mut points = Vec::new();
        let mut best_val = f64::INFINITY;
        for e in &self.events {
            if e.val_loss < best_val {
                best_val = e.val_loss;
                points.push((e.time, e.test_loss));
            }
        }
        StepCurve::new(points)
    }

    /// Incumbent test loss revealed only at bracket boundaries ("Hyperband
    /// (by bracket)" in Appendix A.2): the best configuration so far is
    /// recorded, but the curve only updates when the running bracket index
    /// changes (or at the final event).
    pub fn incumbent_curve_by_bracket(&self) -> StepCurve {
        let mut points = Vec::new();
        let mut best_val = f64::INFINITY;
        let mut best_test = f64::INFINITY;
        let mut current_bracket: Option<usize> = None;
        for e in &self.events {
            if current_bracket.is_some() && current_bracket != Some(e.bracket) {
                // Bracket boundary: reveal what we had.
                if best_val.is_finite() {
                    points.push((e.time, best_test));
                }
            }
            current_bracket = Some(e.bracket);
            if e.val_loss < best_val {
                best_val = e.val_loss;
                best_test = e.test_loss;
            }
        }
        if let (Some(last), true) = (self.events.last(), best_val.is_finite()) {
            points.push((last.time, best_test));
        }
        StepCurve::new(points)
    }

    /// Incumbent test loss considering only observations at or above
    /// `min_resource` — "only considering the final SHA outputs" (Section
    /// 3.3 contrasts this with ASHA's intermediate-loss accounting, which
    /// [`RunTrace::incumbent_curve`] implements).
    pub fn incumbent_curve_final_only(&self, min_resource: f64) -> StepCurve {
        let mut points = Vec::new();
        let mut best_val = f64::INFINITY;
        for e in &self.events {
            if e.resource >= min_resource && e.val_loss < best_val {
                best_val = e.val_loss;
                points.push((e.time, e.test_loss));
            }
        }
        StepCurve::new(points)
    }

    /// Write all events to a CSV file (one row per completion).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CsvError`] on I/O failure.
    pub fn write_events_csv(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), crate::CsvError> {
        let rows: Vec<Vec<f64>> = self
            .events
            .iter()
            .map(|e| {
                vec![
                    e.time,
                    e.trial as f64,
                    e.bracket as f64,
                    e.rung as f64,
                    e.resource,
                    e.val_loss,
                    e.test_loss,
                ]
            })
            .collect();
        crate::write_csv(
            path,
            &[
                "time",
                "trial",
                "bracket",
                "rung",
                "resource",
                "val_loss",
                "test_loss",
            ],
            &rows,
        )
    }

    /// Number of distinct trials trained to at least `resource` by `deadline`
    /// (Figure 7's y-axis: "# configurations trained for R").
    pub fn configs_trained_to(&self, resource: f64, deadline: f64) -> usize {
        let mut seen = std::collections::HashSet::new();
        for e in &self.events {
            if e.time <= deadline && e.resource >= resource {
                seen.insert(e.trial);
            }
        }
        seen.len()
    }

    /// Time of the first completion with at least `resource` (Figure 8's
    /// y-axis: "time until first configuration trained for R"), if any.
    pub fn first_time_trained_to(&self, resource: f64) -> Option<f64> {
        self.events
            .iter()
            .find(|e| e.resource >= resource)
            .map(|e| e.time)
    }

    /// Number of distinct trials that have at least one event.
    pub fn distinct_trials(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for e in &self.events {
            seen.insert(e.trial);
        }
        seen.len()
    }

    /// Best validation loss and the matching test loss at the end of the
    /// run, if any job completed.
    pub fn final_best(&self) -> Option<(f64, f64)> {
        let mut best: Option<(f64, f64)> = None;
        for e in &self.events {
            if best.is_none_or(|(v, _)| e.val_loss < v) {
                best = Some((e.val_loss, e.test_loss));
            }
        }
        best
    }

    /// Time of the last event, or 0 for an empty trace.
    pub fn end_time(&self) -> f64 {
        self.events.last().map_or(0.0, |e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, trial: u64, bracket: usize, resource: f64, val: f64, test: f64) -> TraceEvent {
        TraceEvent {
            time,
            trial,
            bracket,
            rung: 0,
            resource,
            val_loss: val,
            test_loss: test,
        }
    }

    #[test]
    fn incumbent_tracks_best_validation_but_reports_test() {
        let mut t = RunTrace::new("x");
        t.push(ev(1.0, 0, 0, 1.0, 0.5, 0.52));
        t.push(ev(2.0, 1, 0, 1.0, 0.6, 0.10)); // better test, worse val: ignored
        t.push(ev(3.0, 2, 0, 1.0, 0.4, 0.45));
        let c = t.incumbent_curve();
        assert_eq!(c.eval(1.5), Some(0.52));
        assert_eq!(c.eval(2.5), Some(0.52));
        assert_eq!(c.eval(3.5), Some(0.45));
        assert_eq!(c.eval(0.5), None);
    }

    #[test]
    fn by_bracket_reveals_late() {
        let mut t = RunTrace::new("hb");
        t.push(ev(1.0, 0, 0, 1.0, 0.5, 0.50));
        t.push(ev(2.0, 1, 0, 1.0, 0.3, 0.35));
        t.push(ev(5.0, 2, 1, 1.0, 0.6, 0.65)); // bracket switch at t=5
        t.push(ev(9.0, 3, 1, 1.0, 0.2, 0.25));
        let by_bracket = t.incumbent_curve_by_bracket();
        // Nothing revealed during bracket 0.
        assert_eq!(by_bracket.eval(2.5), None);
        // At the bracket-1 boundary (t=5) the bracket-0 best appears.
        assert_eq!(by_bracket.eval(5.0), Some(0.35));
        // Final event reveals the overall best.
        assert_eq!(by_bracket.eval(9.0), Some(0.25));
        // The by-observation curve is strictly earlier.
        assert_eq!(t.incumbent_curve().eval(2.5), Some(0.35));
    }

    #[test]
    fn configs_trained_to_counts_distinct_trials() {
        let mut t = RunTrace::new("x");
        t.push(ev(1.0, 0, 0, 256.0, 0.5, 0.5));
        t.push(ev(2.0, 0, 0, 256.0, 0.5, 0.5)); // same trial again
        t.push(ev(3.0, 1, 0, 64.0, 0.5, 0.5)); // not full budget
        t.push(ev(4.0, 2, 0, 256.0, 0.5, 0.5));
        t.push(ev(99.0, 3, 0, 256.0, 0.5, 0.5)); // past deadline
        assert_eq!(t.configs_trained_to(256.0, 10.0), 2);
        assert_eq!(t.configs_trained_to(256.0, 100.0), 3);
        assert_eq!(t.distinct_trials(), 4);
    }

    #[test]
    fn first_time_trained_to_finds_earliest() {
        let mut t = RunTrace::new("x");
        assert_eq!(t.first_time_trained_to(9.0), None);
        t.push(ev(1.0, 0, 0, 3.0, 0.5, 0.5));
        t.push(ev(4.0, 1, 0, 9.0, 0.5, 0.5));
        t.push(ev(6.0, 2, 0, 9.0, 0.5, 0.5));
        assert_eq!(t.first_time_trained_to(9.0), Some(4.0));
    }

    #[test]
    fn final_best_and_end_time() {
        let mut t = RunTrace::new("x");
        assert_eq!(t.final_best(), None);
        assert_eq!(t.end_time(), 0.0);
        t.push(ev(1.0, 0, 0, 1.0, 0.5, 0.52));
        t.push(ev(2.0, 1, 0, 1.0, 0.3, 0.31));
        assert_eq!(t.final_best(), Some((0.3, 0.31)));
        assert_eq!(t.end_time(), 2.0);
        assert_eq!(t.searcher(), "x");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn final_only_incumbent_lags_intermediate() {
        let mut t = RunTrace::new("x");
        t.push(ev(1.0, 0, 0, 4.0, 0.5, 0.5)); // partial training
        t.push(ev(5.0, 0, 0, 16.0, 0.4, 0.4)); // full budget
        let by_any = t.incumbent_curve();
        let by_final = t.incumbent_curve_final_only(16.0);
        assert_eq!(by_any.eval(1.0), Some(0.5));
        assert_eq!(by_final.eval(1.0), None, "final-only has nothing yet");
        assert_eq!(by_final.eval(5.0), Some(0.4));
    }

    #[test]
    fn events_round_trip_through_csv() {
        let mut t = RunTrace::new("x");
        t.push(ev(1.5, 3, 1, 4.0, 0.25, 0.3));
        let dir = std::env::temp_dir().join("asha-trace-test");
        let path = dir.join("events.csv");
        t.write_events_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "time,trial,bracket,rung,resource,val_loss,test_loss"
        );
        assert_eq!(lines.next().unwrap(), "1.5,3,1,0,4,0.25,0.3");
        std::fs::remove_dir_all(&dir).ok();
    }
}

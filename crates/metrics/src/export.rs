use std::error::Error;
use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Error writing experiment output.
#[derive(Debug)]
pub struct CsvError {
    path: String,
    source: std::io::Error,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to write csv `{}`: {}", self.path, self.source)
    }
}

impl Error for CsvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.source)
    }
}

/// Write a table of numbers to a CSV file with the given header. The parent
/// directory is created if needed. Values are written with full `f64`
/// precision; NaNs become empty cells.
///
/// # Errors
///
/// Returns [`CsvError`] on any I/O failure.
///
/// # Examples
///
/// ```no_run
/// asha_metrics::write_csv(
///     "results/fig3.csv",
///     &["time", "mean", "q25", "q75"],
///     &[vec![0.0, 0.9, 0.85, 0.95]],
/// )?;
/// # Ok::<(), asha_metrics::CsvError>(())
/// ```
pub fn write_csv(
    path: impl AsRef<Path>,
    header: &[&str],
    rows: &[Vec<f64>],
) -> Result<(), CsvError> {
    let path = path.as_ref();
    let wrap = |source: std::io::Error| CsvError {
        path: path.display().to_string(),
        source,
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(wrap)?;
        }
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(path).map_err(wrap)?);
    writeln!(out, "{}", header.join(",")).map_err(wrap)?;
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .map(|v| {
                if v.is_nan() {
                    String::new()
                } else {
                    format!("{v}")
                }
            })
            .collect();
        writeln!(out, "{}", cells.join(",")).map_err(wrap)?;
    }
    out.flush().map_err(wrap)
}

/// A JSON value for small structured reports (perf baselines, run
/// summaries, telemetry event logs). The vendored `serde` stub has no
/// serializer, so exports that need machine-readable output build one of
/// these and render it directly; [`JsonValue::parse`] is the matching
/// reader, used by tools that replay previously written reports and logs.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// The JSON `null` literal.
    Null,
    /// A finite number (NaN/inf render as `null`, which JSON requires).
    Num(f64),
    /// An integer, rendered without a decimal point.
    Int(u64),
    /// A string (escaped on render).
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An ordered array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved for stable diffs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for an object.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, JsonValue)>) -> Self {
        JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Render as pretty-printed JSON (two-space indent, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Render as compact single-line JSON (no whitespace, no trailing
    /// newline) — the format of JSONL event logs, where one value per line
    /// keeps logs diffable and streamable.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Like [`JsonValue::render_compact`], but appends to an existing
    /// buffer — hot paths that encode many values (JSONL writers, the WAL)
    /// reuse one allocation instead of building a `String` per value.
    pub fn render_compact_into(&self, out: &mut String) {
        self.write_compact(out);
    }

    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `Num` or `Int` as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            JsonValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Integer view: `Int`, or a `Num` that is exactly a non-negative
    /// integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(v) => Some(*v),
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is the `null` literal.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Parse a JSON document.
    ///
    /// Accepts exactly what [`JsonValue::render`] and
    /// [`JsonValue::render_compact`] emit (standard JSON): objects, arrays,
    /// strings with escapes, numbers, booleans, and `null`. Non-negative
    /// integer literals parse as [`JsonValue::Int`]; everything else numeric
    /// parses as [`JsonValue::Num`].
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError`] (with a byte offset) on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    fn write_compact(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            JsonValue::Str(s) => push_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_into(&self, out: &mut String, indent: usize) {
        use std::fmt::Write as _;
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            JsonValue::Str(s) => push_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    push_escaped(out, key);
                    out.push_str(": ");
                    value.write_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Append `s` to `out` as a JSON string literal (quoted and escaped).
/// Shared by the compact and pretty renderers so keys and values never go
/// through a temporary allocation.
fn push_escaped(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Error parsing a JSON document with [`JsonValue::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonParseError {
        JsonParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at c.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let ch = s.chars().next().expect("non-empty slice");
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if token.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(n) = token.parse::<u64>() {
                return Ok(JsonValue::Int(n));
            }
        }
        token
            .parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(format!("bad number `{token}`")))
    }
}

/// Write a [`JsonValue`] to a file, creating parent directories as needed.
///
/// # Errors
///
/// Returns [`CsvError`] (the crate's generic export error) on I/O failure.
pub fn write_json(path: impl AsRef<Path>, value: &JsonValue) -> Result<(), CsvError> {
    let path = path.as_ref();
    let wrap = |source: std::io::Error| CsvError {
        path: path.display().to_string(),
        source,
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(wrap)?;
        }
    }
    std::fs::write(path, value.render()).map_err(wrap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let dir = std::env::temp_dir().join("asha-metrics-test");
        let path = dir.join("out.csv");
        write_csv(&path, &["a", "b"], &[vec![1.0, 2.5], vec![f64::NAN, 4.0]]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "1,2.5");
        assert_eq!(lines[2], ",4");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_mentions_path() {
        // Route the path through an existing *file* so directory creation
        // must fail on any platform.
        let dir = std::env::temp_dir().join("asha-metrics-err-test");
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("blocker");
        std::fs::write(&blocker, b"not a dir").unwrap();
        let err = write_csv(blocker.join("x.csv"), &["a"], &[]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("x.csv"), "{msg}");
        assert!(err.source().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_renders_all_value_kinds() {
        let v = JsonValue::obj([
            ("num", JsonValue::Num(1.5)),
            ("int", JsonValue::Int(42)),
            ("nan", JsonValue::Num(f64::NAN)),
            ("flag", JsonValue::Bool(true)),
            ("text", JsonValue::Str("a\"b\n".to_owned())),
            (
                "arr",
                JsonValue::Arr(vec![JsonValue::Int(1), JsonValue::Int(2)]),
            ),
            ("empty_arr", JsonValue::Arr(vec![])),
            ("empty_obj", JsonValue::Obj(vec![])),
        ]);
        let text = v.render();
        assert!(text.contains("\"num\": 1.5"), "{text}");
        assert!(text.contains("\"int\": 42"), "{text}");
        assert!(text.contains("\"nan\": null"), "{text}");
        assert!(text.contains("\"flag\": true"), "{text}");
        assert!(text.contains("\\\"b\\n"), "{text}");
        assert!(text.contains("\"empty_arr\": []"), "{text}");
        assert!(text.contains("\"empty_obj\": {}"), "{text}");
        assert!(text.ends_with("}\n"), "{text}");
    }

    #[test]
    fn compact_render_is_single_line() {
        let v = JsonValue::obj([
            ("seq", JsonValue::Int(3)),
            ("t", JsonValue::Num(1.5)),
            ("ev", JsonValue::Str("promote".to_owned())),
            ("null", JsonValue::Null),
            (
                "arr",
                JsonValue::Arr(vec![JsonValue::Int(1), JsonValue::Int(2)]),
            ),
        ]);
        assert_eq!(
            v.render_compact(),
            r#"{"seq":3,"t":1.5,"ev":"promote","null":null,"arr":[1,2]}"#
        );
    }

    #[test]
    fn parse_round_trips_pretty_and_compact() {
        let v = JsonValue::obj([
            ("num", JsonValue::Num(-1.25e-3)),
            ("int", JsonValue::Int(u64::MAX)),
            ("nothing", JsonValue::Null),
            ("flag", JsonValue::Bool(false)),
            ("text", JsonValue::Str("a\"b\\c\nd\tñ€".to_owned())),
            (
                "arr",
                JsonValue::Arr(vec![JsonValue::Int(0), JsonValue::Str("x".to_owned())]),
            ),
            ("empty_arr", JsonValue::Arr(vec![])),
            ("empty_obj", JsonValue::Obj(vec![])),
        ]);
        assert_eq!(JsonValue::parse(&v.render()).unwrap(), v);
        assert_eq!(JsonValue::parse(&v.render_compact()).unwrap(), v);
    }

    #[test]
    fn parse_classifies_numbers() {
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::Int(42));
        assert_eq!(JsonValue::parse("-42").unwrap(), JsonValue::Num(-42.0));
        assert_eq!(JsonValue::parse("0.5").unwrap(), JsonValue::Num(0.5));
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::Num(1000.0));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            let err = JsonValue::parse(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad}");
        }
    }

    #[test]
    fn parse_accessors_navigate_objects() {
        let v = JsonValue::parse(r#"{"a":{"b":[1,2.5,"x",null,true]}}"#).unwrap();
        let arr = v.get("a").and_then(|a| a.get("b")).unwrap();
        let items = arr.as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[2].as_str(), Some("x"));
        assert!(items[3].is_null());
        assert_eq!(items[4].as_bool(), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn json_round_trips_through_file() {
        let dir = std::env::temp_dir().join("asha-metrics-json-test");
        let path = dir.join("report.json");
        let v = JsonValue::obj([("a", JsonValue::Arr(vec![JsonValue::Num(0.25)]))]);
        write_json(&path, &v).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, v.render());
        std::fs::remove_dir_all(&dir).ok();
    }
}

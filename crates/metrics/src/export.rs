use std::error::Error;
use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Error writing experiment output.
#[derive(Debug)]
pub struct CsvError {
    path: String,
    source: std::io::Error,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to write csv `{}`: {}", self.path, self.source)
    }
}

impl Error for CsvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.source)
    }
}

/// Write a table of numbers to a CSV file with the given header. The parent
/// directory is created if needed. Values are written with full `f64`
/// precision; NaNs become empty cells.
///
/// # Errors
///
/// Returns [`CsvError`] on any I/O failure.
///
/// # Examples
///
/// ```no_run
/// asha_metrics::write_csv(
///     "results/fig3.csv",
///     &["time", "mean", "q25", "q75"],
///     &[vec![0.0, 0.9, 0.85, 0.95]],
/// )?;
/// # Ok::<(), asha_metrics::CsvError>(())
/// ```
pub fn write_csv(
    path: impl AsRef<Path>,
    header: &[&str],
    rows: &[Vec<f64>],
) -> Result<(), CsvError> {
    let path = path.as_ref();
    let wrap = |source: std::io::Error| CsvError {
        path: path.display().to_string(),
        source,
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(wrap)?;
        }
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(path).map_err(wrap)?);
    writeln!(out, "{}", header.join(",")).map_err(wrap)?;
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .map(|v| {
                if v.is_nan() {
                    String::new()
                } else {
                    format!("{v}")
                }
            })
            .collect();
        writeln!(out, "{}", cells.join(",")).map_err(wrap)?;
    }
    out.flush().map_err(wrap)
}

/// A JSON value for small structured reports (perf baselines, run
/// summaries). The vendored `serde` stub has no serializer, so exports that
/// need machine-readable output build one of these and render it directly.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A finite number (NaN/inf render as `null`, which JSON requires).
    Num(f64),
    /// An integer, rendered without a decimal point.
    Int(u64),
    /// A string (escaped on render).
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An ordered array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved for stable diffs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for an object.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, JsonValue)>) -> Self {
        JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Render as pretty-printed JSON (two-space indent, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Num(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Int(v) => out.push_str(&format!("{v}")),
            JsonValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    JsonValue::Str(key.clone()).write_into(out, indent + 1);
                    out.push_str(": ");
                    value.write_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Write a [`JsonValue`] to a file, creating parent directories as needed.
///
/// # Errors
///
/// Returns [`CsvError`] (the crate's generic export error) on I/O failure.
pub fn write_json(path: impl AsRef<Path>, value: &JsonValue) -> Result<(), CsvError> {
    let path = path.as_ref();
    let wrap = |source: std::io::Error| CsvError {
        path: path.display().to_string(),
        source,
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(wrap)?;
        }
    }
    std::fs::write(path, value.render()).map_err(wrap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let dir = std::env::temp_dir().join("asha-metrics-test");
        let path = dir.join("out.csv");
        write_csv(&path, &["a", "b"], &[vec![1.0, 2.5], vec![f64::NAN, 4.0]]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "1,2.5");
        assert_eq!(lines[2], ",4");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_mentions_path() {
        // Route the path through an existing *file* so directory creation
        // must fail on any platform.
        let dir = std::env::temp_dir().join("asha-metrics-err-test");
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("blocker");
        std::fs::write(&blocker, b"not a dir").unwrap();
        let err = write_csv(blocker.join("x.csv"), &["a"], &[]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("x.csv"), "{msg}");
        assert!(err.source().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_renders_all_value_kinds() {
        let v = JsonValue::obj([
            ("num", JsonValue::Num(1.5)),
            ("int", JsonValue::Int(42)),
            ("nan", JsonValue::Num(f64::NAN)),
            ("flag", JsonValue::Bool(true)),
            ("text", JsonValue::Str("a\"b\n".to_owned())),
            (
                "arr",
                JsonValue::Arr(vec![JsonValue::Int(1), JsonValue::Int(2)]),
            ),
            ("empty_arr", JsonValue::Arr(vec![])),
            ("empty_obj", JsonValue::Obj(vec![])),
        ]);
        let text = v.render();
        assert!(text.contains("\"num\": 1.5"), "{text}");
        assert!(text.contains("\"int\": 42"), "{text}");
        assert!(text.contains("\"nan\": null"), "{text}");
        assert!(text.contains("\"flag\": true"), "{text}");
        assert!(text.contains("\\\"b\\n"), "{text}");
        assert!(text.contains("\"empty_arr\": []"), "{text}");
        assert!(text.contains("\"empty_obj\": {}"), "{text}");
        assert!(text.ends_with("}\n"), "{text}");
    }

    #[test]
    fn json_round_trips_through_file() {
        let dir = std::env::temp_dir().join("asha-metrics-json-test");
        let path = dir.join("report.json");
        let v = JsonValue::obj([("a", JsonValue::Arr(vec![JsonValue::Num(0.25)]))]);
        write_json(&path, &v).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, v.render());
        std::fs::remove_dir_all(&dir).ok();
    }
}

use std::error::Error;
use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Error writing experiment output.
#[derive(Debug)]
pub struct CsvError {
    path: String,
    source: std::io::Error,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to write csv `{}`: {}", self.path, self.source)
    }
}

impl Error for CsvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.source)
    }
}

/// Write a table of numbers to a CSV file with the given header. The parent
/// directory is created if needed. Values are written with full `f64`
/// precision; NaNs become empty cells.
///
/// # Errors
///
/// Returns [`CsvError`] on any I/O failure.
///
/// # Examples
///
/// ```no_run
/// asha_metrics::write_csv(
///     "results/fig3.csv",
///     &["time", "mean", "q25", "q75"],
///     &[vec![0.0, 0.9, 0.85, 0.95]],
/// )?;
/// # Ok::<(), asha_metrics::CsvError>(())
/// ```
pub fn write_csv(
    path: impl AsRef<Path>,
    header: &[&str],
    rows: &[Vec<f64>],
) -> Result<(), CsvError> {
    let path = path.as_ref();
    let wrap = |source: std::io::Error| CsvError {
        path: path.display().to_string(),
        source,
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(wrap)?;
        }
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(path).map_err(wrap)?);
    writeln!(out, "{}", header.join(",")).map_err(wrap)?;
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .map(|v| {
                if v.is_nan() {
                    String::new()
                } else {
                    format!("{v}")
                }
            })
            .collect();
        writeln!(out, "{}", cells.join(",")).map_err(wrap)?;
    }
    out.flush().map_err(wrap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let dir = std::env::temp_dir().join("asha-metrics-test");
        let path = dir.join("out.csv");
        write_csv(&path, &["a", "b"], &[vec![1.0, 2.5], vec![f64::NAN, 4.0]]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "1,2.5");
        assert_eq!(lines[2], ",4");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_mentions_path() {
        // Route the path through an existing *file* so directory creation
        // must fail on any platform.
        let dir = std::env::temp_dir().join("asha-metrics-err-test");
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("blocker");
        std::fs::write(&blocker, b"not a dir").unwrap();
        let err = write_csv(blocker.join("x.csv"), &["a"], &[]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("x.csv"), "{msg}");
        assert!(err.source().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Property-based tests of the surrogate learning curves: the invariants
//! the schedulers rely on must hold for every preset and arbitrary configs,
//! resources, and advance schedules.

use asha_surrogate::{presets, BenchmarkModel, CurveBenchmark};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn all_presets() -> Vec<CurveBenchmark> {
    let s = presets::DEFAULT_SURFACE_SEED;
    vec![
        presets::cifar10_cuda_convnet(s),
        presets::cifar10_small_cnn(s),
        presets::svhn_small_cnn(s),
        presets::ptb_lstm(s),
        presets::ptb_dropconnect_lstm(s),
        presets::svm_vehicle(s),
        presets::svm_mnist(s),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn advancing_in_steps_equals_one_shot(
        bench_idx in 0usize..7,
        fracs in prop::collection::vec(0.0f64..1.0, 1..6),
        seed in any::<u64>(),
    ) {
        let bench = &all_presets()[bench_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let config = bench.space().sample(&mut rng);
        let s0 = bench.init_state(&config, &mut rng);
        // One shot to the max of the schedule.
        let target = fracs.iter().copied().fold(0.0f64, f64::max) * bench.max_resource();
        let mut one = s0;
        bench.advance(&config, &mut one, target, &mut rng);
        // Stepwise through the (unordered) schedule.
        let mut step = s0;
        for f in &fracs {
            bench.advance(&config, &mut step, f * bench.max_resource(), &mut rng);
        }
        prop_assert!((one.loss - step.loss).abs() < 1e-9,
            "Markov violation on {}: {} vs {}", bench.name(), one.loss, step.loss);
        prop_assert_eq!(one.resource, step.resource);
        prop_assert_eq!(one.diverged, step.diverged);
    }

    #[test]
    fn losses_are_monotone_nonincreasing_unless_diverged(
        bench_idx in 0usize..7,
        seed in any::<u64>(),
    ) {
        let bench = &all_presets()[bench_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let config = bench.space().sample(&mut rng);
        let mut state = bench.init_state(&config, &mut rng);
        let mut prev = state.loss;
        let mut was_diverged = state.diverged;
        for i in 1..=8 {
            bench.advance(&config, &mut state, bench.max_resource() * i as f64 / 8.0, &mut rng);
            if !state.diverged {
                prop_assert!(state.loss <= prev + 1e-9, "{}", bench.name());
            } else if !was_diverged {
                // Divergence jumps the loss up, once.
                was_diverged = true;
            }
            prev = state.loss;
        }
    }

    #[test]
    fn evaluation_outputs_are_bounded_and_finite(
        bench_idx in 0usize..7,
        frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let bench = &all_presets()[bench_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let config = bench.space().sample(&mut rng);
        let mut state = bench.init_state(&config, &mut rng);
        bench.advance(&config, &mut state, frac * bench.max_resource(), &mut rng);
        for _ in 0..4 {
            let v = bench.validation_loss(&config, &state, &mut rng);
            prop_assert!(v.is_finite() && v >= 0.0, "{}: {v}", bench.name());
        }
        let t = bench.test_loss(&config, &state);
        prop_assert!(t.is_finite() && t >= 0.0);
        prop_assert!(bench.time_per_unit(&config) > 0.0);
        prop_assert!(bench.time_full(&config) > 0.0);
    }

    #[test]
    fn ground_truth_helpers_are_deterministic(
        bench_idx in 0usize..7,
        seed in any::<u64>(),
    ) {
        let bench = &all_presets()[bench_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let config = bench.space().sample(&mut rng);
        prop_assert_eq!(bench.asymptote(&config), bench.asymptote(&config));
        prop_assert_eq!(bench.convergence_rate(&config), bench.convergence_rate(&config));
        let p = bench.divergence_probability(&config);
        prop_assert!((0.0..=1.0).contains(&p));
    }
}

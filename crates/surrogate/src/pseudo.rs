//! Deterministic smooth pseudo-random fields over the unit hypercube.
//!
//! The surrogate response surfaces need "texture": reproducible, smooth,
//! multi-modal structure beyond a simple quadratic bowl, so that the search
//! problem is neither trivial nor adversarial. A [`SmoothPseudo`] field is a
//! sum of a few random sinusoidal projections — a cheap Fourier-feature
//! random field — fully determined by its seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A smooth deterministic field `f: [0,1]^d -> [0,1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SmoothPseudo {
    directions: Vec<Vec<f64>>,
    phases: Vec<f64>,
    frequencies: Vec<f64>,
}

impl SmoothPseudo {
    /// Build a field over `dims` dimensions with `waves` sinusoidal
    /// components, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `waves == 0` or `dims == 0`.
    pub fn new(seed: u64, dims: usize, waves: usize) -> Self {
        assert!(dims > 0, "field needs at least one dimension");
        assert!(waves > 0, "field needs at least one wave");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut directions = Vec::with_capacity(waves);
        let mut phases = Vec::with_capacity(waves);
        let mut frequencies = Vec::with_capacity(waves);
        for _ in 0..waves {
            // Unit direction vector.
            let mut v: Vec<f64> = (0..dims).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
            for x in &mut v {
                *x /= norm;
            }
            directions.push(v);
            phases.push(rng.gen::<f64>() * std::f64::consts::TAU);
            // Low frequencies keep the field smooth (1 to 3 cycles across
            // the cube).
            frequencies.push(1.0 + 2.0 * rng.gen::<f64>());
        }
        SmoothPseudo {
            directions,
            phases,
            frequencies,
        }
    }

    /// Evaluate the field at a point (coordinates are used as given; points
    /// outside the cube extrapolate smoothly). Result lies in `[0, 1]`.
    pub fn eval(&self, u: &[f64]) -> f64 {
        let mut acc = 0.0;
        for ((v, phase), freq) in self
            .directions
            .iter()
            .zip(&self.phases)
            .zip(&self.frequencies)
        {
            let dot: f64 = v.iter().zip(u).map(|(a, b)| a * b).sum();
            acc += (std::f64::consts::TAU * freq * dot + phase).sin();
        }
        // Average of sines in [-1, 1] mapped to [0, 1].
        (acc / self.directions.len() as f64 + 1.0) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let a = SmoothPseudo::new(42, 5, 4);
        let b = SmoothPseudo::new(42, 5, 4);
        let u = [0.1, 0.9, 0.5, 0.3, 0.7];
        assert_eq!(a.eval(&u), b.eval(&u));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SmoothPseudo::new(1, 3, 4);
        let b = SmoothPseudo::new(2, 3, 4);
        let u = [0.25, 0.5, 0.75];
        assert_ne!(a.eval(&u), b.eval(&u));
    }

    #[test]
    fn range_is_unit_interval() {
        let f = SmoothPseudo::new(7, 4, 6);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..2000 {
            let u: Vec<f64> = (0..4).map(|_| rng.gen::<f64>()).collect();
            let v = f.eval(&u);
            assert!((0.0..=1.0).contains(&v), "value {v} out of range");
        }
    }

    #[test]
    fn field_is_smooth() {
        // Nearby points give nearby values: |f(u) - f(u + h)| = O(|h|).
        let f = SmoothPseudo::new(3, 3, 4);
        let u = [0.4, 0.4, 0.4];
        let v = [0.401, 0.4, 0.4];
        assert!((f.eval(&u) - f.eval(&v)).abs() < 0.05);
    }

    #[test]
    fn field_is_not_constant() {
        let f = SmoothPseudo::new(9, 2, 4);
        let vals: Vec<f64> = (0..20).map(|i| f.eval(&[i as f64 / 19.0, 0.5])).collect();
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.05, "field looks constant: {min}..{max}");
    }

    #[test]
    #[should_panic(expected = "at least one wave")]
    fn zero_waves_rejected() {
        let _ = SmoothPseudo::new(0, 2, 0);
    }
}

//! Surrogate instances of the paper's seven benchmark tasks.
//!
//! Each function returns a [`CurveBenchmark`] over the corresponding paper
//! search space (`asha_space::presets`), with loss ranges, convergence
//! behaviour, cost structure, and pathologies chosen to match what the
//! paper reports:
//!
//! | Benchmark | Paper section | Loss metric | Key property |
//! |---|---|---|---|
//! | [`cifar10_cuda_convnet`] | §4.1–4.2 benchmark 1 | test error ≈ 0.18–0.26 | relatively easy; low cost variance |
//! | [`cifar10_small_cnn`] | §4.1–4.2 benchmark 2 | test error ≈ 0.20–0.26 | cost mean ≈ 30 min, std ≈ 27 min |
//! | [`svhn_small_cnn`] | App. A.2/A.4 | test error ≈ 0.02–0.20 | same space as benchmark 2 |
//! | [`ptb_lstm`] | §4.3 | perplexity ≈ 76+ | divergent configs; losses capped at 1000 |
//! | [`ptb_dropconnect_lstm`] | §4.3.1 | perplexity ≈ 58.5+ | long training (≈ 600 min per full run) |
//! | [`svm_vehicle`] | App. A.2 | test error ≈ 0.18–0.45 | resource = training-set size |
//! | [`svm_mnist`] | App. A.2 | test error ≈ 0.015–0.6 | resource = training-set size |
//!
//! The `seed` argument perturbs the *response surface*; experiments use a
//! fixed seed (conventionally the default of [`DEFAULT_SURFACE_SEED`]) so
//! that all tuners race on the same landscape, and vary only the tuner RNG
//! across trials.

use asha_space::presets as spaces;

use crate::curve::{CurveBenchmark, DivergenceSpec};

/// Surface seed used by the paper-reproduction experiments.
pub const DEFAULT_SURFACE_SEED: u64 = 2020;

/// Benchmark 1 of Sections 4.1–4.2: the cuda-convnet CIFAR-10 model.
///
/// "Relatively simple task, i.e. it only required evaluating a few hundred
/// configurations before identifying a good one" — the surface is smoother
/// and the cost variance low. `R = 256` resource units correspond to the
/// paper's 30k SGD iterations; a median full training run takes ≈ 40
/// simulated minutes.
pub fn cifar10_cuda_convnet(seed: u64) -> CurveBenchmark {
    CurveBenchmark::builder(
        "cifar10-cuda-convnet",
        spaces::cuda_convnet_space(),
        256.0,
        seed ^ 0x11,
    )
    .losses(0.17, 0.25, 0.65, 1.0)
    .optimum(&[0.45, 0.4, 0.5, 0.45, 0.35, 0.5, 0.4])
    .weights(&[3.0, 1.5, 1.0, 1.0, 1.5, 0.8, 0.8])
    .asymmetric(0, 3.0)
    // Rugged enough that local perturbation (PBT) gets trapped while
    // global random sampling plus early stopping does not — the paper
    // finds SHA-family methods 3x ahead of PBT on this benchmark — and
    // with a genuine learning-rate cliff: perturbing lr upward across it
    // blows the run up, which is what real cuda-convnet training does.
    .shape(4.5, 0.25)
    .divergence(DivergenceSpec {
        dim: 0,
        threshold: 0.62,
        magnitude: 0.9,
    })
    .dynamics(7.0, 1.0)
    .noise(0.015, 0.012)
    .gap(0.06)
    .cost(40.0, &[0.3, 0.0, 0.0, 0.0, 0.2, 0.0, 0.0])
    .build()
}

/// Benchmark 2 of Sections 4.1–4.2: the small-CNN architecture tuning task
/// on CIFAR-10 (Table 1 search space).
///
/// The architecture hyperparameters (batch size, layers, filters) drive a
/// heavy-tailed cost distribution — the paper reports "the average time
/// required to train a configuration on the maximum resource R is 30
/// minutes with a standard deviation of 27 minutes", the property that
/// cripples synchronous SHA in Figure 4.
pub fn cifar10_small_cnn(seed: u64) -> CurveBenchmark {
    CurveBenchmark::builder(
        "cifar10-small-cnn",
        spaces::small_cnn_space(),
        256.0,
        seed ^ 0x22,
    )
    .losses(0.19, 0.40, 0.90, 1.0)
    .optimum(&[0.6, 0.7, 0.7, 0.4, 0.45, 0.5, 0.35, 0.4, 0.3, 0.42])
    .weights(&[1.2, 1.5, 1.5, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 3.0])
    .asymmetric(9, 3.0)
    .shape(2.6, 0.15)
    .dynamics(6.0, 1.2)
    .noise(0.008, 0.008)
    .gap(0.06)
    .cost(25.0, &[1.3, 1.4, 1.6, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0])
    .build()
}

/// The SVHN variant of the small-CNN architecture task (Appendices A.2/A.4,
/// bottom-right panel of Figure 9).
pub fn svhn_small_cnn(seed: u64) -> CurveBenchmark {
    CurveBenchmark::builder(
        "svhn-small-cnn",
        spaces::small_cnn_space(),
        256.0,
        seed ^ 0x33,
    )
    .losses(0.02, 0.18, 0.85, 1.0)
    .optimum(&[0.55, 0.65, 0.7, 0.4, 0.45, 0.5, 0.4, 0.4, 0.35, 0.45])
    .weights(&[1.2, 1.5, 1.5, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 3.0])
    .asymmetric(9, 3.0)
    .shape(2.6, 0.12)
    .dynamics(6.0, 1.2)
    .noise(0.004, 0.004)
    .gap(0.06)
    .cost(35.0, &[1.3, 1.4, 1.6, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0])
    .build()
}

/// The 500-worker PTB LSTM task of Section 4.3 (Table 2 search space).
///
/// Perplexities of poor configurations are "orders of magnitude larger than
/// the average case"; following the paper's treatment of Vizier, observed
/// perplexities are capped at 1000. Time is measured in units of the average
/// `time(R)` (the x-axis of Figure 5), and `R = 64` resource units so that
/// `r = R/64 = 1` and asynchronous Hyperband loops brackets `s = 0..=3`.
pub fn ptb_lstm(seed: u64) -> CurveBenchmark {
    CurveBenchmark::builder("ptb-lstm", spaces::ptb_lstm_space(), 64.0, seed ^ 0x44)
        .losses(76.0, 150.0, 300.0, 1000.0)
        // The best learning rates sit right at the edge of instability
        // (optimum at 0.48 against a divergence cliff at 0.55): model-based
        // methods sampling near the optimum keep hitting capped-at-1000
        // blowups, the failure mode Section 4.3 describes for Vizier, while
        // ASHA just early-stops them. Quality is driven by a handful of
        // hyperparameters; LSTM curves converge fast early (≈95% of the
        // improvement by a quarter of training).
        .optimum(&[0.48, 0.35, 0.6, 0.75, 0.6, 0.4, 0.5, 0.35, 0.3])
        .weights(&[2.5, 0.1, 0.1, 2.0, 0.2, 0.1, 0.1, 1.5, 0.2])
        .asymmetric(0, 2.0)
        .shape(5.5, 0.08)
        .dynamics(30.0, 0.3)
        .rate_quality_coupling(1.2)
        .noise(0.8, 0.6)
        .gap(0.02)
        .divergence(DivergenceSpec {
            dim: 0,
            threshold: 0.55,
            magnitude: 1e6, // clamped to the 1000 cap on observation
        })
        .cost(1.0, &[-0.5, -0.4, 0.0, 1.1, 0.0, 0.0, 0.0, 0.0, 0.0])
        .build()
}

/// The 16-GPU DropConnect LSTM task of Section 4.3.1 (Table 3 search
/// space). `R = 256` epochs with `r = 1`; a median full run takes ≈ 600
/// simulated minutes, matching Figure 6's ≈ 1400-minute x-axis covering
/// a bit over 2 × `time(R)`.
pub fn ptb_dropconnect_lstm(seed: u64) -> CurveBenchmark {
    CurveBenchmark::builder(
        "ptb-dropconnect-lstm",
        spaces::dropconnect_lstm_space(),
        256.0,
        seed ^ 0x55,
    )
    .losses(58.8, 20.0, 110.0, 1000.0)
    .optimum(&[0.4, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.6, 0.5])
    .weights(&[2.5, 1.5, 1.0, 1.0, 1.0, 1.5, 1.2, 0.6, 0.4])
    .asymmetric(0, 2.5)
    // Rugged enough that population-local perturbation plateaus above the
    // floor: the paper's PBT stalls around one perplexity point short of
    // ASHA's final configuration.
    .shape(2.4, 0.22)
    .dynamics(6.0, 0.8)
    .noise(0.8, 0.5)
    .gap(0.03)
    .divergence(DivergenceSpec {
        dim: 0,
        threshold: 0.78,
        magnitude: 1e4,
    })
    .cost(600.0, &[0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, -0.3, 0.2])
    .build()
}

/// The kernel-SVM task on the `vehicle` dataset (Appendix A.2, Figure 9
/// top-left). The resource is the number of training points; `R = 64`
/// subset-size units.
pub fn svm_vehicle(seed: u64) -> CurveBenchmark {
    CurveBenchmark::builder("svm-vehicle", spaces::svm_space(), 64.0, seed ^ 0x66)
        .losses(0.18, 0.30, 0.75, 1.0)
        .optimum(&[0.6, 0.45])
        .weights(&[1.5, 2.0])
        .shape(2.8, 0.12)
        .dynamics(5.0, 0.8)
        .noise(0.012, 0.010)
        .gap(0.08)
        .cost(40.0, &[0.4, 0.8])
        .build()
}

/// The kernel-SVM task on MNIST (Appendix A.2, Figure 9 top-right). Slower
/// per full evaluation than `vehicle` (more data), with a much larger loss
/// range.
pub fn svm_mnist(seed: u64) -> CurveBenchmark {
    CurveBenchmark::builder("svm-mnist", spaces::svm_space(), 64.0, seed ^ 0x77)
        .losses(0.015, 0.55, 0.90, 1.0)
        .optimum(&[0.65, 0.4])
        .weights(&[1.5, 2.5])
        .shape(3.0, 0.10)
        .dynamics(5.0, 0.8)
        .noise(0.006, 0.005)
        .gap(0.05)
        .cost(120.0, &[0.4, 0.8])
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BenchmarkModel;
    use asha_math::stats::{mean, spearman, std_dev};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all() -> Vec<CurveBenchmark> {
        vec![
            cifar10_cuda_convnet(DEFAULT_SURFACE_SEED),
            cifar10_small_cnn(DEFAULT_SURFACE_SEED),
            svhn_small_cnn(DEFAULT_SURFACE_SEED),
            ptb_lstm(DEFAULT_SURFACE_SEED),
            ptb_dropconnect_lstm(DEFAULT_SURFACE_SEED),
            svm_vehicle(DEFAULT_SURFACE_SEED),
            svm_mnist(DEFAULT_SURFACE_SEED),
        ]
    }

    #[test]
    fn every_preset_trains_and_reports_finite_losses() {
        let mut rng = StdRng::seed_from_u64(0);
        for b in all() {
            for _ in 0..20 {
                let c = b.space().sample(&mut rng);
                let mut s = b.init_state(&c, &mut rng);
                b.advance(&c, &mut s, b.max_resource(), &mut rng);
                let v = b.validation_loss(&c, &s, &mut rng);
                let t = b.test_loss(&c, &s);
                assert!(v.is_finite() && t.is_finite(), "{}", b.name());
                assert!(v >= 0.0 && t >= 0.0, "{}", b.name());
                assert!(b.time_full(&c) > 0.0, "{}", b.name());
            }
        }
    }

    #[test]
    fn every_preset_preserves_early_final_rank_structure() {
        let mut rng = StdRng::seed_from_u64(1);
        for b in all() {
            let mut early = Vec::new();
            let mut fin = Vec::new();
            for _ in 0..150 {
                let c = b.space().sample(&mut rng);
                let mut s = b.init_state(&c, &mut rng);
                b.advance(&c, &mut s, b.max_resource() / 4.0, &mut rng);
                early.push(s.loss);
                b.advance(&c, &mut s, b.max_resource(), &mut rng);
                fin.push(s.loss);
            }
            let rho = spearman(&early, &fin);
            assert!(rho > 0.5, "{}: early/final correlation {rho}", b.name());
        }
    }

    #[test]
    fn benchmark2_cost_distribution_matches_paper() {
        // Section 4.2: mean 30 min, std 27 min. Accept a generous band —
        // the point is high relative variance, not the exact numbers.
        let b = cifar10_small_cnn(DEFAULT_SURFACE_SEED);
        let mut rng = StdRng::seed_from_u64(2);
        let times: Vec<f64> = (0..1000)
            .map(|_| b.time_full(&b.space().sample(&mut rng)))
            .collect();
        let m = mean(&times);
        let s = std_dev(&times);
        assert!((20.0..45.0).contains(&m), "mean time {m}");
        assert!(s / m > 0.55, "relative cost spread {s}/{m} too small");
    }

    #[test]
    fn benchmark1_cost_variance_is_low() {
        let b = cifar10_cuda_convnet(DEFAULT_SURFACE_SEED);
        let mut rng = StdRng::seed_from_u64(3);
        let times: Vec<f64> = (0..500)
            .map(|_| b.time_full(&b.space().sample(&mut rng)))
            .collect();
        let m = mean(&times);
        let s = std_dev(&times);
        assert!(s / m < 0.25, "benchmark 1 cost spread {s}/{m} too large");
        assert!((30.0..55.0).contains(&m), "mean {m} should be ≈ 40 min");
    }

    #[test]
    fn ptb_has_divergent_tail_capped_at_1000() {
        let b = ptb_lstm(DEFAULT_SURFACE_SEED);
        let mut rng = StdRng::seed_from_u64(4);
        let mut diverged = 0;
        let n = 400;
        for _ in 0..n {
            let c = b.space().sample(&mut rng);
            let mut s = b.init_state(&c, &mut rng);
            b.advance(&c, &mut s, b.max_resource(), &mut rng);
            let v = b.validation_loss(&c, &s, &mut rng);
            assert!(v <= 1000.0, "cap violated: {v}");
            if s.diverged {
                diverged += 1;
                assert_eq!(v, 1000.0);
            }
        }
        // Roughly 45% of the lr range is above threshold; of those about
        // half diverge. Accept a broad band.
        let frac = diverged as f64 / n as f64;
        assert!(
            (0.05..0.5).contains(&frac),
            "divergence fraction {frac} implausible"
        );
    }

    #[test]
    fn good_configs_exist_near_the_papers_numbers() {
        // With enough random sampling, the best full-train losses should
        // approach each benchmark's floor (paper: benchmark 1 below 0.21,
        // PTB near 80, DropConnect near 60).
        let mut rng = StdRng::seed_from_u64(5);
        for (b, target) in [
            (cifar10_cuda_convnet(DEFAULT_SURFACE_SEED), 0.21),
            (cifar10_small_cnn(DEFAULT_SURFACE_SEED), 0.23),
            (ptb_lstm(DEFAULT_SURFACE_SEED), 90.0),
            (ptb_dropconnect_lstm(DEFAULT_SURFACE_SEED), 62.0),
        ] {
            let mut best = f64::INFINITY;
            for _ in 0..800 {
                let c = b.space().sample(&mut rng);
                let mut s = b.init_state(&c, &mut rng);
                b.advance(&c, &mut s, b.max_resource(), &mut rng);
                best = best.min(s.loss);
            }
            assert!(
                best <= target,
                "{}: best random loss {best} above target {target}",
                b.name()
            );
        }
    }

    #[test]
    fn random_configs_are_usually_mediocre() {
        // The search must be non-trivial: the median random config should
        // be clearly worse than the achievable best.
        let b = cifar10_small_cnn(DEFAULT_SURFACE_SEED);
        let mut rng = StdRng::seed_from_u64(6);
        let mut losses: Vec<f64> = (0..300)
            .map(|_| {
                let c = b.space().sample(&mut rng);
                let mut s = b.init_state(&c, &mut rng);
                b.advance(&c, &mut s, b.max_resource(), &mut rng);
                s.loss
            })
            .collect();
        losses.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let best = losses[0];
        let median = losses[losses.len() / 2];
        assert!(median - best > 0.05, "median {median} vs best {best}");
    }
}

//! The parametric learning-curve benchmark: a response surface over the
//! search space plus exponential-decay training dynamics.

use asha_math::dist::normal;
use asha_space::{Config, SearchSpace};
use rand::{Rng, SeedableRng};

use crate::model::{BenchmarkModel, ConfigProfile, TrainingState};
use crate::pseudo::SmoothPseudo;

/// Divergence behaviour: configurations whose `dim`-th unit coordinate
/// exceeds `threshold` risk diverging, producing losses "orders of magnitude
/// larger than the average case" (Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DivergenceSpec {
    /// Index of the hyperparameter that drives divergence (typically the
    /// learning rate).
    pub dim: usize,
    /// Unit-space coordinate above which divergence risk turns on.
    pub threshold: f64,
    /// Loss reported by a diverged run.
    pub magnitude: f64,
}

/// A synthetic benchmark built from
///
/// * a multi-modal **quality surface** `q: [0,1]^d -> [0,1]` (weighted
///   anisotropic distance from an optimum, plus a smooth pseudo-random
///   field),
/// * an **asymptote** `floor + range * q(u)` with per-run jitter,
/// * exponential **training dynamics**
///   `loss' = asym + (loss - asym) * exp(-rate * Δr / R)`,
/// * a config-dependent **cost model**
///   `time_per_unit = (cost_base / R) * exp(Σ cw_i (u_i - 0.5))`, and
/// * optional **divergence** for pathological configurations.
///
/// Construct via [`CurveBenchmark::builder`].
#[derive(Debug, Clone)]
pub struct CurveBenchmark {
    name: String,
    space: SearchSpace,
    max_resource: f64,
    opt: Vec<f64>,
    weights: Vec<f64>,
    asym_up: Vec<f64>,
    sharpness: f64,
    roughness: f64,
    quality_field: SmoothPseudo,
    rate_field: SmoothPseudo,
    gap_field: SmoothPseudo,
    floor: f64,
    range: f64,
    init_loss: f64,
    rate_base: f64,
    rate_span: f64,
    rate_quality_coupling: f64,
    noise_std: f64,
    jitter_std: f64,
    gap_frac: f64,
    cost_base: f64,
    cost_weights: Vec<f64>,
    divergence: Option<DivergenceSpec>,
    loss_cap: f64,
}

impl CurveBenchmark {
    /// Start building a benchmark over `space` with maximum resource `R`,
    /// deterministic for the given `seed`.
    pub fn builder(
        name: &str,
        space: SearchSpace,
        max_resource: f64,
        seed: u64,
    ) -> CurveBenchmarkBuilder {
        CurveBenchmarkBuilder::new(name, space, max_resource, seed)
    }

    /// The noise-free asymptotic loss of a configuration (no run jitter):
    /// the ground-truth quality the tuner is trying to find.
    pub fn asymptote(&self, config: &Config) -> f64 {
        let u = self
            .space
            .to_unit(config)
            .expect("config must come from this benchmark's space");
        self.floor + self.range * self.quality(&u)
    }

    /// The noise-free convergence rate of a configuration.
    pub fn convergence_rate(&self, config: &Config) -> f64 {
        let u = self
            .space
            .to_unit(config)
            .expect("config must come from this benchmark's space");
        self.rate_of(&u)
    }

    /// Probability that a run of this configuration diverges.
    pub fn divergence_probability(&self, config: &Config) -> f64 {
        let Some(spec) = self.divergence else {
            return 0.0;
        };
        let u = self
            .space
            .to_unit(config)
            .expect("config must come from this benchmark's space");
        let x = u[spec.dim];
        if x <= spec.threshold {
            0.0
        } else {
            ((x - spec.threshold) / (1.0 - spec.threshold)).clamp(0.0, 1.0)
        }
    }

    fn quality(&self, u: &[f64]) -> f64 {
        let mut total = 0.0;
        let mut wsum = 0.0;
        for (i, (&ui, &oi)) in u.iter().zip(&self.opt).enumerate() {
            let d = ui - oi;
            let w = self.weights[i];
            // Asymmetric penalty: overshooting (e.g. too-high learning rate)
            // can be configured to hurt more than undershooting.
            let asym = if d > 0.0 { 1.0 + self.asym_up[i] } else { 1.0 };
            total += w * asym * d * d;
            wsum += w;
        }
        let bowl = if wsum > 0.0 { total / wsum } else { 0.0 };
        let rough = self.roughness * (self.quality_field.eval(u) - 0.5);
        (self.sharpness * bowl + rough).clamp(0.0, 1.0)
    }

    fn rate_of(&self, u: &[f64]) -> f64 {
        // Better configurations converge faster as well as lower — the
        // coupling that makes partial losses informative of final quality,
        // which real learning curves exhibit (and which early stopping
        // fundamentally relies on).
        self.rate_base
            * (self.rate_span * (self.rate_field.eval(u) - 0.5)).exp()
            * (self.rate_quality_coupling * (0.5 - self.quality(u))).exp()
    }

    /// Resource at which a run with divergence draw `d` diverges under this
    /// configuration, or `INFINITY`.
    fn diverge_at(&self, config: &Config, draw: f64) -> f64 {
        let p = self.divergence_probability(config);
        if p > 0.0 && draw < p {
            // Higher risk diverges earlier; always within the first half of
            // training, like real learning-rate blowups.
            (draw / p) * 0.5 * self.max_resource
        } else {
            f64::INFINITY
        }
    }

    fn clamp_loss(&self, loss: f64) -> f64 {
        loss.clamp(0.0, self.loss_cap)
    }
}

impl BenchmarkModel for CurveBenchmark {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn max_resource(&self) -> f64 {
        self.max_resource
    }

    fn init_state(&self, _config: &Config, rng: &mut dyn rand::RngCore) -> TrainingState {
        TrainingState {
            resource: 0.0,
            loss: self.init_loss,
            asym_jitter: normal(rng, 0.0, self.jitter_std),
            rate_jitter: normal(rng, 0.0, 0.15).exp(),
            divergence_draw: rng.gen::<f64>(),
            diverged: false,
        }
    }

    fn advance(
        &self,
        config: &Config,
        state: &mut TrainingState,
        target_resource: f64,
        _rng: &mut dyn rand::RngCore,
    ) {
        let target = target_resource.min(self.max_resource);
        if target <= state.resource || state.diverged {
            state.resource = state.resource.max(target);
            return;
        }
        if self.diverge_at(config, state.divergence_draw) <= target {
            state.diverged = true;
            if let Some(spec) = self.divergence {
                state.loss = spec.magnitude;
            }
            state.resource = target;
            return;
        }
        let u = self
            .space
            .to_unit(config)
            .expect("config must come from this benchmark's space");
        let asym =
            (self.floor + self.range * self.quality(&u) + state.asym_jitter).max(self.floor * 0.5);
        let rate = self.rate_of(&u) * state.rate_jitter;
        let delta = (target - state.resource) / self.max_resource;
        state.loss = asym + (state.loss - asym) * (-rate * delta).exp();
        state.resource = target;
    }

    fn validation_loss(
        &self,
        _config: &Config,
        state: &TrainingState,
        rng: &mut dyn rand::RngCore,
    ) -> f64 {
        if state.diverged {
            return self.clamp_loss(state.loss);
        }
        self.clamp_loss(state.loss + normal(rng, 0.0, self.noise_std))
    }

    fn test_loss(&self, config: &Config, state: &TrainingState) -> f64 {
        if state.diverged {
            return self.clamp_loss(state.loss);
        }
        let u = self
            .space
            .to_unit(config)
            .expect("config must come from this benchmark's space");
        let gap = self.gap_frac * self.range * self.gap_field.eval(&u);
        self.clamp_loss(state.loss + gap)
    }

    fn time_per_unit(&self, config: &Config) -> f64 {
        let u = self
            .space
            .to_unit(config)
            .expect("config must come from this benchmark's space");
        let mut exponent = 0.0;
        for (i, &ui) in u.iter().enumerate() {
            exponent += self.cost_weights.get(i).copied().unwrap_or(0.0) * (ui - 0.5);
        }
        (self.cost_base / self.max_resource) * exponent.exp()
    }

    fn profile(&self, config: &Config) -> Option<ConfigProfile> {
        let u = self
            .space
            .to_unit(config)
            .expect("config must come from this benchmark's space");
        // Each expression mirrors the corresponding per-call method exactly
        // (same operations in the same order) so profiled evaluation is
        // bitwise-identical to unprofiled evaluation.
        Some(ConfigProfile {
            max_resource: self.max_resource,
            asym_base: self.floor + self.range * self.quality(&u),
            asym_floor: self.floor * 0.5,
            rate: self.rate_of(&u),
            noise_std: self.noise_std,
            gap: self.gap_frac * self.range * self.gap_field.eval(&u),
            loss_cap: self.loss_cap,
            diverge_p: self.divergence_probability(config),
            diverge_magnitude: self.divergence.map_or(0.0, |s| s.magnitude),
            time_per_unit: self.time_per_unit(config),
        })
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Builder for [`CurveBenchmark`]; see the crate docs for the modelling
/// background. All setters have sensible defaults, so presets only override
/// what each paper benchmark needs.
#[derive(Debug, Clone)]
pub struct CurveBenchmarkBuilder {
    inner: CurveBenchmark,
}

impl CurveBenchmarkBuilder {
    fn new(name: &str, space: SearchSpace, max_resource: f64, seed: u64) -> Self {
        assert!(max_resource > 0.0, "maximum resource must be positive");
        let dims = space.len().max(1);
        // Default optimum: deterministic interior point per seed.
        let mut r = rand::rngs::StdRng::seed_from_u64(seed.wrapping_mul(0x517c_c1b7_2722_0a95));
        let opt: Vec<f64> = (0..dims).map(|_| 0.2 + 0.6 * r.gen::<f64>()).collect();
        CurveBenchmarkBuilder {
            inner: CurveBenchmark {
                name: name.to_owned(),
                space,
                max_resource,
                opt,
                weights: vec![1.0; dims],
                asym_up: vec![0.0; dims],
                sharpness: 2.5,
                roughness: 0.15,
                quality_field: SmoothPseudo::new(seed ^ 0x01, dims, 5),
                rate_field: SmoothPseudo::new(seed ^ 0x02, dims, 4),
                gap_field: SmoothPseudo::new(seed ^ 0x03, dims, 4),
                floor: 0.1,
                range: 0.4,
                init_loss: 0.9,
                rate_base: 8.0,
                rate_span: 1.2,
                rate_quality_coupling: 0.6,
                noise_std: 0.01,
                jitter_std: 0.01,
                gap_frac: 0.08,
                cost_base: 1.0,
                cost_weights: vec![0.0; dims],
                divergence: None,
                loss_cap: 1.0,
            },
        }
    }

    /// Optimum location in unit space (one entry per dimension).
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the space dimensionality.
    pub fn optimum(mut self, opt: &[f64]) -> Self {
        assert_eq!(opt.len(), self.inner.space.len(), "optimum dimensionality");
        self.inner.opt = opt.to_vec();
        self
    }

    /// Per-dimension quality weights (importance of each hyperparameter).
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the space dimensionality.
    pub fn weights(mut self, w: &[f64]) -> Self {
        assert_eq!(w.len(), self.inner.space.len(), "weights dimensionality");
        self.inner.weights = w.to_vec();
        self
    }

    /// Extra penalty multiplier for overshooting dimension `dim` (e.g. 3.0
    /// makes too-high learning rates much worse than too-low ones).
    pub fn asymmetric(mut self, dim: usize, up_penalty: f64) -> Self {
        self.inner.asym_up[dim] = up_penalty;
        self
    }

    /// Loss range: asymptotes lie in `[floor, floor + range]` (before
    /// jitter); `init_loss` is the untrained loss; `cap` clamps outputs.
    pub fn losses(mut self, floor: f64, range: f64, init_loss: f64, cap: f64) -> Self {
        assert!(
            range > 0.0 && floor >= 0.0 && cap > floor,
            "invalid loss shape"
        );
        self.inner.floor = floor;
        self.inner.range = range;
        self.inner.init_loss = init_loss;
        self.inner.loss_cap = cap;
        self
    }

    /// Quality-surface shape: `sharpness` scales the distance bowl,
    /// `roughness` the pseudo-random field's amplitude.
    pub fn shape(mut self, sharpness: f64, roughness: f64) -> Self {
        self.inner.sharpness = sharpness;
        self.inner.roughness = roughness;
        self
    }

    /// Convergence dynamics: `rate_base` is the median exponential rate per
    /// full-`R` of training; `rate_span` the log-spread across configs.
    pub fn dynamics(mut self, rate_base: f64, rate_span: f64) -> Self {
        assert!(rate_base > 0.0, "rate must be positive");
        self.inner.rate_base = rate_base;
        self.inner.rate_span = rate_span;
        self
    }

    /// How strongly convergence speed correlates with final quality
    /// (log-rate bonus for a quality-0 config relative to a quality-1 one
    /// is `2 * coupling`). Zero decouples them entirely, making early
    /// losses rank configurations by speed rather than quality.
    pub fn rate_quality_coupling(mut self, coupling: f64) -> Self {
        self.inner.rate_quality_coupling = coupling;
        self
    }

    /// Observation noise (std of validation loss) and run-level jitter (std
    /// of the per-run asymptote shift).
    pub fn noise(mut self, noise_std: f64, jitter_std: f64) -> Self {
        self.inner.noise_std = noise_std;
        self.inner.jitter_std = jitter_std;
        self
    }

    /// Generalization gap: test loss exceeds validation loss by up to
    /// `gap_frac * range`.
    pub fn gap(mut self, gap_frac: f64) -> Self {
        self.inner.gap_frac = gap_frac;
        self
    }

    /// Cost model: training the *median* config to `R` takes `time_full`
    /// wall-clock units; per-dimension log-weights make expensive regions
    /// (large models, small batches) slower.
    ///
    /// # Panics
    ///
    /// Panics if the weight length does not match the space dimensionality.
    pub fn cost(mut self, time_full: f64, cost_weights: &[f64]) -> Self {
        assert!(time_full > 0.0, "cost must be positive");
        assert_eq!(
            cost_weights.len(),
            self.inner.space.len(),
            "cost weights dimensionality"
        );
        self.inner.cost_base = time_full;
        self.inner.cost_weights = cost_weights.to_vec();
        self
    }

    /// Enable divergence for configurations with a high coordinate on `dim`.
    pub fn divergence(mut self, spec: DivergenceSpec) -> Self {
        assert!(spec.dim < self.inner.space.len(), "divergence dim in range");
        self.inner.divergence = Some(spec);
        self
    }

    /// Finish building.
    pub fn build(self) -> CurveBenchmark {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_math::stats::spearman;
    use asha_space::Scale;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bench() -> CurveBenchmark {
        let space = SearchSpace::builder()
            .continuous("lr", 1e-4, 1.0, Scale::Log)
            .continuous("reg", 1e-5, 1.0, Scale::Log)
            .build()
            .unwrap();
        CurveBenchmark::builder("test", space, 100.0, 11)
            .losses(0.1, 0.4, 0.9, 1.0)
            .noise(0.005, 0.005)
            .build()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn loss_decreases_monotonically_toward_asymptote() {
        let b = bench();
        let mut r = rng();
        let c = b.space().sample(&mut r);
        let mut state = b.init_state(&c, &mut r);
        let mut prev = state.loss;
        for step in 1..=10 {
            b.advance(&c, &mut state, step as f64 * 10.0, &mut r);
            assert!(state.loss <= prev + 1e-12, "loss increased at step {step}");
            prev = state.loss;
        }
        let asym = b.asymptote(&c);
        assert!(
            (state.loss - asym).abs() < 0.2,
            "loss {} vs asym {asym}",
            state.loss
        );
    }

    #[test]
    fn advance_is_idempotent_past_target() {
        let b = bench();
        let mut r = rng();
        let c = b.space().sample(&mut r);
        let mut state = b.init_state(&c, &mut r);
        b.advance(&c, &mut state, 50.0, &mut r);
        let snapshot = state;
        b.advance(&c, &mut state, 30.0, &mut r); // earlier target: no-op
        assert_eq!(state, snapshot);
    }

    #[test]
    fn incremental_equals_single_shot() {
        // Markov property: 0->30->100 must equal 0->100 exactly.
        let b = bench();
        let mut r = rng();
        let c = b.space().sample(&mut r);
        let s0 = b.init_state(&c, &mut r);
        let mut a = s0;
        b.advance(&c, &mut a, 30.0, &mut r);
        b.advance(&c, &mut a, 100.0, &mut r);
        let mut d = s0;
        b.advance(&c, &mut d, 100.0, &mut r);
        assert!((a.loss - d.loss).abs() < 1e-12);
    }

    #[test]
    fn partial_losses_rank_correlate_with_final() {
        let b = bench();
        let mut r = rng();
        let mut early = Vec::new();
        let mut fin = Vec::new();
        for _ in 0..200 {
            let c = b.space().sample(&mut r);
            let mut s = b.init_state(&c, &mut r);
            b.advance(&c, &mut s, 25.0, &mut r);
            early.push(s.loss);
            b.advance(&c, &mut s, 100.0, &mut r);
            fin.push(s.loss);
        }
        let rho = spearman(&early, &fin);
        assert!(rho > 0.65, "early/final rank correlation too weak: {rho}");
        assert!(rho < 0.999, "correlation suspiciously perfect: {rho}");
    }

    #[test]
    fn better_asymptote_means_better_final_loss() {
        let b = bench();
        let mut r = rng();
        let mut pairs = Vec::new();
        for _ in 0..100 {
            let c = b.space().sample(&mut r);
            let mut s = b.init_state(&c, &mut r);
            b.advance(&c, &mut s, 100.0, &mut r);
            pairs.push((b.asymptote(&c), s.loss));
        }
        let (a, l): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        assert!(spearman(&a, &l) > 0.9);
    }

    #[test]
    fn quality_surface_spans_a_useful_range() {
        let b = bench();
        let mut r = rng();
        let asyms: Vec<f64> = (0..500)
            .map(|_| b.asymptote(&b.space().sample(&mut r)))
            .collect();
        let best = asyms.iter().copied().fold(f64::INFINITY, f64::min);
        let worst = asyms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(best < 0.2, "best asymptote {best} not near the floor");
        assert!(worst > 0.35, "worst asymptote {worst} not spread out");
    }

    #[test]
    fn validation_noise_is_small_but_present() {
        let b = bench();
        let mut r = rng();
        let c = b.space().sample(&mut r);
        let mut s = b.init_state(&c, &mut r);
        b.advance(&c, &mut s, 100.0, &mut r);
        let v1 = b.validation_loss(&c, &s, &mut r);
        let v2 = b.validation_loss(&c, &s, &mut r);
        assert_ne!(v1, v2);
        assert!((v1 - s.loss).abs() < 0.05);
    }

    #[test]
    fn test_loss_has_nonnegative_gap_and_is_deterministic() {
        let b = bench();
        let mut r = rng();
        let c = b.space().sample(&mut r);
        let mut s = b.init_state(&c, &mut r);
        b.advance(&c, &mut s, 100.0, &mut r);
        let t1 = b.test_loss(&c, &s);
        let t2 = b.test_loss(&c, &s);
        assert_eq!(t1, t2);
        assert!(t1 >= s.loss);
    }

    #[test]
    fn cost_varies_with_config_when_weighted() {
        let space = SearchSpace::builder()
            .discrete("layers", 1, 8)
            .continuous("lr", 1e-3, 1.0, Scale::Log)
            .build()
            .unwrap();
        let b = CurveBenchmark::builder("cost", space, 10.0, 3)
            .cost(30.0, &[1.5, 0.0])
            .build();
        let mut r = rng();
        let times: Vec<f64> = (0..200)
            .map(|_| b.time_full(&b.space().sample(&mut r)))
            .collect();
        let mean = asha_math::stats::mean(&times);
        let std = asha_math::stats::std_dev(&times);
        assert!(std / mean > 0.2, "cost variation too small: {std}/{mean}");
        // All positive, centered near the nominal 30.
        assert!(times.iter().all(|&t| t > 0.0));
        assert!((mean - 30.0).abs() / 30.0 < 0.5, "mean time {mean}");
    }

    #[test]
    fn divergence_only_hits_risky_configs() {
        let space = SearchSpace::builder()
            .continuous("lr", 1e-4, 1.0, Scale::Log)
            .build()
            .unwrap();
        let b = CurveBenchmark::builder("div", space, 100.0, 5)
            .losses(50.0, 200.0, 1000.0, 1e5)
            .divergence(DivergenceSpec {
                dim: 0,
                threshold: 0.8,
                magnitude: 5e4,
            })
            .build();
        let mut r = rng();
        let safe = b.space().from_unit(&[0.5]);
        assert_eq!(b.divergence_probability(&safe), 0.0);
        let risky = b.space().from_unit(&[0.99]);
        assert!(b.divergence_probability(&risky) > 0.9);
        // A risky run actually diverges.
        let mut diverged_any = false;
        for _ in 0..20 {
            let mut s = b.init_state(&risky, &mut r);
            b.advance(&risky, &mut s, 100.0, &mut r);
            if s.diverged {
                assert_eq!(s.loss, 5e4);
                diverged_any = true;
            }
        }
        assert!(diverged_any);
        // A safe run never does.
        let mut s = b.init_state(&safe, &mut r);
        b.advance(&safe, &mut s, 100.0, &mut r);
        assert!(!s.diverged);
    }

    #[test]
    fn pbt_style_state_copy_converges_to_new_configs_asymptote() {
        let b = bench();
        let mut r = rng();
        let good = b.space().from_unit(&[0.45, 0.45]);
        let bad = b.space().from_unit(&[0.95, 0.95]);
        // Train the bad config halfway, then "copy weights" and continue
        // under the good config.
        let mut s = b.init_state(&bad, &mut r);
        b.advance(&bad, &mut s, 50.0, &mut r);
        let mut inherited = s;
        b.advance(&good, &mut inherited, 100.0, &mut r);
        let target = b.asymptote(&good);
        assert!(
            (inherited.loss - target).abs() < 0.25,
            "inherited loss {} should head toward {target}",
            inherited.loss
        );
        // And it beats continuing under the bad config.
        let mut stayed = s;
        b.advance(&bad, &mut stayed, 100.0, &mut r);
        assert!(inherited.loss < stayed.loss);
    }

    #[test]
    fn asymmetric_penalty_punishes_overshoot() {
        let space = SearchSpace::builder()
            .continuous("lr", 1e-4, 1.0, Scale::Log)
            .build()
            .unwrap();
        let b = CurveBenchmark::builder("asym", space, 10.0, 2)
            .optimum(&[0.5])
            .shape(2.5, 0.0)
            .asymmetric(0, 4.0)
            .build();
        let under = b.asymptote(&b.space().from_unit(&[0.3]));
        let over = b.asymptote(&b.space().from_unit(&[0.7]));
        assert!(
            over > under,
            "overshoot {over} must exceed undershoot {under}"
        );
    }

    #[test]
    fn profile_is_bitwise_identical_to_per_call_methods() {
        let space = SearchSpace::builder()
            .continuous("lr", 1e-4, 1.0, Scale::Log)
            .continuous("reg", 1e-5, 1.0, Scale::Log)
            .build()
            .unwrap();
        let b = CurveBenchmark::builder("prof", space, 100.0, 17)
            .losses(0.05, 0.5, 0.9, 2.0)
            .divergence(DivergenceSpec {
                dim: 0,
                threshold: 0.6,
                magnitude: 1.5,
            })
            .build();
        let mut r = rng();
        for _ in 0..200 {
            let c = b.space().sample(&mut r);
            let profile = b.profile(&c).expect("curve benchmarks are profilable");
            assert_eq!(profile.time_per_unit, b.time_per_unit(&c));
            let mut direct = b.init_state(&c, &mut r);
            let mut via = direct;
            // Twin RNGs so the noise draws see identical streams.
            let mut ra = StdRng::seed_from_u64(direct.loss.to_bits());
            let mut rb = ra.clone();
            for step in 1..=6 {
                let target = step as f64 * 20.0; // overshoots R on purpose
                b.advance(&c, &mut direct, target, &mut ra);
                profile.advance(&mut via, target);
                assert_eq!(direct, via, "state diverged at target {target}");
                assert_eq!(
                    b.validation_loss(&c, &direct, &mut ra).to_bits(),
                    profile.validation_loss(&via, &mut rb).to_bits()
                );
                assert_eq!(
                    b.test_loss(&c, &direct).to_bits(),
                    profile.test_loss(&via).to_bits()
                );
            }
        }
    }

    #[test]
    fn deterministic_across_instances_with_same_seed() {
        let a = bench();
        let b = bench();
        let c = a.space().from_unit(&[0.3, 0.6]);
        assert_eq!(a.asymptote(&c), b.asymptote(&c));
        assert_eq!(a.convergence_rate(&c), b.convergence_rate(&c));
        assert_eq!(a.time_per_unit(&c), b.time_per_unit(&c));
    }
}

use asha_space::{Config, SearchSpace};

/// The evolving state of one training run.
///
/// The state is Markovian *and config-free*: it stores the current loss plus
/// run-level randomness (weight-init luck, data order, divergence luck), but
/// no config-derived quantities. [`BenchmarkModel::advance`] recomputes the
/// target asymptote and rate from the configuration every call, so copying a
/// state across configurations — exactly what PBT's exploit step does when
/// it copies weights — behaves correctly: the child resumes from the
/// parent's loss and converges toward *its own* asymptote.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingState {
    /// Cumulative resource this run has been trained for.
    pub resource: f64,
    /// Current (noise-free) training loss.
    pub loss: f64,
    /// Run-level additive jitter on the asymptotic loss (weight-init luck).
    pub asym_jitter: f64,
    /// Run-level multiplicative jitter on the convergence rate.
    pub rate_jitter: f64,
    /// Run-level uniform draw deciding if/when the run diverges.
    pub divergence_draw: f64,
    /// Whether the run has diverged.
    pub diverged: bool,
}

impl TrainingState {
    /// A fresh, untrained, jitter-free state (useful in tests; benchmarks
    /// construct states via [`BenchmarkModel::init_state`]).
    pub fn fresh(init_loss: f64) -> Self {
        TrainingState {
            resource: 0.0,
            loss: init_loss,
            asym_jitter: 0.0,
            rate_jitter: 1.0,
            divergence_draw: 1.0,
            diverged: false,
        }
    }
}

/// A tunable benchmark: the substitute for `run_then_return_val_loss` in
/// Algorithms 1–2.
///
/// Implementations must be cheap to evaluate (they are called millions of
/// times by the simulator) and deterministic given the RNG stream.
pub trait BenchmarkModel: Send + Sync {
    /// The hyperparameter search space being tuned.
    fn space(&self) -> &SearchSpace;

    /// The maximum resource `R` a configuration can be trained for.
    fn max_resource(&self) -> f64;

    /// Start a new training run of `config`. Run-level randomness (weight
    /// initialization, data order) is drawn here, so two runs of the same
    /// configuration differ slightly.
    fn init_state(&self, config: &Config, rng: &mut dyn rand::RngCore) -> TrainingState;

    /// Train from `state.resource` up to `target_resource` (no-op if the
    /// state is already past the target).
    fn advance(
        &self,
        config: &Config,
        state: &mut TrainingState,
        target_resource: f64,
        rng: &mut dyn rand::RngCore,
    );

    /// Validation loss of the current state: the noise-free loss plus
    /// evaluation noise. This is what schedulers observe.
    fn validation_loss(
        &self,
        config: &Config,
        state: &TrainingState,
        rng: &mut dyn rand::RngCore,
    ) -> f64;

    /// Test loss of the current state: the noise-free loss plus a
    /// deterministic generalization gap. Experiments report this for the
    /// incumbent; schedulers never see it.
    fn test_loss(&self, config: &Config, state: &TrainingState) -> f64;

    /// Wall-clock time to train `config` for one unit of resource,
    /// excluding straggler noise (the simulator adds that). Deterministic
    /// per config.
    fn time_per_unit(&self, config: &Config) -> f64;

    /// Wall-clock time to train `config` from scratch to the full resource
    /// `R`: `time_per_unit * R`.
    fn time_full(&self, config: &Config) -> f64 {
        self.time_per_unit(config) * self.max_resource()
    }

    /// A short name for experiment output.
    fn name(&self) -> &str {
        "benchmark"
    }
}

use asha_math::dist::normal;
use asha_space::{Config, SearchSpace};

/// The evolving state of one training run.
///
/// The state is Markovian *and config-free*: it stores the current loss plus
/// run-level randomness (weight-init luck, data order, divergence luck), but
/// no config-derived quantities. [`BenchmarkModel::advance`] recomputes the
/// target asymptote and rate from the configuration every call, so copying a
/// state across configurations — exactly what PBT's exploit step does when
/// it copies weights — behaves correctly: the child resumes from the
/// parent's loss and converges toward *its own* asymptote.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingState {
    /// Cumulative resource this run has been trained for.
    pub resource: f64,
    /// Current (noise-free) training loss.
    pub loss: f64,
    /// Run-level additive jitter on the asymptotic loss (weight-init luck).
    pub asym_jitter: f64,
    /// Run-level multiplicative jitter on the convergence rate.
    pub rate_jitter: f64,
    /// Run-level uniform draw deciding if/when the run diverges.
    pub divergence_draw: f64,
    /// Whether the run has diverged.
    pub diverged: bool,
}

impl TrainingState {
    /// A fresh, untrained, jitter-free state (useful in tests; benchmarks
    /// construct states via [`BenchmarkModel::init_state`]).
    pub fn fresh(init_loss: f64) -> Self {
        TrainingState {
            resource: 0.0,
            loss: init_loss,
            asym_jitter: 0.0,
            rate_jitter: 1.0,
            divergence_draw: 1.0,
            diverged: false,
        }
    }
}

/// Precomputed per-configuration response of a benchmark: everything the
/// simulator needs to advance a run and score it, with the config-dependent
/// parts (unit-space projection, quality/rate/gap field evaluations, cost
/// model) already folded into plain numbers.
///
/// The hot loop of a large simulation evaluates the same configuration's
/// response at every rung a trial reaches; recomputing the smooth
/// pseudo-random fields each time dominated benchmark cost. A profile is
/// computed once per trial via [`BenchmarkModel::profile`] and then evaluated
/// with no trait dispatch at all. Its methods are **bitwise-identical** to
/// the corresponding [`BenchmarkModel`] methods — the simulator's snapshot
/// tests rely on caching being unobservable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigProfile {
    /// The benchmark's maximum resource `R`.
    pub max_resource: f64,
    /// Asymptotic loss of this configuration before run jitter.
    pub asym_base: f64,
    /// Lower clamp applied to the jittered asymptote.
    pub asym_floor: f64,
    /// Convergence rate of this configuration before run jitter.
    pub rate: f64,
    /// Standard deviation of validation-loss observation noise.
    pub noise_std: f64,
    /// Deterministic generalization gap added by `test_loss`.
    pub gap: f64,
    /// Upper clamp applied to reported losses.
    pub loss_cap: f64,
    /// Probability that a run of this configuration diverges.
    pub diverge_p: f64,
    /// Loss reported by a diverged run.
    pub diverge_magnitude: f64,
    /// Wall-clock time per unit of resource for this configuration.
    pub time_per_unit: f64,
}

impl ConfigProfile {
    fn clamp_loss(&self, loss: f64) -> f64 {
        loss.clamp(0.0, self.loss_cap)
    }

    /// Train from `state.resource` up to `target_resource`; bitwise-equal
    /// to the originating model's [`BenchmarkModel::advance`].
    pub fn advance(&self, state: &mut TrainingState, target_resource: f64) {
        let target = target_resource.min(self.max_resource);
        if target <= state.resource || state.diverged {
            state.resource = state.resource.max(target);
            return;
        }
        let p = self.diverge_p;
        if p > 0.0
            && state.divergence_draw < p
            && (state.divergence_draw / p) * 0.5 * self.max_resource <= target
        {
            state.diverged = true;
            state.loss = self.diverge_magnitude;
            state.resource = target;
            return;
        }
        let asym = (self.asym_base + state.asym_jitter).max(self.asym_floor);
        let rate = self.rate * state.rate_jitter;
        let delta = (target - state.resource) / self.max_resource;
        state.loss = asym + (state.loss - asym) * (-rate * delta).exp();
        state.resource = target;
    }

    /// Validation loss of the current state; draws the same noise from the
    /// same RNG stream as [`BenchmarkModel::validation_loss`].
    pub fn validation_loss(&self, state: &TrainingState, rng: &mut dyn rand::RngCore) -> f64 {
        if state.diverged {
            return self.clamp_loss(state.loss);
        }
        self.clamp_loss(state.loss + normal(rng, 0.0, self.noise_std))
    }

    /// Test loss of the current state; equals
    /// [`BenchmarkModel::test_loss`].
    pub fn test_loss(&self, state: &TrainingState) -> f64 {
        if state.diverged {
            return self.clamp_loss(state.loss);
        }
        self.clamp_loss(state.loss + self.gap)
    }
}

/// A tunable benchmark: the substitute for `run_then_return_val_loss` in
/// Algorithms 1–2.
///
/// Implementations must be cheap to evaluate (they are called millions of
/// times by the simulator) and deterministic given the RNG stream.
pub trait BenchmarkModel: Send + Sync {
    /// The hyperparameter search space being tuned.
    fn space(&self) -> &SearchSpace;

    /// The maximum resource `R` a configuration can be trained for.
    fn max_resource(&self) -> f64;

    /// Start a new training run of `config`. Run-level randomness (weight
    /// initialization, data order) is drawn here, so two runs of the same
    /// configuration differ slightly.
    fn init_state(&self, config: &Config, rng: &mut dyn rand::RngCore) -> TrainingState;

    /// Train from `state.resource` up to `target_resource` (no-op if the
    /// state is already past the target).
    fn advance(
        &self,
        config: &Config,
        state: &mut TrainingState,
        target_resource: f64,
        rng: &mut dyn rand::RngCore,
    );

    /// Validation loss of the current state: the noise-free loss plus
    /// evaluation noise. This is what schedulers observe.
    fn validation_loss(
        &self,
        config: &Config,
        state: &TrainingState,
        rng: &mut dyn rand::RngCore,
    ) -> f64;

    /// Test loss of the current state: the noise-free loss plus a
    /// deterministic generalization gap. Experiments report this for the
    /// incumbent; schedulers never see it.
    fn test_loss(&self, config: &Config, state: &TrainingState) -> f64;

    /// Wall-clock time to train `config` for one unit of resource,
    /// excluding straggler noise (the simulator adds that). Deterministic
    /// per config.
    fn time_per_unit(&self, config: &Config) -> f64;

    /// Wall-clock time to train `config` from scratch to the full resource
    /// `R`: `time_per_unit * R`.
    fn time_full(&self, config: &Config) -> f64 {
        self.time_per_unit(config) * self.max_resource()
    }

    /// Precompute this configuration's full response as a
    /// [`ConfigProfile`], or `None` if the model cannot (the simulator then
    /// falls back to the per-call methods). Implementations must guarantee
    /// the profile's methods are bitwise-identical to their own.
    fn profile(&self, config: &Config) -> Option<ConfigProfile> {
        let _ = config;
        None
    }

    /// A short name for experiment output.
    fn name(&self) -> &str {
        "benchmark"
    }
}

//! Synthetic learning-curve benchmarks reproducing the ASHA paper workloads.
//!
//! The paper's experiments train real CNNs/LSTMs on CIFAR-10, SVHN, and Penn
//! Treebank. Those substrates are unavailable here, so this crate provides
//! *surrogate* benchmarks: parametric models that map a hyperparameter
//! configuration to
//!
//! * an **asymptotic loss** (a multi-modal response surface over the paper's
//!   own search spaces),
//! * a **convergence rate** (how quickly partial training approaches the
//!   asymptote),
//! * a **training cost** per resource unit (config-dependent, matching the
//!   benchmark-2 property that training time has mean ≈ 30 min and std ≈ 27
//!   min), and
//! * optional **divergence** behaviour (the PTB benchmarks' "perplexities
//!   that are orders of magnitude larger than the average case").
//!
//! Curves are *Markovian*: the loss after `Δr` more resource depends only on
//! the current `(loss, asymptote, rate)` state. This makes both ASHA's
//! checkpoint/resume and PBT's weight inheritance (copying a parent's curve
//! state into a child) first-class operations.
//!
//! What early-stopping schedulers actually rely on is preserved and tested:
//! partial losses are rank-correlated with final losses; better configs
//! stay better in expectation; pathological configs exist.
//!
//! # Examples
//!
//! ```
//! use asha_surrogate::{presets, BenchmarkModel};
//! use rand::SeedableRng;
//!
//! let bench = presets::cifar10_small_cnn(7);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let config = bench.space().sample(&mut rng);
//! let mut state = bench.init_state(&config, &mut rng);
//! bench.advance(&config, &mut state, bench.max_resource(), &mut rng);
//! let loss = bench.validation_loss(&config, &state, &mut rng);
//! assert!(loss > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod curve;
mod model;
pub mod presets;
mod pseudo;

pub use curve::{CurveBenchmark, CurveBenchmarkBuilder, DivergenceSpec};
pub use model::{BenchmarkModel, ConfigProfile, TrainingState};
pub use pseudo::SmoothPseudo;

// The parallel experiment runner (asha-bench) shares one `&dyn
// BenchmarkModel` across worker threads, so every benchmark must stay plain
// immutable data: `Send + Sync`, no interior mutability. Enforced at compile
// time so a Cell/RefCell sneaking into a model is caught here, not in a
// downstream crate's type error.
const _: () = {
    const fn assert_send_sync<T: Send + Sync + ?Sized>() {}
    assert_send_sync::<CurveBenchmark>();
    assert_send_sync::<SmoothPseudo>();
    assert_send_sync::<dyn BenchmarkModel>();
};
